//! # inflow — finding frequently visited indoor POIs
//!
//! Umbrella crate re-exporting the `inflow` workspace: a from-scratch Rust
//! reproduction of *Finding Frequently Visited Indoor POIs Using Symbolic
//! Indoor Tracking Data* (Lu, Guo, Yang, Jensen — EDBT 2016).
//!
//! The workspace implements, bottom-up:
//!
//! * [`geometry`] — circles, rings, extended ellipses, polygons, and the
//!   deterministic area integrator behind the paper's *presence* measure;
//! * [`indoor`] — floor plans, doors, topology graph, indoor walking
//!   distance, POIs, and device deployments;
//! * [`rtree`] — a 2D R-tree and the count-augmented aggregate R-tree used
//!   by the join algorithms;
//! * [`tracking`] — raw readings, the Object Tracking Table, and the
//!   augmented temporal AR-tree index;
//! * [`uncertainty`] — snapshot and interval uncertainty regions with
//!   indoor-topology checks;
//! * [`obs`] — zero-dependency observability: phase spans, counters and
//!   latency histograms behind the CLI's `--profile` output;
//! * [`core`] — flow counting and the four top-k query algorithms
//!   (iterative and join, snapshot and interval);
//! * [`service`] — the sharded continuous flow-monitoring server:
//!   incremental top-k subscriptions with ε-gated notifications over a
//!   length-prefixed TCP protocol (`inflow serve` / `inflow watch`);
//! * [`replay`] — deterministic record/replay of serving sessions with
//!   chaos-scheduled fault injection (`inflow record` / `inflow replay`);
//! * [`workload`] — synthetic and CPH-airport-style data generators;
//! * [`viz`] — SVG rendering of plans, regions and trajectories.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub mod cli;

pub use inflow_core as core;
pub use inflow_geometry as geometry;
pub use inflow_indoor as indoor;
pub use inflow_obs as obs;
pub use inflow_replay as replay;
pub use inflow_rtree as rtree;
pub use inflow_service as service;
pub use inflow_tracking as tracking;
pub use inflow_uncertainty as uncertainty;
pub use inflow_viz as viz;
pub use inflow_workload as workload;
