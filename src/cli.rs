//! The `inflow` command-line interface.
//!
//! A thin, dependency-free frontend over the library:
//!
//! ```text
//! inflow generate synthetic --out-dir data [--objects N] [--duration S] [--seed N]
//! inflow generate cph --out-dir data [--passengers N] [--seed N]
//! inflow snapshot --plan plan.txt --ott ott.csv --t 1200 [--k 10] [--iterative]
//! inflow interval --plan plan.txt --ott ott.csv --ts 600 --te 1800 [--k 10]
//! inflow timeline --plan plan.txt --ott ott.csv --start 0 --end 3600 --bucket 600
//! inflow density --plan plan.txt --ott ott.csv --t 1200 [--cell-size 10]
//! inflow render --plan plan.txt --out plan.svg [--ott ott.csv --object 3 --t 1200]
//! ```
//!
//! All commands are pure functions over files; [`run`] returns the text
//! that `main` prints, which keeps the CLI fully unit-testable.

use crate::core::{
    flow_timeline, snapshot_density, DistribQuery, FlowAnalytics, IntervalQuery, LongVisitQuery,
    SnapshotQuery,
};
use crate::geometry::GridResolution;
use crate::indoor::{read_plan, write_plan, FloorPlan, PoiId};
use crate::replay::{bisect, record_run, replay, FaultPlan, RecordOptions, ReplayLog};
use crate::service::{Client, ServeConfig, Server, SubKind, SubSpec};
use crate::tracking::{
    atomic_write, read_ott_csv, read_quarantine_csv, read_readings_csv, readmit_rows,
    sanitize_rows, write_quarantine_csv, write_readings_csv, write_table_csv, IngestStore,
    ObjectId, ObjectTrackingTable, OnlineTracker, OttRow, RawReading, RecoveryReport,
    SanitizeConfig, StdFs, StoreError, StoreOptions,
};
use crate::uncertainty::{IndoorContext, UrConfig, UrEngine};
use crate::viz::SceneRenderer;
use crate::workload::{
    build_floor_plan, generate_cph, generate_synthetic, CphConfig, SyntheticConfig,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A CLI failure: the message shown to the user (exit code 2).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("I/O error: {e}"))
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parsed `--flag value` options plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, CliError> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                // Boolean switches take no value.
                if matches!(
                    name,
                    "iterative"
                        | "no-topology"
                        | "labels"
                        | "profile"
                        | "profile-json"
                        | "sanitize"
                        | "no-sync"
                        | "stats"
                        | "shutdown"
                        | "no-trace"
                        | "once"
                        | "bisect"
                        | "repair"
                        | "detail"
                ) {
                    switches.push(name.to_string());
                } else {
                    i += 1;
                    let Some(value) = argv.get(i) else {
                        return err(format!("--{name} needs a value"));
                    };
                    flags.insert(name.to_string(), value.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args { positional, flags, switches })
    }

    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("cannot parse --{name} value '{v}'"))),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        self.get(name)?.ok_or_else(|| CliError(format!("missing required --{name}")))
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Runs the CLI; returns the text to print on success.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Ok(usage());
    };
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "snapshot" => cmd_snapshot(&args),
        "interval" => cmd_interval(&args),
        "query" => cmd_query(&args),
        "timeline" => cmd_timeline(&args),
        "density" => cmd_density(&args),
        "render" => cmd_render(&args),
        "sanitize" => cmd_sanitize(&args),
        "readmit" => cmd_readmit(&args),
        "ingest" => cmd_ingest(&args),
        "recover" => cmd_recover(&args),
        "fsck" => cmd_fsck(&args),
        "scrub" => cmd_scrub(&args),
        "serve" => cmd_serve(&args),
        "watch" => cmd_watch(&args),
        "top" => cmd_top(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn usage() -> String {
    "inflow — frequently visited indoor POIs from symbolic tracking data\n\
     \n\
     commands:\n\
     \x20 generate synthetic|cph --out-dir DIR [--objects N] [--passengers N]\n\
     \x20          [--duration S] [--seed N]       write plan.txt + ott.csv\n\
     \x20 snapshot --plan F --ott F --t T [--k K] [--iterative] [--no-topology]\n\
     \x20 interval --plan F --ott F --ts T --te T [--k K] [--iterative]\n\
     \x20 query distrib --plan F --ott F (--t T | --ts T --te T)\n\
     \x20          [--kq K] [--kmax N] [--k K]    rank POIs by P(count >= kq)\n\
     \x20 query longvisit --plan F --ott F --ts T --te T --min-dwell D [--k K]\n\
     \x20                                          count objects dwelling >= D\n\
     \x20 timeline --plan F --ott F --start T --end T --bucket S [--k K]\n\
     \x20 density  --plan F --ott F --t T [--cell-size M]\n\
     \x20 render   --plan F --out F.svg [--ott F --object ID --t T] [--labels]\n\
     \x20 sanitize --plan F --ott F [--out F.csv] [--quarantine-out F.csv]\n\
     \x20          [--policy repair|reject|quarantine] [--vmax V]\n\
     \x20                                          gate dirty data, print report\n\
     \x20 readmit  --plan F --ott F --quarantine F.csv [--out F.csv]\n\
     \x20          [--quarantine-out F.csv] [--policy P] [--vmax V]\n\
     \x20                                          replay quarantined rows\n\
     \x20 ingest   --store DIR --readings F.csv [--max-gap S] [--lateness S]\n\
     \x20          [--snapshot-every N] [--compact-every N] [--scrub-every N]\n\
     \x20          [--no-sync] [--out F.csv]\n\
     \x20                                          durable WAL + snapshot ingestion\n\
     \x20 recover  --store DIR [--max-gap S] [--out F.csv] [--profile|--profile-json]\n\
     \x20                                          replay WAL, print recovery report\n\
     \x20 fsck     --store DIR [--repair] [--max-gap S]\n\
     \x20                                          offline integrity sweep (manifest,\n\
     \x20                                          segments, WAL, snapshots); --repair\n\
     \x20                                          re-seals damaged segments from WAL\n\
     \x20 scrub    --store DIR [--budget N] [--repair] [--max-gap S]\n\
     \x20                                          one scrub pass: verify + quarantine\n\
     \x20 serve    --plan F --store DIR [--port P] [--shards N] [--pool N]\n\
     \x20          [--max-gap S] [--lateness S] [--vmax V] [--no-sync]\n\
     \x20          [--snapshot-every N] [--addr-file F] [--no-trace]\n\
     \x20          [--compact-every N] [--scrub-every N]\n\
     \x20          [--slow-ms MS] [--flight-capacity N]\n\
     \x20          [--max-queue N] [--max-conns N]\n\
     \x20                                          continuous flow-monitoring server\n\
     \x20 watch    --addr HOST:PORT [--t T | --ts T --te T] [--k K] [--epsilon E]\n\
     \x20          [--kq K [--kmax N]] [--min-dwell D] [--detail]\n\
     \x20          [--pois 1,2,3] [--publish F.csv] [--chunk N] [--stats] [--shutdown]\n\
     \x20          [--timeout-ms MS]               subscribe, stream, print updates\n\
     \x20 top      --addr HOST:PORT [--once] [--interval S] [--count N]\n\
     \x20          [--timeout-ms MS]               live server telemetry dashboard\n\
     \x20 record   --plan F --store DIR --readings F.csv --out F.rpl\n\
     \x20          [--chunk N] [--barrier-every N] [--t T | --ts T --te T]\n\
     \x20          [--subs 'kind:key=v,key=v;...']\n\
     \x20          [--faults 5:crash:0,7:restart:0 | --fault-seed N [--fault-count N]]\n\
     \x20          [serve flags]                   record a chaos run as a replay log\n\
     \x20 replay   --plan F --store DIR --log F.rpl [--bisect] [--out F.rpl.min]\n\
     \x20          [serve flags]                   verify per-barrier state hashes\n\
     \n\
     snapshot and interval accept --threads N with --iterative to fan the\n\
     per-object flow computation across N scoped worker threads; results\n\
     are bitwise identical to the single-threaded run.\n\
     \n\
     serve blocks until a client sends --shutdown; it prints the bound\n\
     address on startup (and writes it to --addr-file, for scripts) and\n\
     its metrics registry on exit. Pipeline tracing is on by default\n\
     (--no-trace disables it); notifications slower than --slow-ms land\n\
     in the slow-request log served by the TRACE protocol verb.\n\
     \n\
     watch and record pick the subscription kind from their flags: --t\n\
     alone is the expected-flow snapshot; --ts/--te the interval flow;\n\
     --t with --kq the probabilistic count P(count >= --kq) (convolution\n\
     truncated at --kmax, default 32); --ts/--te with --min-dwell the\n\
     long-visit head count. watch --detail additionally fetches the full\n\
     per-POI distribution (pmf, tail mass, expectation, median) for a\n\
     --kq subscription. record --subs adds extra subscriptions as a\n\
     semicolon-separated list: kind:key=value,... where kind is\n\
     snapshot|interval|distrib|longvisit (keys t, ts, te, kq, kmax, d,\n\
     k, epsilon).\n\
     \n\
     top polls the server's METRICS verb and renders counters (with\n\
     per-second rates), per-stage latency percentiles and per-shard\n\
     queue depths; --once prints a single machine-checkable snapshot\n\
     and exits (non-zero if the snapshot is malformed).\n\
     \n\
     record drives a fresh server through the readings over a single\n\
     connection, injecting the fault plan (shard kills, torn WAL writes,\n\
     connection drops) at recorded stream positions and stamping a state\n\
     digest at every barrier. replay re-drives the log against a fresh\n\
     server and exits non-zero at the first digest mismatch; --bisect\n\
     then shrinks the log to its minimal diverging prefix.\n\
     \n\
     ingest is resumable and idempotent: readings already durable in the\n\
     store's WAL are skipped, so rerunning after a crash continues where\n\
     the log ends. All file outputs are written atomically (temp + rename).\n\
     \n\
     serve seals cold rows into immutable, checksummed segments every\n\
     --compact-every rows (0 disables) and re-verifies them on a budgeted\n\
     schedule every --scrub-every readings (0 disables). A damaged\n\
     segment is quarantined, not fatal: queries keep answering with the\n\
     damaged rows excluded and the degradation counted. fsck exits\n\
     non-zero when a store needs attention; scrub exits non-zero when\n\
     segments remain quarantined after the pass (and --repair).\n\
     snapshot, interval, timeline and density accept --store DIR in\n\
     place of --ott: the table is assembled from verified segments plus\n\
     the hot WAL tail, and quarantined rows show up in the answer's\n\
     quality line instead of failing the query.\n\
     \n\
     snapshot, interval and timeline accept --profile (per-phase span tree\n\
     plus counters) or --profile-json (same data as a JSON document), and\n\
     --sanitize to route the OTT through the anomaly gate (repair policies)\n\
     instead of rejecting inconsistent input outright.\n"
        .to_string()
}

fn load_plan(args: &Args) -> Result<FloorPlan, CliError> {
    let path: PathBuf = args.require("plan")?;
    let file = File::open(&path)
        .map_err(|e| CliError(format!("cannot open plan {}: {e}", path.display())))?;
    read_plan(&mut BufReader::new(file)).map_err(|e| CliError(format!("bad plan file: {e}")))
}

fn load_ott_rows(args: &Args) -> Result<Vec<OttRow>, CliError> {
    let path: PathBuf = args.require("ott")?;
    let file = File::open(&path)
        .map_err(|e| CliError(format!("cannot open OTT {}: {e}", path.display())))?;
    read_ott_csv(&mut BufReader::new(file)).map_err(|e| CliError(format!("bad OTT file: {e}")))
}

fn load_ott(args: &Args) -> Result<ObjectTrackingTable, CliError> {
    ObjectTrackingTable::from_rows(load_ott_rows(args)?)
        .map_err(|e| CliError(format!("inconsistent OTT: {e}")))
}

fn build_analytics(args: &Args) -> Result<(FlowAnalytics, Vec<PoiId>), CliError> {
    let plan = load_plan(args)?;
    let pois: Vec<PoiId> = plan.pois().iter().map(|p| p.id).collect();
    if pois.is_empty() {
        return err("the plan defines no POIs");
    }
    let vmax: f64 = args.get("vmax")?.unwrap_or(1.1);
    // With --sanitize, dirty rows are repaired by the anomaly gate (the
    // plan serves as the device/feasibility oracle) instead of failing
    // `from_rows`; the report rides on the façade for degraded-mode output.
    let sanitized = if args.switch("sanitize") {
        let rows = load_ott_rows(args)?;
        let cfg = SanitizeConfig::repair_all().with_vmax(vmax);
        let outcome = sanitize_rows(rows, &cfg, Some(&plan));
        let ott = ObjectTrackingTable::from_rows(outcome.rows)
            .map_err(|e| CliError(format!("OTT still inconsistent after sanitize: {e}")))?;
        Some((ott, outcome.report, outcome.repaired_objects))
    } else {
        None
    };
    // With --store (and no --ott) the table is assembled from the tiered
    // ingestion store: verified segments + hot WAL tail + open runs.
    // Quarantined segments degrade the answer instead of failing it.
    let store_view = if sanitized.is_none() && !args.flags.contains_key("ott") {
        match args.flags.get("store") {
            Some(_) => {
                let store_dir: PathBuf = args.require("store")?;
                let (mut store, _recovery) = open_store_for_maintenance(args, &store_dir, 1)?;
                let view = store.assemble_history().map_err(|e| {
                    CliError(format!("assembling history from {}: {e}", store_dir.display()))
                })?;
                Some(view)
            }
            None => None,
        }
    } else {
        None
    };
    let cfg = UrConfig {
        vmax,
        topology_check: !args.switch("no-topology"),
        resolution: GridResolution::COARSE,
        ..UrConfig::default()
    };
    let fa = match (sanitized, store_view) {
        (Some((ott, report, repaired)), _) => {
            FlowAnalytics::new(Arc::new(IndoorContext::new(plan)), ott, cfg)
                .with_sanitize_report(report, repaired)
        }
        (None, Some(view)) => FlowAnalytics::new(Arc::new(IndoorContext::new(plan)), view.ott, cfg)
            .with_storage_quarantine(view.quarantined_rows),
        (None, None) => {
            FlowAnalytics::new(Arc::new(IndoorContext::new(plan)), load_ott(args)?, cfg)
        }
    }
    .with_profiling(args.switch("profile") || args.switch("profile-json"));
    Ok((fa, pois))
}

/// Appends the query profile to `out` per the `--profile`/`--profile-json`
/// switches. With `--profile-json` the JSON document *replaces* the human
/// output so the result can be piped straight into other tools.
fn append_profile(out: String, profile: Option<&crate::obs::QueryProfile>, args: &Args) -> String {
    let Some(profile) = profile else { return out };
    if args.switch("profile-json") {
        format!("{}\n", profile.to_json())
    } else if args.switch("profile") {
        format!("{out}\n{}", profile.render())
    } else {
        out
    }
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let kind = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError("generate needs 'synthetic' or 'cph'".into()))?;
    let out_dir: PathBuf = args.require("out-dir")?;
    std::fs::create_dir_all(&out_dir)?;

    let (plan, ott, label) = match kind {
        "synthetic" => {
            let mut cfg = SyntheticConfig::default();
            if let Some(n) = args.get("objects")? {
                cfg.num_objects = n;
            }
            if let Some(d) = args.get("duration")? {
                cfg.duration = d;
            }
            if let Some(s) = args.get("seed")? {
                cfg.seed = s;
            }
            if let Some(r) = args.get("detection-range")? {
                cfg.detection_range = r;
            }
            let w = generate_synthetic(&cfg);
            (build_floor_plan(&cfg), w.ott, "synthetic")
        }
        "cph" => {
            let mut cfg = CphConfig::default();
            if let Some(n) = args.get("passengers")? {
                cfg.num_passengers = n;
            }
            if let Some(d) = args.get("duration")? {
                cfg.duration = d;
            }
            if let Some(s) = args.get("seed")? {
                cfg.seed = s;
            }
            let w = generate_cph(&cfg);
            let (plan, _) = crate::workload::build_airport_plan(&cfg);
            (plan, w.ott, "cph")
        }
        other => return err(format!("unknown dataset '{other}' (use synthetic|cph)")),
    };

    let plan_path = out_dir.join("plan.txt");
    let ott_path = out_dir.join("ott.csv");
    let readings_path = out_dir.join("readings.csv");
    let readings = readings_of(&ott);
    write_file_atomic(&plan_path, |buf| write_plan(buf, &plan))?;
    write_file_atomic(&ott_path, |buf| write_table_csv(buf, &ott))?;
    write_file_atomic(&readings_path, |buf| write_readings_csv(buf, &readings))?;
    Ok(format!(
        "generated {label} dataset: {} records for {} objects\n  {}\n  {}\n  {}\n",
        ott.len(),
        ott.object_count(),
        plan_path.display(),
        ott_path.display(),
        readings_path.display()
    ))
}

/// A raw reading stream equivalent to the table under merging: one
/// reading at each record endpoint, globally time-ordered — the input
/// format `inflow ingest` consumes.
fn readings_of(ott: &ObjectTrackingTable) -> Vec<RawReading> {
    let mut readings = Vec::with_capacity(ott.len() * 2);
    for r in ott.records() {
        readings.push(RawReading { object: r.object, device: r.device, t: r.ts });
        if r.te > r.ts {
            readings.push(RawReading { object: r.object, device: r.device, t: r.te });
        }
    }
    readings.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then_with(|| a.object.cmp(&b.object))
            .then_with(|| a.device.0.cmp(&b.device.0))
    });
    readings
}

fn format_result(
    fa: &FlowAnalytics,
    ranked: &[(PoiId, f64)],
    header: &str,
    stats: &crate::core::QueryStats,
    quality: &crate::core::DataQuality,
) -> String {
    format_result_as(fa, ranked, header, "flow", stats, quality)
}

fn format_result_as(
    fa: &FlowAnalytics,
    ranked: &[(PoiId, f64)],
    header: &str,
    value_label: &str,
    stats: &crate::core::QueryStats,
    quality: &crate::core::DataQuality,
) -> String {
    let plan = fa.engine().context().plan();
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{:<6} {:<20} {:>10}", "rank", "poi", value_label);
    for (rank, &(poi, flow)) in ranked.iter().enumerate() {
        let _ = writeln!(out, "{:<6} {:<20} {:>10.3}", rank + 1, plan.poi(poi).name, flow);
    }
    let _ = writeln!(
        out,
        "({} objects considered, {} URs, {} presence integrations)",
        stats.objects_considered, stats.urs_built, stats.presence_evaluations
    );
    let _ = writeln!(out, "{}", quality.render());
    out
}

/// The `--threads` value for the iterative algorithms; `None` when
/// absent, an error when present without `--iterative` (the join
/// algorithms are inherently sequential over the shared index).
fn parse_threads(args: &Args) -> Result<Option<usize>, CliError> {
    let Some(threads) = args.get::<usize>("threads")? else { return Ok(None) };
    if threads == 0 {
        return err("--threads must be at least 1");
    }
    if !args.switch("iterative") {
        return err("--threads requires --iterative");
    }
    Ok(Some(threads))
}

fn cmd_snapshot(args: &Args) -> Result<String, CliError> {
    let (fa, pois) = build_analytics(args)?;
    let t: f64 = args.require("t")?;
    let k: usize = args.get("k")?.unwrap_or(10);
    let threads = parse_threads(args)?;
    let q = SnapshotQuery::new(t, pois, k);
    let result = match (args.switch("iterative"), threads) {
        (true, Some(n)) => fa.snapshot_topk_iterative_threads(&q, n),
        (true, None) => fa.snapshot_topk_iterative(&q),
        (false, _) => fa.snapshot_topk_join(&q),
    };
    let out = format_result(
        &fa,
        &result.ranked,
        &format!("top-{k} POIs at t = {t}"),
        &result.stats,
        &result.quality,
    );
    Ok(append_profile(out, result.profile.as_deref(), args))
}

fn cmd_interval(args: &Args) -> Result<String, CliError> {
    let (fa, pois) = build_analytics(args)?;
    let ts: f64 = args.require("ts")?;
    let te: f64 = args.require("te")?;
    if te < ts {
        return err("--te must not precede --ts");
    }
    let k: usize = args.get("k")?.unwrap_or(10);
    let threads = parse_threads(args)?;
    let q = IntervalQuery::new(ts, te, pois, k);
    let result = match (args.switch("iterative"), threads) {
        (true, Some(n)) => fa.interval_topk_iterative_threads(&q, n),
        (true, None) => fa.interval_topk_iterative(&q),
        (false, _) => fa.interval_topk_join(&q),
    };
    let out = format_result(
        &fa,
        &result.ranked,
        &format!("top-{k} POIs over [{ts}, {te}]"),
        &result.stats,
        &result.quality,
    );
    Ok(append_profile(out, result.profile.as_deref(), args))
}

/// `inflow query distrib|longvisit`: the probabilistic batch verbs.
/// `distrib` ranks POIs by `P(count ≥ --kq)` from the exact
/// Poisson-binomial count distribution (convolution truncated at
/// `--kmax`); `longvisit` counts the objects whose expected dwell
/// within `[--ts, --te]` reaches `--min-dwell`.
fn cmd_query(args: &Args) -> Result<String, CliError> {
    let family = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError("query needs 'distrib' or 'longvisit'".into()))?;
    let (fa, pois) = build_analytics(args)?;
    let k: usize = args.get("k")?.unwrap_or(10);
    match family {
        "distrib" => {
            let kq: usize = args.get("kq")?.unwrap_or(1);
            if kq == 0 {
                return err("--kq must be at least 1");
            }
            let kmax = parse_kmax(args)? as usize;
            let q = match (args.get::<f64>("t")?, args.get::<f64>("ts")?, args.get::<f64>("te")?) {
                (Some(t), None, None) => DistribQuery::at(t, pois, kq, kmax, k),
                (None, Some(ts), Some(te)) => {
                    if te < ts {
                        return err("--te must not precede --ts");
                    }
                    DistribQuery::over(ts, te, pois, kq, kmax, k)
                }
                _ => return err("query distrib needs --t, or both --ts and --te"),
            };
            let result = fa.distrib_topk(&q);
            let header = match q.time {
                crate::core::DistribTime::At(t) => {
                    format!("top-{} POIs by P(count >= {kq}) at t = {t}", q.k)
                }
                crate::core::DistribTime::Over(ts, te) => {
                    format!("top-{} POIs by P(count >= {kq}) over [{ts}, {te}]", q.k)
                }
            };
            let by_poi: HashMap<_, _> = result.distributions.iter().map(|(p, d)| (*p, d)).collect();
            let plan = fa.engine().context().plan();
            let mut out = String::new();
            let _ = writeln!(out, "{header}");
            let _ = writeln!(
                out,
                "{:<6} {:<20} {:>12} {:>10} {:>8} {:>10}",
                "rank", "poi", "P(>=kq)", "E[count]", "median", "tail"
            );
            for (rank, &(poi, p)) in result.ranked.iter().enumerate() {
                let d = by_poi[&poi];
                let _ = writeln!(
                    out,
                    "{:<6} {:<20} {:>12.4} {:>10.3} {:>8} {:>10.2e}",
                    rank + 1,
                    plan.poi(poi).name,
                    p,
                    d.expectation(),
                    d.quantile(0.5),
                    d.tail_mass()
                );
            }
            let _ = writeln!(
                out,
                "({} objects considered, {} URs, {} presence integrations, kmax {kmax})",
                result.stats.objects_considered,
                result.stats.urs_built,
                result.stats.presence_evaluations
            );
            let _ = writeln!(out, "{}", result.quality.render());
            Ok(out)
        }
        "longvisit" => {
            let ts: f64 = args.require("ts")?;
            let te: f64 = args.require("te")?;
            if te < ts {
                return err("--te must not precede --ts");
            }
            let d: f64 = match args.get("min-dwell")? {
                Some(d) => d,
                None => args.require("d")?,
            };
            if !(d >= 0.0 && d.is_finite()) {
                return err("--min-dwell must be finite and non-negative");
            }
            let q = LongVisitQuery::new(ts, te, d, pois, k);
            let result = fa.longvisit_topk(&q);
            Ok(format_result_as(
                &fa,
                &result.ranked,
                &format!("top-{} POIs by objects dwelling >= {d} over [{ts}, {te}]", q.k),
                "objects",
                &result.stats,
                &result.quality,
            ))
        }
        other => err(format!("unknown query family '{other}' (use distrib|longvisit)")),
    }
}

fn cmd_timeline(args: &Args) -> Result<String, CliError> {
    let (fa, pois) = build_analytics(args)?;
    let start: f64 = args.require("start")?;
    let end: f64 = args.require("end")?;
    let bucket: f64 = args.require("bucket")?;
    if bucket <= 0.0 || end < start {
        return err("need --bucket > 0 and --end >= --start");
    }
    let k: usize = args.get("k")?.unwrap_or(5);
    let tl = flow_timeline(&fa, &pois, start, end, bucket);
    let plan = fa.engine().context().plan();
    let mut out = String::new();
    let _ = writeln!(out, "flow timeline [{start}, {end}] in {bucket}-second buckets");
    for (idx, b) in tl.buckets.iter().enumerate() {
        let mut top: Vec<(PoiId, f64)> = b.flows.clone();
        top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(k);
        let row: Vec<String> =
            top.iter().map(|&(p, f)| format!("{} ({f:.2})", plan.poi(p).name)).collect();
        let _ = writeln!(out, "  [{:>8.0}, {:>8.0}) #{idx}: {}", b.ts, b.te, row.join(", "));
    }
    let _ = writeln!(out, "{}", tl.quality.render());
    Ok(append_profile(out, tl.profile.as_deref(), args))
}

fn cmd_density(args: &Args) -> Result<String, CliError> {
    let (fa, _) = build_analytics(args)?;
    let t: f64 = args.require("t")?;
    let cell: f64 = args.get("cell-size")?.unwrap_or(10.0);
    let grid = snapshot_density(&fa, t, cell);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "density at t = {t} ({}×{} grid of {cell} m cells, total expected {:.2} objects)",
        grid.dims().0,
        grid.dims().1,
        grid.total()
    );
    for (i, j, value) in grid.hottest(8) {
        if value <= 0.0 {
            break;
        }
        let m = grid.cell_mbr(i, j);
        let _ = writeln!(
            out,
            "  cell ({i:>2}, {j:>2}) around ({:>6.1}, {:>6.1}): {value:.2} expected objects",
            m.center().x,
            m.center().y
        );
    }
    Ok(out)
}

fn cmd_render(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let out_path: PathBuf = args.require("out")?;
    let style = crate::viz::Style { labels: args.switch("labels"), ..Default::default() };

    // Optional uncertainty-region overlay for one object at one time.
    let svg = match (args.flags.get("ott"), args.flags.get("object"), args.flags.get("t")) {
        (Some(_), Some(_), Some(_)) => {
            let ott = load_ott(args)?;
            let object: u32 = args.require("object")?;
            let t: f64 = args.require("t")?;
            let ctx = Arc::new(IndoorContext::new(plan));
            let engine = UrEngine::new(
                Arc::clone(&ctx),
                UrConfig { vmax: args.get("vmax")?.unwrap_or(1.1), ..UrConfig::default() },
            );
            let Some(state) = ott.state_at(ObjectId(object), t) else {
                return err(format!("object {object} is not tracked at t = {t}"));
            };
            let ur = engine.snapshot_ur(&ott, state, t);
            SceneRenderer::with_style(ctx.plan(), style)
                .draw_pois()
                .draw_devices()
                .draw_uncertainty_region(&ur)
                .render()
        }
        (None, None, None) => {
            SceneRenderer::with_style(&plan, style).draw_pois().draw_devices().render()
        }
        _ => return err("render overlay needs all of --ott, --object and --t"),
    };
    std::fs::write(&out_path, &svg)?;
    Ok(format!("wrote {} ({} bytes)\n", out_path.display(), svg.len()))
}

/// The sanitize/readmit policy config from `--policy` and `--vmax`.
fn parse_policy(args: &Args) -> Result<SanitizeConfig, CliError> {
    let policy = args.get::<String>("policy")?.unwrap_or_else(|| "repair".to_string());
    let cfg = match policy.as_str() {
        "repair" => SanitizeConfig::repair_all(),
        "reject" => SanitizeConfig::reject_all(),
        "quarantine" => SanitizeConfig::quarantine_all(),
        other => return err(format!("unknown policy '{other}' (use repair|reject|quarantine)")),
    };
    Ok(cfg.with_vmax(args.get("vmax")?.unwrap_or(1.1)))
}

/// Renders a file image into memory and writes it via temp + fsync +
/// rename, so a crash mid-write can never leave a torn table where the
/// output should be.
fn write_file_atomic<E: std::fmt::Display>(
    path: impl AsRef<Path>,
    render: impl FnOnce(&mut Vec<u8>) -> Result<(), E>,
) -> Result<(), CliError> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    render(&mut buf).map_err(|e| CliError(format!("rendering {}: {e}", path.display())))?;
    atomic_write(&StdFs, path, &buf)
        .map_err(|e| CliError(format!("writing {}: {e}", path.display())))
}

/// Shared tail of `sanitize` and `readmit`: write the clean table and the
/// surviving quarantine to their `--out` / `--quarantine-out` targets.
fn write_sanitize_outputs(
    args: &Args,
    out: &mut String,
    rows: Vec<OttRow>,
    quarantined: &[(OttRow, crate::tracking::AnomalyKind)],
) -> Result<(), CliError> {
    if let Some(path) = args.flags.get("out") {
        let table = ObjectTrackingTable::from_rows(rows)
            .map_err(|e| CliError(format!("OTT still inconsistent after sanitize: {e}")))?;
        write_file_atomic(path, |buf| write_table_csv(buf, &table))?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let Some(path) = args.flags.get("quarantine-out") {
        write_file_atomic(path, |buf| write_quarantine_csv(buf, quarantined))?;
        let _ = writeln!(out, "wrote {path} ({} quarantined rows)", quarantined.len());
    }
    Ok(())
}

fn cmd_sanitize(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let rows = load_ott_rows(args)?;
    let cfg = parse_policy(args)?;
    let total_in = rows.len();
    let outcome = sanitize_rows(rows, &cfg, Some(&plan));
    let mut out = String::new();
    let _ = writeln!(out, "sanitized {total_in} rows -> {} rows", outcome.rows.len());
    out.push_str(&outcome.report.render());
    out.push('\n');
    write_sanitize_outputs(args, &mut out, outcome.rows, &outcome.quarantined)?;
    Ok(out)
}

fn cmd_readmit(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let clean = load_ott_rows(args)?;
    let qpath: PathBuf = args.require("quarantine")?;
    let file = File::open(&qpath)
        .map_err(|e| CliError(format!("cannot open quarantine {}: {e}", qpath.display())))?;
    let quarantined = read_quarantine_csv(&mut BufReader::new(file))
        .map_err(|e| CliError(format!("bad quarantine file: {e}")))?;
    let cfg = parse_policy(args)?;
    let q_in = quarantined.len();
    let q_rows: Vec<OttRow> = quarantined.iter().map(|&(r, _)| r).collect();
    let outcome = readmit_rows(clean, q_rows, &cfg, Some(&plan));
    let mut out = String::new();
    let _ = writeln!(out, "readmitted {} of {q_in} quarantined rows", outcome.report.readmitted);
    out.push_str(&outcome.report.render());
    out.push('\n');
    write_sanitize_outputs(args, &mut out, outcome.rows, &outcome.quarantined)?;
    Ok(out)
}

/// The fresh-store tracker configuration from `--max-gap`/`--lateness`.
/// Only consulted when the store directory holds no prior state: an
/// existing WAL or snapshot carries its own durable config.
fn fresh_tracker(args: &Args) -> Result<OnlineTracker, CliError> {
    let max_gap: f64 = args.get("max-gap")?.unwrap_or(60.0);
    if !(max_gap > 0.0 && max_gap.is_finite()) {
        return err("--max-gap must be positive and finite");
    }
    Ok(match args.get("lateness")? {
        Some(l) => OnlineTracker::with_reorder(max_gap, l),
        None => OnlineTracker::new(max_gap),
    })
}

fn cmd_ingest(args: &Args) -> Result<String, CliError> {
    let store_dir: PathBuf = args.require("store")?;
    let readings_path: PathBuf = args.require("readings")?;
    let file = File::open(&readings_path)
        .map_err(|e| CliError(format!("cannot open readings {}: {e}", readings_path.display())))?;
    let readings = read_readings_csv(&mut BufReader::new(file))
        .map_err(|e| CliError(format!("bad readings file: {e}")))?;
    // 0 disables the segment tier / background scrubbing (the default
    // for one-shot ingestion; serve defaults them on).
    let compact_every: u64 = args.get("compact-every")?.unwrap_or(0);
    let scrub_every: u64 = args.get("scrub-every")?.unwrap_or(0);
    let opts = StoreOptions {
        snapshot_every: Some(args.get("snapshot-every")?.unwrap_or(1024)),
        sync_each_reading: !args.switch("no-sync"),
        compact_every: (compact_every > 0).then_some(compact_every),
        scrub_every: (scrub_every > 0).then_some(scrub_every),
        ..StoreOptions::default()
    };
    let (mut store, report) = IngestStore::open(StdFs, &store_dir, fresh_tracker(args)?, opts)
        .map_err(|e| CliError(format!("opening store {}: {e}", store_dir.display())))?;
    let mut out = String::new();
    out.push_str(&report.render());

    // Resume: everything the WAL already holds is skipped, which makes a
    // rerun after a crash (or a plain rerun) idempotent.
    let skip = report.wal_records as usize;
    if skip > readings.len() {
        return err(format!(
            "store already holds {skip} readings but the input has only {}; \
             wrong --readings file for this store?",
            readings.len()
        ));
    }
    let mut ingested = 0u64;
    let mut rejected = 0u64;
    for &r in &readings[skip..] {
        match store.ingest(r) {
            Ok(()) => ingested += 1,
            // The reading is durable but the tracker refused it (e.g.
            // strict-mode regression): log and continue, like recovery does.
            Err(StoreError::Stream(_)) => rejected += 1,
            Err(e) => return err(format!("ingest failed at seq {}: {e}", store.seq())),
        }
    }
    let total = store.seq();
    let ott = store.finish().map_err(|e| CliError(format!("closing store: {e}")))?;
    let _ = writeln!(
        out,
        "ingested {ingested} readings ({skip} already durable, {rejected} rejected); \
         {total} total in WAL"
    );
    let _ = writeln!(out, "OTT: {} records for {} objects", ott.len(), ott.object_count());
    if let Some(path) = args.flags.get("out") {
        write_file_atomic(path, |buf| write_table_csv(buf, &ott))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

fn cmd_recover(args: &Args) -> Result<String, CliError> {
    let store_dir: PathBuf = args.require("store")?;
    let mut rec = crate::obs::Recorder::enabled();
    let span = rec.enter("recover");
    let (store, report) =
        IngestStore::open(StdFs, &store_dir, fresh_tracker(args)?, StoreOptions::default())
            .map_err(|e| CliError(format!("opening store {}: {e}", store_dir.display())))?;
    rec.exit(span);
    rec.add(crate::obs::Counter::RecoveryWalReplayed, report.wal_replayed);
    rec.add(crate::obs::Counter::RecoveryTruncatedBytes, report.wal_truncated_bytes);
    rec.add(crate::obs::Counter::RecoverySnapshotsRejected, report.snapshots_rejected);
    rec.add(crate::obs::Counter::RecoveryReplayRejected, report.replay_rejected);

    let mut out = report.render();
    let seq = store.seq();
    let tracker = store.into_tracker().map_err(|e| CliError(format!("closing store: {e}")))?;
    let ott =
        tracker.snapshot().map_err(|e| CliError(format!("recovered state inconsistent: {e}")))?;
    let _ = writeln!(
        out,
        "recovered state: {seq} durable readings, {} records for {} objects",
        ott.len(),
        ott.object_count()
    );
    if let Some(path) = args.flags.get("out") {
        write_file_atomic(path, |buf| write_table_csv(buf, &ott))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(append_profile(out, rec.finish().as_ref(), args))
}

/// Opens the store for offline maintenance: normal crash recovery plus
/// a scrub budget wide enough to cover every segment in one pass.
fn open_store_for_maintenance(
    args: &Args,
    store_dir: &Path,
    budget: usize,
) -> Result<(IngestStore<StdFs>, RecoveryReport), CliError> {
    let opts = StoreOptions { scrub_budget: budget.max(1), ..StoreOptions::default() };
    IngestStore::open(StdFs, store_dir, fresh_tracker(args)?, opts)
        .map_err(|e| CliError(format!("opening store {}: {e}", store_dir.display())))
}

fn cmd_fsck(args: &Args) -> Result<String, CliError> {
    let store_dir: PathBuf = args.require("store")?;
    let report = crate::tracking::store::scrub::fsck(&StdFs, &store_dir)
        .map_err(|e| CliError(format!("fsck {}: {e}", store_dir.display())))?;
    let mut out = report.render();
    if report.healthy() {
        return Ok(out);
    }
    if !args.switch("repair") {
        let _ = writeln!(out, "(rerun with --repair to re-seal damaged segments from the WAL)");
        return Err(CliError(out));
    }
    // Repair: crash recovery fixes the WAL tail and a corrupt manifest;
    // a full-coverage scrub pass quarantines damaged segments; repair
    // re-seals them from the recovered closed log (byte-identical —
    // sealing is deterministic); stale snapshots are swept.
    let (mut store, recovery) = open_store_for_maintenance(args, &store_dir, usize::MAX)?;
    out.push_str(&recovery.render());
    let scrub = store.scrub_pass().map_err(|e| CliError(format!("scrub pass: {e}")))?;
    out.push_str(&scrub.render());
    let (repaired, unrepairable) =
        store.repair_segments().map_err(|e| CliError(format!("segment repair: {e}")))?;
    let snaps_removed =
        store.remove_invalid_snapshots().map_err(|e| CliError(format!("snapshot sweep: {e}")))?;
    let _ = writeln!(
        out,
        "repaired {repaired} segment(s) ({unrepairable} unrepairable), \
         removed {snaps_removed} invalid snapshot(s)"
    );
    drop(store);
    let after = crate::tracking::store::scrub::fsck(&StdFs, &store_dir)
        .map_err(|e| CliError(format!("post-repair fsck {}: {e}", store_dir.display())))?;
    out.push_str(&after.render());
    if after.healthy() {
        Ok(out)
    } else {
        Err(CliError(out))
    }
}

fn cmd_scrub(args: &Args) -> Result<String, CliError> {
    let store_dir: PathBuf = args.require("store")?;
    let budget: usize = args.get("budget")?.unwrap_or(usize::MAX);
    let (mut store, _recovery) = open_store_for_maintenance(args, &store_dir, budget)?;
    let report = store.scrub_pass().map_err(|e| CliError(format!("scrub pass: {e}")))?;
    let mut out = report.render();
    if args.switch("repair") && store.manifest().quarantined_segments() > 0 {
        let (repaired, unrepairable) =
            store.repair_segments().map_err(|e| CliError(format!("segment repair: {e}")))?;
        let _ = writeln!(out, "repaired {repaired} segment(s), {unrepairable} unrepairable");
    }
    let remaining = store.manifest().quarantined_segments();
    if remaining > 0 {
        let _ = writeln!(
            out,
            "{remaining} segment(s) remain quarantined ({} row(s) excluded from answers)",
            store.manifest().quarantined_rows()
        );
        return Err(CliError(out));
    }
    Ok(out)
}

/// The server configuration shared by `serve`, `record` and `replay`.
/// Replays must run under the exact configuration of the recording run,
/// so all three commands accept the same flags through this one path.
fn serve_config(args: &Args, store_dir: PathBuf) -> Result<ServeConfig, CliError> {
    let max_gap: f64 = args.get("max-gap")?.unwrap_or(60.0);
    if !(max_gap > 0.0 && max_gap.is_finite()) {
        return err("--max-gap must be positive and finite");
    }
    // 0 disables the segment tier / background scrubbing.
    let compact_every: u64 = args.get("compact-every")?.unwrap_or(4096);
    let scrub_every: u64 = args.get("scrub-every")?.unwrap_or(1024);
    let cfg = ServeConfig {
        shards: args.get("shards")?.unwrap_or(2),
        max_gap,
        lateness: args.get("lateness")?,
        ur: UrConfig {
            vmax: args.get("vmax")?.unwrap_or(1.1),
            resolution: GridResolution::COARSE,
            ..UrConfig::default()
        },
        store_dir,
        sync_each_reading: !args.switch("no-sync"),
        snapshot_every: Some(args.get("snapshot-every")?.unwrap_or(1024)),
        compact_every: (compact_every > 0).then_some(compact_every),
        scrub_every: (scrub_every > 0).then_some(scrub_every),
        pool: args.get("pool")?.unwrap_or(4),
        port: args.get("port")?.unwrap_or(0),
        trace: !args.switch("no-trace"),
        slow_ms: args.get("slow-ms")?.unwrap_or(10),
        flight_capacity: args.get("flight-capacity")?.unwrap_or(4096),
        max_queue: args.get("max-queue")?.unwrap_or(16_384),
        max_conns: args.get("max-conns")?.unwrap_or(1024),
    };
    if cfg.shards == 0 || cfg.pool == 0 {
        return err("--shards and --pool must be at least 1");
    }
    if cfg.max_conns == 0 {
        return err("--max-conns must be at least 1");
    }
    Ok(cfg)
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let store_dir: PathBuf = args.require("store")?;
    let cfg = serve_config(args, store_dir)?;
    let handle = Server::start(Arc::new(IndoorContext::new(plan)), cfg)
        .map_err(|e| CliError(format!("starting server: {e}")))?;
    let addr = handle.addr();
    // The listening line must reach the user (and any script polling
    // --addr-file) *before* the blocking wait, so it cannot ride on the
    // returned string.
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = args.flags.get("addr-file") {
        write_file_atomic(path, |buf: &mut Vec<u8>| -> Result<(), std::io::Error> {
            buf.extend_from_slice(addr.to_string().as_bytes());
            Ok(())
        })?;
    }
    let metrics = handle.metrics();
    handle.wait();
    Ok(format!("server stopped\n{}", metrics.render()))
}

/// The `--pois 1,2,3` list (empty = all plan POIs, resolved server-side).
fn parse_pois(args: &Args) -> Result<Vec<PoiId>, CliError> {
    let Some(list) = args.flags.get("pois") else { return Ok(Vec::new()) };
    list.split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map(PoiId)
                .map_err(|_| CliError(format!("bad POI id '{s}' in --pois")))
        })
        .collect()
}

/// The subscription/query spec from `--t` or `--ts`/`--te`, modulated
/// into the probabilistic kinds by `--kq` (count distribution) and
/// `--min-dwell` (long visit).
fn parse_subspec(args: &Args) -> Result<Option<SubSpec>, CliError> {
    let kq: Option<u32> = args.get("kq")?;
    let dwell: Option<f64> = args.get("min-dwell")?;
    let kind = match (args.get::<f64>("t")?, args.get::<f64>("ts")?, args.get::<f64>("te")?) {
        (Some(t), None, None) => match kq {
            Some(kq) => {
                if kq == 0 {
                    return err("--kq must be at least 1");
                }
                SubKind::Distrib { t, kq, kmax: parse_kmax(args)? }
            }
            None => SubKind::Snapshot { t },
        },
        (None, Some(ts), Some(te)) => {
            if te < ts {
                return err("--te must not precede --ts");
            }
            match dwell {
                Some(d) => {
                    if !(d >= 0.0 && d.is_finite()) {
                        return err("--min-dwell must be finite and non-negative");
                    }
                    SubKind::LongVisit { ts, te, d }
                }
                None => SubKind::Interval { ts, te },
            }
        }
        (None, None, None) => return Ok(None),
        _ => return err("give either --t, or both --ts and --te"),
    };
    if kq.is_some() && !matches!(kind, SubKind::Distrib { .. }) {
        return err("--kq needs --t (count distributions are snapshot-time queries)");
    }
    if dwell.is_some() && !matches!(kind, SubKind::LongVisit { .. }) {
        return err("--min-dwell needs --ts and --te");
    }
    let epsilon: f64 = args.get("epsilon")?.unwrap_or(0.0);
    if !(epsilon >= 0.0 && epsilon.is_finite()) {
        return err("--epsilon must be finite and non-negative");
    }
    Ok(Some(SubSpec { kind, k: args.get("k")?.unwrap_or(10), epsilon, pois: parse_pois(args)? }))
}

/// The `--kmax` convolution truncation bound (default 32).
fn parse_kmax(args: &Args) -> Result<u32, CliError> {
    let kmax: u32 = args.get("kmax")?.unwrap_or(32);
    if kmax == 0 {
        return err("--kmax must be at least 1");
    }
    Ok(kmax)
}

/// One `kind:key=value,...` item of the `--subs` list (see usage). The
/// compact form lets `inflow record` register several subscriptions of
/// different kinds in one run, so a recorded workload can exercise every
/// answer family through the replay machinery.
fn parse_sub_compact(item: &str, pois: &[PoiId]) -> Result<SubSpec, CliError> {
    let item = item.trim();
    let (kind_name, rest) = item.split_once(':').unwrap_or((item, ""));
    let mut kv: HashMap<&str, f64> = HashMap::new();
    for pair in rest.split(',').filter(|p| !p.trim().is_empty()) {
        let Some((key, value)) = pair.split_once('=') else {
            return err(format!("--subs item '{item}': expected key=value, got '{pair}'"));
        };
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| CliError(format!("--subs item '{item}': bad value in '{pair}'")))?;
        kv.insert(key.trim(), value);
    }
    fn need(kv: &mut HashMap<&str, f64>, item: &str, key: &str) -> Result<f64, CliError> {
        kv.remove(key).ok_or_else(|| CliError(format!("--subs item '{item}' needs {key}=")))
    }
    let kind = match kind_name {
        "snapshot" => SubKind::Snapshot { t: need(&mut kv, item, "t")? },
        "interval" => {
            SubKind::Interval { ts: need(&mut kv, item, "ts")?, te: need(&mut kv, item, "te")? }
        }
        "distrib" => SubKind::Distrib {
            t: need(&mut kv, item, "t")?,
            kq: need(&mut kv, item, "kq")?.max(1.0) as u32,
            kmax: kv.remove("kmax").unwrap_or(32.0).max(1.0) as u32,
        },
        "longvisit" => SubKind::LongVisit {
            ts: need(&mut kv, item, "ts")?,
            te: need(&mut kv, item, "te")?,
            d: need(&mut kv, item, "d")?,
        },
        other => {
            return err(format!(
                "--subs item '{item}': unknown kind '{other}' \
                 (use snapshot|interval|distrib|longvisit)"
            ))
        }
    };
    let k = kv.remove("k").unwrap_or(10.0) as usize;
    let epsilon = kv.remove("epsilon").unwrap_or(0.0);
    if let Some(extra) = kv.keys().next() {
        return err(format!("--subs item '{item}': unknown key '{extra}'"));
    }
    Ok(SubSpec { kind, k, epsilon, pois: pois.to_vec() })
}

fn format_ranked(ranked: &[(PoiId, f64)]) -> String {
    if ranked.is_empty() {
        return "(empty)".to_string();
    }
    ranked.iter().map(|&(p, f)| format!("{p}={f:.3}")).collect::<Vec<_>>().join(", ")
}

/// The client socket timeout from `--timeout-ms` (default 30s, `0` to
/// disable). A hung or partitioned server then surfaces as a typed
/// timeout error instead of a read that blocks forever.
fn client_timeout(args: &Args) -> Result<Option<std::time::Duration>, CliError> {
    let ms: u64 = args.get("timeout-ms")?.unwrap_or(30_000);
    Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

fn cmd_watch(args: &Args) -> Result<String, CliError> {
    let addr: std::net::SocketAddr = args.require("addr")?;
    let mut client = Client::connect_with(addr, client_timeout(args)?)
        .map_err(|e| CliError(format!("connecting to {addr}: {e}")))?;
    let mut out = String::new();

    let sub = match parse_subspec(args)? {
        Some(spec) => {
            let id = client.subscribe(&spec).map_err(|e| CliError(format!("subscribe: {e}")))?;
            let _ = writeln!(
                out,
                "subscribed #{id}: {:?} k={} epsilon={}",
                spec.kind, spec.k, spec.epsilon
            );
            Some((id, spec))
        }
        None => None,
    };

    if let Some(path) = args.flags.get("publish") {
        let file =
            File::open(path).map_err(|e| CliError(format!("cannot open readings {path}: {e}")))?;
        let readings = read_readings_csv(&mut BufReader::new(file))
            .map_err(|e| CliError(format!("bad readings file: {e}")))?;
        let chunk: usize = args.get("chunk")?.unwrap_or(256);
        if chunk == 0 {
            return err("--chunk must be at least 1");
        }
        for batch in readings.chunks(chunk) {
            client.publish(batch).map_err(|e| CliError(format!("publish: {e}")))?;
            client.barrier().map_err(|e| CliError(format!("barrier: {e}")))?;
            for u in client.take_updates() {
                let _ = writeln!(
                    out,
                    "update sub=#{} seq={}: {}",
                    u.sub_id,
                    u.seq,
                    format_ranked(&u.ranked)
                );
            }
        }
        let _ = writeln!(out, "published {} readings", readings.len());
    } else {
        // No stream of our own: sync once so any initial subscription
        // result is in the buffer.
        client.barrier().map_err(|e| CliError(format!("barrier: {e}")))?;
        for u in client.take_updates() {
            let _ = writeln!(
                out,
                "update sub=#{} seq={}: {}",
                u.sub_id,
                u.seq,
                format_ranked(&u.ranked)
            );
        }
    }

    if let Some((id, spec)) = &sub {
        let current = client.current(*id).map_err(|e| CliError(format!("current: {e}")))?;
        let _ = writeln!(out, "current sub=#{id}: {}", format_ranked(&current));
        if args.switch("detail") {
            if !matches!(spec.kind, SubKind::Distrib { .. }) {
                return err("--detail needs a count-distribution subscription (--t with --kq)");
            }
            let json = client.distrib_json(spec).map_err(|e| CliError(format!("distrib: {e}")))?;
            let _ = writeln!(out, "{json}");
        }
    }
    if args.switch("stats") {
        out.push_str(&client.stats().map_err(|e| CliError(format!("stats: {e}")))?);
    }
    if args.switch("shutdown") {
        client.shutdown_server().map_err(|e| CliError(format!("shutdown: {e}")))?;
        let _ = writeln!(out, "server shutdown requested");
    }
    if sub.is_none()
        && !args.flags.contains_key("publish")
        && !args.switch("stats")
        && !args.switch("shutdown")
    {
        return err("watch needs at least one of --t/--ts+--te, --publish, --stats, --shutdown");
    }
    Ok(out)
}

/// `inflow record`: drive a fresh server through a readings file — with
/// an optional chaos schedule — and write the replayable `IFRPL001`
/// session log with a state digest at every barrier.
fn cmd_record(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let store_dir: PathBuf = args.require("store")?;
    // A replay always starts from an empty store; a recording taken over
    // recovered state would therefore diverge at the very first barrier.
    if store_dir.exists()
        && store_dir
            .read_dir()
            .map_err(|e| CliError(format!("reading {}: {e}", store_dir.display())))?
            .next()
            .is_some()
    {
        return err(format!(
            "--store {} is not empty; record needs a fresh store directory",
            store_dir.display()
        ));
    }
    let readings_path: PathBuf = args.require("readings")?;
    let file = File::open(&readings_path)
        .map_err(|e| CliError(format!("cannot open readings {}: {e}", readings_path.display())))?;
    let readings = read_readings_csv(&mut BufReader::new(file))
        .map_err(|e| CliError(format!("bad readings file: {e}")))?;
    if readings.is_empty() {
        return err("readings file is empty; nothing to record");
    }
    let out_path: PathBuf = args.require("out")?;
    let cfg = serve_config(args, store_dir.clone())?;
    let shards = cfg.shards as u32;
    let chunk: usize = args.get("chunk")?.unwrap_or(64);
    let barrier_every: usize = args.get("barrier-every")?.unwrap_or(8);
    if chunk == 0 || barrier_every == 0 {
        return err("--chunk and --barrier-every must be at least 1");
    }
    let publishes = readings.len().div_ceil(chunk) as u64;
    let logical_ops = publishes + publishes / barrier_every as u64;
    let fault_plan = if let Some(spec) = args.flags.get("faults") {
        if args.flags.contains_key("fault-seed") {
            return err("give either --faults or --fault-seed, not both");
        }
        FaultPlan::parse(spec).map_err(|e| CliError(format!("bad --faults: {e}")))?
    } else if let Some(seed) = args.get::<u64>("fault-seed")? {
        let count: usize = args.get("fault-count")?.unwrap_or(3);
        FaultPlan::generate(seed, logical_ops.max(1), shards, count)
    } else {
        FaultPlan::default()
    };
    let faults = fault_plan.events.len();
    let mut subs: Vec<SubSpec> = parse_subspec(args)?.into_iter().collect();
    if let Some(list) = args.flags.get("subs") {
        let pois = parse_pois(args)?;
        for item in list.split(';').filter(|s| !s.trim().is_empty()) {
            subs.push(parse_sub_compact(item, &pois)?);
        }
    }
    let handle = Server::start(Arc::new(IndoorContext::new(plan)), cfg)
        .map_err(|e| CliError(format!("starting server: {e}")))?;
    let result = record_run(
        &handle,
        store_dir,
        &readings,
        &RecordOptions { chunk, barrier_every, subs, plan: fault_plan },
    );
    handle.shutdown();
    handle.wait();
    let log = result.map_err(|e| CliError(format!("recording: {e}")))?;
    let bytes = log.to_bytes();
    write_file_atomic(&out_path, |buf: &mut Vec<u8>| -> Result<(), std::io::Error> {
        buf.extend_from_slice(&bytes);
        Ok(())
    })?;
    Ok(format!(
        "recorded {} readings as {} ops ({publishes} publishes, {} barriers, {faults} faults)\n\
         wrote {} ({} bytes)\n",
        readings.len(),
        log.ops.len(),
        log.barriers(),
        out_path.display(),
        bytes.len()
    ))
}

/// `inflow replay`: re-drive a recorded log against a fresh server and
/// verify the state digest at every barrier. Divergence is a non-zero
/// exit carrying the typed report; `--bisect` additionally shrinks the
/// log to its minimal diverging prefix and writes it to `--out`.
fn cmd_replay(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let log_path: PathBuf = args.require("log")?;
    let bytes = std::fs::read(&log_path)
        .map_err(|e| CliError(format!("cannot read log {}: {e}", log_path.display())))?;
    let log = ReplayLog::parse(&bytes)
        .map_err(|e| CliError(format!("log {}: {e}", log_path.display())))?;
    let base: PathBuf = args.require("store")?;
    let cfg = serve_config(args, base.clone())?;
    if log.meta.shards != 0 && cfg.shards as u32 != log.meta.shards {
        return err(format!(
            "log was recorded with {} shards but --shards is {}; a replay must run \
             the recording's configuration",
            log.meta.shards, cfg.shards
        ));
    }
    let ctx = Arc::new(IndoorContext::new(plan));
    // Each probe (the replay itself, then every bisect step) gets a
    // pristine store under --store; stale probe dirs are cleared so a
    // rerun cannot recover into yesterday's state.
    let mut probe = 0u32;
    let mut start_server = || -> std::io::Result<(crate::service::ServerHandle, PathBuf)> {
        probe += 1;
        let dir = base.join(format!("replay-{probe}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        let mut probe_cfg = cfg.clone();
        probe_cfg.store_dir = dir.clone();
        probe_cfg.port = 0;
        let handle = Server::start(Arc::clone(&ctx), probe_cfg)?;
        Ok((handle, dir))
    };
    if args.switch("bisect") {
        match bisect(&log, &mut start_server).map_err(|e| CliError(format!("replay: {e}")))? {
            None => Ok(format!(
                "replay clean: {} ops, {} barriers verified, no divergence\n",
                log.ops.len(),
                log.barriers()
            )),
            Some(found) => {
                let minimal = found.minimal.to_bytes();
                let out_path = match args.flags.get("out") {
                    Some(p) => PathBuf::from(p),
                    None => PathBuf::from(format!("{}.min", log_path.display())),
                };
                write_file_atomic(&out_path, |buf: &mut Vec<u8>| -> Result<(), std::io::Error> {
                    buf.extend_from_slice(&minimal);
                    Ok(())
                })?;
                err(format!(
                    "first diverging barrier: {} ({})\n\
                     minimal diverging prefix: {} ops, wrote {}",
                    found.first_diverging_barrier,
                    match found.prior_prefix_clean {
                        Some(true) => "prefix one barrier shorter replays clean",
                        Some(false) => "warning: one barrier shorter also diverges",
                        None => "divergence is at the first barrier",
                    },
                    found.minimal.ops.len(),
                    out_path.display()
                ))
            }
        }
    } else {
        let report =
            replay(&log, &mut start_server).map_err(|e| CliError(format!("replay: {e}")))?;
        match report.divergence {
            None => Ok(format!(
                "replay clean: {} ops, {} barriers verified, no divergence\n",
                log.ops.len(),
                report.barriers_checked
            )),
            Some(div) => err(format!("{div}\n(rerun with --bisect to shrink the log)")),
        }
    }
}

/// One validated `METRICS` snapshot, reduced to what the dashboard
/// shows. Parsing is strict on purpose: `top --once` is the smoke
/// test's canary for malformed telemetry, so any missing or mistyped
/// field is an error, not a blank cell.
struct TopSnapshot {
    uptime_ns: u64,
    counters: Vec<(String, u64)>,
    /// (name, unit, count, mean, p50, p99, max)
    histograms: Vec<(String, String, u64, f64, u64, u64, u64)>,
    /// (shard index, queue depth)
    shards: Vec<(u64, u64)>,
}

fn snapshot_field<'a>(
    v: &'a crate::obs::Json,
    key: &str,
    ctx: &str,
) -> Result<&'a crate::obs::Json, CliError> {
    v.get(key).ok_or_else(|| CliError(format!("malformed metrics snapshot: {ctx} missing '{key}'")))
}

fn snapshot_u64(v: &crate::obs::Json, key: &str, ctx: &str) -> Result<u64, CliError> {
    snapshot_field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| CliError(format!("malformed metrics snapshot: {ctx} '{key}' is not a u64")))
}

/// Parses and validates a `METRICS` reply. Beyond field presence, this
/// checks the invariants the snapshot format promises: histogram bucket
/// counts sum to the series count, and every bucket has `lo <= hi`.
fn parse_top_snapshot(raw: &str) -> Result<TopSnapshot, CliError> {
    let json = crate::obs::Json::parse(raw)
        .map_err(|e| CliError(format!("malformed metrics snapshot: {e}")))?;
    let version = snapshot_u64(&json, "version", "snapshot")?;
    if version != 1 {
        return err(format!("unsupported metrics snapshot version {version}"));
    }
    let uptime_ns = snapshot_u64(&json, "uptime_ns", "snapshot")?;
    snapshot_u64(&json, "slow_threshold_ns", "snapshot")?;

    let counters_obj =
        snapshot_field(&json, "counters", "snapshot")?.as_obj().ok_or_else(|| {
            CliError("malformed metrics snapshot: 'counters' is not an object".into())
        })?;
    let mut counters = Vec::new();
    for (name, v) in counters_obj {
        let v = v.as_u64().ok_or_else(|| {
            CliError(format!("malformed metrics snapshot: counter '{name}' is not a u64"))
        })?;
        counters.push((name.clone(), v));
    }

    let hists = snapshot_field(&json, "histograms", "snapshot")?.as_arr().ok_or_else(|| {
        CliError("malformed metrics snapshot: 'histograms' is not an array".into())
    })?;
    let mut histograms = Vec::new();
    for h in hists {
        let name = snapshot_field(h, "name", "histogram")?
            .as_str()
            .ok_or_else(|| CliError("malformed metrics snapshot: histogram name".into()))?
            .to_string();
        let unit = snapshot_field(h, "unit", "histogram")?
            .as_str()
            .ok_or_else(|| {
                CliError(format!("malformed metrics snapshot: histogram '{name}' unit"))
            })?
            .to_string();
        let count = snapshot_u64(h, "count", &name)?;
        let mean = snapshot_field(h, "mean", &name)?
            .as_f64()
            .ok_or_else(|| CliError(format!("malformed metrics snapshot: '{name}' mean")))?;
        let p50 = snapshot_u64(h, "p50", &name)?;
        let p99 = snapshot_u64(h, "p99", &name)?;
        let max = snapshot_u64(h, "max", &name)?;
        let buckets = snapshot_field(h, "buckets", &name)?
            .as_arr()
            .ok_or_else(|| CliError(format!("malformed metrics snapshot: '{name}' buckets")))?;
        let mut bucket_total = 0u64;
        for b in buckets {
            let lo = snapshot_u64(b, "lo", &name)?;
            let hi = snapshot_u64(b, "hi", &name)?;
            let n = snapshot_u64(b, "n", &name)?;
            if lo > hi {
                return err(format!(
                    "malformed metrics snapshot: '{name}' bucket has lo {lo} > hi {hi}"
                ));
            }
            bucket_total = bucket_total.saturating_add(n);
        }
        if bucket_total != count {
            return err(format!(
                "malformed metrics snapshot: '{name}' buckets sum to {bucket_total}, count is {count}"
            ));
        }
        histograms.push((name, unit, count, mean, p50, p99, max));
    }

    let shard_arr = snapshot_field(&json, "shards", "snapshot")?
        .as_arr()
        .ok_or_else(|| CliError("malformed metrics snapshot: 'shards' is not an array".into()))?;
    let mut shards = Vec::new();
    for s in shard_arr {
        shards
            .push((snapshot_u64(s, "shard", "shards")?, snapshot_u64(s, "queue_depth", "shards")?));
    }

    Ok(TopSnapshot { uptime_ns, counters, histograms, shards })
}

/// Scales nanoseconds into a human unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one dashboard frame. `prev` (the previous poll's counters
/// and the seconds elapsed since it) turns monotone counters into
/// per-second rates.
fn render_top(
    addr: &std::net::SocketAddr,
    snap: &TopSnapshot,
    prev: Option<(&[(String, u64)], f64)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "inflow top — {addr}  up {:.1}s", snap.uptime_ns as f64 / 1e9);
    out.push_str("\ncounters (nonzero):\n");
    for (name, v) in &snap.counters {
        if *v == 0 {
            continue;
        }
        let rate = prev.and_then(|(p, dt)| {
            let old = p.iter().find(|(n, _)| n == name).map(|&(_, v)| v)?;
            (dt > 0.0).then(|| (v.saturating_sub(old)) as f64 / dt)
        });
        match rate {
            Some(r) => {
                let _ = writeln!(out, "  {name:<28} {v:>12}  {r:>10.1}/s");
            }
            None => {
                let _ = writeln!(out, "  {name:<28} {v:>12}");
            }
        }
    }
    out.push_str("\nlatency / value series:\n");
    let _ = writeln!(
        out,
        "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "series", "count", "mean", "p50", "p99", "max"
    );
    for (name, unit, count, mean, p50, p99, max) in &snap.histograms {
        if *count == 0 {
            continue;
        }
        if unit == "ns" {
            let _ = writeln!(
                out,
                "  {name:<24} {count:>8} {:>10} {:>10} {:>10} {:>10}",
                fmt_ns(*mean as u64),
                fmt_ns(*p50),
                fmt_ns(*p99),
                fmt_ns(*max),
            );
        } else {
            let _ = writeln!(
                out,
                "  {name:<24} {count:>8} {mean:>10.1} {p50:>10} {p99:>10} {max:>10}  ({unit})"
            );
        }
    }
    // Always-on tier summary (even all-zero): the one-line health view
    // of compaction and scrubbing across every shard store.
    let counter =
        |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
    let _ = writeln!(
        out,
        "\nsegment tier: {} compaction(s) ({} sealed, {} merged); \
         {} scrub pass(es), {} corruption(s), {} quarantined",
        counter("store_compactions"),
        counter("segments_sealed"),
        counter("segments_merged"),
        counter("scrub_passes"),
        counter("scrub_corruptions"),
        counter("segments_quarantined"),
    );
    // Subscriptions by answer kind: how the serving load splits across
    // the expected-flow and probabilistic families.
    let _ = writeln!(
        out,
        "subscriptions by kind: {} snapshot, {} interval, {} distrib, {} longvisit \
         ({} distrib detail queries)",
        counter("serve_snapshot_subscriptions"),
        counter("serve_interval_subscriptions"),
        counter("serve_distrib_subscriptions"),
        counter("serve_longvisit_subscriptions"),
        counter("serve_distrib_queries"),
    );
    out.push_str("\nshard queues:\n  ");
    for (i, d) in &snap.shards {
        let _ = write!(out, "#{i}:{d} ");
    }
    out.push('\n');
    out
}

fn cmd_top(args: &Args) -> Result<String, CliError> {
    let addr: std::net::SocketAddr = args.require("addr")?;
    let once = args.switch("once");
    let interval: f64 = args.get("interval")?.unwrap_or(1.0);
    if !(interval > 0.0 && interval.is_finite()) {
        return err("--interval must be positive and finite");
    }
    let count: u64 = match args.get::<u64>("count")? {
        Some(0) => return err("--count must be at least 1"),
        Some(n) => n,
        None if once => 1,
        None => u64::MAX,
    };
    let mut client = Client::connect_with(addr, client_timeout(args)?)
        .map_err(|e| CliError(format!("connecting to {addr}: {e}")))?;
    let mut prev: Option<(Vec<(String, u64)>, std::time::Instant)> = None;
    let mut frame = 0u64;
    loop {
        let raw = client.metrics_json().map_err(|e| CliError(format!("metrics: {e}")))?;
        let snap = parse_top_snapshot(&raw)?;
        let now = std::time::Instant::now();
        let text = render_top(
            &addr,
            &snap,
            prev.as_ref().map(|(c, at)| (c.as_slice(), now.duration_since(*at).as_secs_f64())),
        );
        frame += 1;
        if once || frame >= count {
            // Final frame rides the return value so `main` prints it —
            // and so tests and the smoke script capture it.
            return Ok(text);
        }
        // Live mode: clear, redraw, sleep, poll again.
        print!("\x1b[2J\x1b[H{text}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = Some((snap.counters, now));
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// Convenience for tests: runs with string arguments.
pub fn run_str(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&owned)
}
