//! The `inflow` command-line interface.
//!
//! A thin, dependency-free frontend over the library:
//!
//! ```text
//! inflow generate synthetic --out-dir data [--objects N] [--duration S] [--seed N]
//! inflow generate cph --out-dir data [--passengers N] [--seed N]
//! inflow snapshot --plan plan.txt --ott ott.csv --t 1200 [--k 10] [--iterative]
//! inflow interval --plan plan.txt --ott ott.csv --ts 600 --te 1800 [--k 10]
//! inflow timeline --plan plan.txt --ott ott.csv --start 0 --end 3600 --bucket 600
//! inflow density --plan plan.txt --ott ott.csv --t 1200 [--cell-size 10]
//! inflow render --plan plan.txt --out plan.svg [--ott ott.csv --object 3 --t 1200]
//! ```
//!
//! All commands are pure functions over files; [`run`] returns the text
//! that `main` prints, which keeps the CLI fully unit-testable.

use crate::core::{flow_timeline, snapshot_density, FlowAnalytics, IntervalQuery, SnapshotQuery};
use crate::geometry::GridResolution;
use crate::indoor::{read_plan, write_plan, FloorPlan, PoiId};
use crate::tracking::{
    read_ott_csv, sanitize_rows, write_table_csv, ObjectId, ObjectTrackingTable, OttRow,
    SanitizeConfig,
};
use crate::uncertainty::{IndoorContext, UrConfig, UrEngine};
use crate::viz::SceneRenderer;
use crate::workload::{
    build_floor_plan, generate_cph, generate_synthetic, CphConfig, SyntheticConfig,
};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::Arc;

/// A CLI failure: the message shown to the user (exit code 2).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("I/O error: {e}"))
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parsed `--flag value` options plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, CliError> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                // Boolean switches take no value.
                if matches!(
                    name,
                    "iterative"
                        | "no-topology"
                        | "labels"
                        | "profile"
                        | "profile-json"
                        | "sanitize"
                ) {
                    switches.push(name.to_string());
                } else {
                    i += 1;
                    let Some(value) = argv.get(i) else {
                        return err(format!("--{name} needs a value"));
                    };
                    flags.insert(name.to_string(), value.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args { positional, flags, switches })
    }

    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("cannot parse --{name} value '{v}'"))),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        self.get(name)?.ok_or_else(|| CliError(format!("missing required --{name}")))
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Runs the CLI; returns the text to print on success.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Ok(usage());
    };
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "snapshot" => cmd_snapshot(&args),
        "interval" => cmd_interval(&args),
        "timeline" => cmd_timeline(&args),
        "density" => cmd_density(&args),
        "render" => cmd_render(&args),
        "sanitize" => cmd_sanitize(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn usage() -> String {
    "inflow — frequently visited indoor POIs from symbolic tracking data\n\
     \n\
     commands:\n\
     \x20 generate synthetic|cph --out-dir DIR [--objects N] [--passengers N]\n\
     \x20          [--duration S] [--seed N]       write plan.txt + ott.csv\n\
     \x20 snapshot --plan F --ott F --t T [--k K] [--iterative] [--no-topology]\n\
     \x20 interval --plan F --ott F --ts T --te T [--k K] [--iterative]\n\
     \x20 timeline --plan F --ott F --start T --end T --bucket S [--k K]\n\
     \x20 density  --plan F --ott F --t T [--cell-size M]\n\
     \x20 render   --plan F --out F.svg [--ott F --object ID --t T] [--labels]\n\
     \x20 sanitize --plan F --ott F [--out F.csv] [--policy repair|reject|quarantine]\n\
     \x20          [--vmax V]                      gate dirty data, print report\n\
     \n\
     snapshot, interval and timeline accept --profile (per-phase span tree\n\
     plus counters) or --profile-json (same data as a JSON document), and\n\
     --sanitize to route the OTT through the anomaly gate (repair policies)\n\
     instead of rejecting inconsistent input outright.\n"
        .to_string()
}

fn load_plan(args: &Args) -> Result<FloorPlan, CliError> {
    let path: PathBuf = args.require("plan")?;
    let file = File::open(&path)
        .map_err(|e| CliError(format!("cannot open plan {}: {e}", path.display())))?;
    read_plan(&mut BufReader::new(file)).map_err(|e| CliError(format!("bad plan file: {e}")))
}

fn load_ott_rows(args: &Args) -> Result<Vec<OttRow>, CliError> {
    let path: PathBuf = args.require("ott")?;
    let file = File::open(&path)
        .map_err(|e| CliError(format!("cannot open OTT {}: {e}", path.display())))?;
    read_ott_csv(&mut BufReader::new(file)).map_err(|e| CliError(format!("bad OTT file: {e}")))
}

fn load_ott(args: &Args) -> Result<ObjectTrackingTable, CliError> {
    ObjectTrackingTable::from_rows(load_ott_rows(args)?)
        .map_err(|e| CliError(format!("inconsistent OTT: {e}")))
}

fn build_analytics(args: &Args) -> Result<(FlowAnalytics, Vec<PoiId>), CliError> {
    let plan = load_plan(args)?;
    let pois: Vec<PoiId> = plan.pois().iter().map(|p| p.id).collect();
    if pois.is_empty() {
        return err("the plan defines no POIs");
    }
    let vmax: f64 = args.get("vmax")?.unwrap_or(1.1);
    // With --sanitize, dirty rows are repaired by the anomaly gate (the
    // plan serves as the device/feasibility oracle) instead of failing
    // `from_rows`; the report rides on the façade for degraded-mode output.
    let sanitized = if args.switch("sanitize") {
        let rows = load_ott_rows(args)?;
        let cfg = SanitizeConfig::repair_all().with_vmax(vmax);
        let outcome = sanitize_rows(rows, &cfg, Some(&plan));
        let ott = ObjectTrackingTable::from_rows(outcome.rows)
            .map_err(|e| CliError(format!("OTT still inconsistent after sanitize: {e}")))?;
        Some((ott, outcome.report, outcome.repaired_objects))
    } else {
        None
    };
    let cfg = UrConfig {
        vmax,
        topology_check: !args.switch("no-topology"),
        resolution: GridResolution::COARSE,
        ..UrConfig::default()
    };
    let fa = match sanitized {
        Some((ott, report, repaired)) => {
            FlowAnalytics::new(Arc::new(IndoorContext::new(plan)), ott, cfg)
                .with_sanitize_report(report, repaired)
        }
        None => FlowAnalytics::new(Arc::new(IndoorContext::new(plan)), load_ott(args)?, cfg),
    }
    .with_profiling(args.switch("profile") || args.switch("profile-json"));
    Ok((fa, pois))
}

/// Appends the query profile to `out` per the `--profile`/`--profile-json`
/// switches. With `--profile-json` the JSON document *replaces* the human
/// output so the result can be piped straight into other tools.
fn append_profile(out: String, profile: Option<&crate::obs::QueryProfile>, args: &Args) -> String {
    let Some(profile) = profile else { return out };
    if args.switch("profile-json") {
        format!("{}\n", profile.to_json())
    } else if args.switch("profile") {
        format!("{out}\n{}", profile.render())
    } else {
        out
    }
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let kind = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError("generate needs 'synthetic' or 'cph'".into()))?;
    let out_dir: PathBuf = args.require("out-dir")?;
    std::fs::create_dir_all(&out_dir)?;

    let (plan, ott, label) = match kind {
        "synthetic" => {
            let mut cfg = SyntheticConfig::default();
            if let Some(n) = args.get("objects")? {
                cfg.num_objects = n;
            }
            if let Some(d) = args.get("duration")? {
                cfg.duration = d;
            }
            if let Some(s) = args.get("seed")? {
                cfg.seed = s;
            }
            if let Some(r) = args.get("detection-range")? {
                cfg.detection_range = r;
            }
            let w = generate_synthetic(&cfg);
            (build_floor_plan(&cfg), w.ott, "synthetic")
        }
        "cph" => {
            let mut cfg = CphConfig::default();
            if let Some(n) = args.get("passengers")? {
                cfg.num_passengers = n;
            }
            if let Some(d) = args.get("duration")? {
                cfg.duration = d;
            }
            if let Some(s) = args.get("seed")? {
                cfg.seed = s;
            }
            let w = generate_cph(&cfg);
            let (plan, _) = crate::workload::build_airport_plan(&cfg);
            (plan, w.ott, "cph")
        }
        other => return err(format!("unknown dataset '{other}' (use synthetic|cph)")),
    };

    let plan_path = out_dir.join("plan.txt");
    let ott_path = out_dir.join("ott.csv");
    write_plan(&mut BufWriter::new(File::create(&plan_path)?), &plan)
        .map_err(|e| CliError(format!("writing plan: {e}")))?;
    write_table_csv(&mut BufWriter::new(File::create(&ott_path)?), &ott)
        .map_err(|e| CliError(format!("writing OTT: {e}")))?;
    Ok(format!(
        "generated {label} dataset: {} records for {} objects\n  {}\n  {}\n",
        ott.len(),
        ott.object_count(),
        plan_path.display(),
        ott_path.display()
    ))
}

fn format_result(
    fa: &FlowAnalytics,
    ranked: &[(PoiId, f64)],
    header: &str,
    stats: &crate::core::QueryStats,
    quality: &crate::core::DataQuality,
) -> String {
    let plan = fa.engine().context().plan();
    let mut out = String::new();
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{:<6} {:<20} {:>10}", "rank", "poi", "flow");
    for (rank, &(poi, flow)) in ranked.iter().enumerate() {
        let _ = writeln!(out, "{:<6} {:<20} {:>10.3}", rank + 1, plan.poi(poi).name, flow);
    }
    let _ = writeln!(
        out,
        "({} objects considered, {} URs, {} presence integrations)",
        stats.objects_considered, stats.urs_built, stats.presence_evaluations
    );
    let _ = writeln!(out, "{}", quality.render());
    out
}

fn cmd_snapshot(args: &Args) -> Result<String, CliError> {
    let (fa, pois) = build_analytics(args)?;
    let t: f64 = args.require("t")?;
    let k: usize = args.get("k")?.unwrap_or(10);
    let q = SnapshotQuery::new(t, pois, k);
    let result = if args.switch("iterative") {
        fa.snapshot_topk_iterative(&q)
    } else {
        fa.snapshot_topk_join(&q)
    };
    let out = format_result(
        &fa,
        &result.ranked,
        &format!("top-{k} POIs at t = {t}"),
        &result.stats,
        &result.quality,
    );
    Ok(append_profile(out, result.profile.as_deref(), args))
}

fn cmd_interval(args: &Args) -> Result<String, CliError> {
    let (fa, pois) = build_analytics(args)?;
    let ts: f64 = args.require("ts")?;
    let te: f64 = args.require("te")?;
    if te < ts {
        return err("--te must not precede --ts");
    }
    let k: usize = args.get("k")?.unwrap_or(10);
    let q = IntervalQuery::new(ts, te, pois, k);
    let result = if args.switch("iterative") {
        fa.interval_topk_iterative(&q)
    } else {
        fa.interval_topk_join(&q)
    };
    let out = format_result(
        &fa,
        &result.ranked,
        &format!("top-{k} POIs over [{ts}, {te}]"),
        &result.stats,
        &result.quality,
    );
    Ok(append_profile(out, result.profile.as_deref(), args))
}

fn cmd_timeline(args: &Args) -> Result<String, CliError> {
    let (fa, pois) = build_analytics(args)?;
    let start: f64 = args.require("start")?;
    let end: f64 = args.require("end")?;
    let bucket: f64 = args.require("bucket")?;
    if bucket <= 0.0 || end < start {
        return err("need --bucket > 0 and --end >= --start");
    }
    let k: usize = args.get("k")?.unwrap_or(5);
    let tl = flow_timeline(&fa, &pois, start, end, bucket);
    let plan = fa.engine().context().plan();
    let mut out = String::new();
    let _ = writeln!(out, "flow timeline [{start}, {end}] in {bucket}-second buckets");
    for (idx, b) in tl.buckets.iter().enumerate() {
        let mut top: Vec<(PoiId, f64)> = b.flows.clone();
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        top.truncate(k);
        let row: Vec<String> =
            top.iter().map(|&(p, f)| format!("{} ({f:.2})", plan.poi(p).name)).collect();
        let _ = writeln!(out, "  [{:>8.0}, {:>8.0}) #{idx}: {}", b.ts, b.te, row.join(", "));
    }
    let _ = writeln!(out, "{}", tl.quality.render());
    Ok(append_profile(out, tl.profile.as_deref(), args))
}

fn cmd_density(args: &Args) -> Result<String, CliError> {
    let (fa, _) = build_analytics(args)?;
    let t: f64 = args.require("t")?;
    let cell: f64 = args.get("cell-size")?.unwrap_or(10.0);
    let grid = snapshot_density(&fa, t, cell);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "density at t = {t} ({}×{} grid of {cell} m cells, total expected {:.2} objects)",
        grid.dims().0,
        grid.dims().1,
        grid.total()
    );
    for (i, j, value) in grid.hottest(8) {
        if value <= 0.0 {
            break;
        }
        let m = grid.cell_mbr(i, j);
        let _ = writeln!(
            out,
            "  cell ({i:>2}, {j:>2}) around ({:>6.1}, {:>6.1}): {value:.2} expected objects",
            m.center().x,
            m.center().y
        );
    }
    Ok(out)
}

fn cmd_render(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let out_path: PathBuf = args.require("out")?;
    let style = crate::viz::Style { labels: args.switch("labels"), ..Default::default() };

    // Optional uncertainty-region overlay for one object at one time.
    let svg = match (args.flags.get("ott"), args.flags.get("object"), args.flags.get("t")) {
        (Some(_), Some(_), Some(_)) => {
            let ott = load_ott(args)?;
            let object: u32 = args.require("object")?;
            let t: f64 = args.require("t")?;
            let ctx = Arc::new(IndoorContext::new(plan));
            let engine = UrEngine::new(
                Arc::clone(&ctx),
                UrConfig { vmax: args.get("vmax")?.unwrap_or(1.1), ..UrConfig::default() },
            );
            let Some(state) = ott.state_at(ObjectId(object), t) else {
                return err(format!("object {object} is not tracked at t = {t}"));
            };
            let ur = engine.snapshot_ur(&ott, state, t);
            SceneRenderer::with_style(ctx.plan(), style)
                .draw_pois()
                .draw_devices()
                .draw_uncertainty_region(&ur)
                .render()
        }
        (None, None, None) => {
            SceneRenderer::with_style(&plan, style).draw_pois().draw_devices().render()
        }
        _ => return err("render overlay needs all of --ott, --object and --t"),
    };
    std::fs::write(&out_path, &svg)?;
    Ok(format!("wrote {} ({} bytes)\n", out_path.display(), svg.len()))
}

fn cmd_sanitize(args: &Args) -> Result<String, CliError> {
    let plan = load_plan(args)?;
    let rows = load_ott_rows(args)?;
    let policy = args.get::<String>("policy")?.unwrap_or_else(|| "repair".to_string());
    let mut cfg = match policy.as_str() {
        "repair" => SanitizeConfig::repair_all(),
        "reject" => SanitizeConfig::reject_all(),
        "quarantine" => SanitizeConfig::quarantine_all(),
        other => return err(format!("unknown policy '{other}' (use repair|reject|quarantine)")),
    };
    if let Some(vmax) = args.get("vmax")? {
        cfg = cfg.with_vmax(vmax);
    } else {
        cfg = cfg.with_vmax(1.1);
    }
    let total_in = rows.len();
    let outcome = sanitize_rows(rows, &cfg, Some(&plan));
    let mut out = String::new();
    let _ = writeln!(out, "sanitized {total_in} rows -> {} rows", outcome.rows.len());
    out.push_str(&outcome.report.render());
    out.push('\n');
    if let Some(path) = args.flags.get("out") {
        let table = ObjectTrackingTable::from_rows(outcome.rows)
            .map_err(|e| CliError(format!("OTT still inconsistent after sanitize: {e}")))?;
        write_table_csv(&mut BufWriter::new(File::create(path)?), &table)
            .map_err(|e| CliError(format!("writing sanitized OTT: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

/// Convenience for tests: runs with string arguments.
pub fn run_str(args: &[&str]) -> Result<String, CliError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&owned)
}
