//! Airport bottleneck detection on the CPH-like workload.
//!
//! "It can be used to identify possible bottlenecks that slow down
//! movement in an airport" (paper §2.2). This example generates the
//! CPH-like Bluetooth workload, sweeps snapshot top-k queries across the
//! day, and reports the POIs that are persistently crowded — candidate
//! bottlenecks for terminal operations.
//!
//! Run with: `cargo run --release --example airport_bottlenecks`

use inflow::core::{FlowAnalytics, SnapshotQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::uncertainty::UrConfig;
use inflow::workload::{generate_cph, CphConfig};
use std::collections::HashMap;

fn main() {
    let cfg = CphConfig { num_passengers: 250, duration: 2.0 * 3600.0, ..CphConfig::default() };
    println!(
        "Simulating {} passengers over {:.0} h in a {}-gate terminal …",
        cfg.num_passengers,
        cfg.duration / 3600.0,
        cfg.gates
    );
    let w = generate_cph(&cfg);
    println!(
        "Bluetooth tracking: {} records for {} tracked passengers.\n",
        w.ott.len(),
        w.ott.object_count()
    );

    let analytics = FlowAnalytics::new(
        w.ctx.clone(),
        w.ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    );
    let pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();

    // Sample the terminal every 10 simulated minutes; a POI scores a
    // "crowded" point whenever it appears in the snapshot top-5.
    let k = 5;
    let mut crowded_score: HashMap<PoiId, usize> = HashMap::new();
    let mut peak_flow: HashMap<PoiId, f64> = HashMap::new();
    let mut t = 600.0;
    while t < cfg.duration {
        let q = SnapshotQuery::new(t, pois.clone(), k);
        let result = analytics.snapshot_topk_join(&q);
        for &(poi, flow) in &result.ranked {
            if flow > 0.0 {
                *crowded_score.entry(poi).or_default() += 1;
                let peak = peak_flow.entry(poi).or_default();
                *peak = peak.max(flow);
            }
        }
        t += 600.0;
    }

    let mut ranking: Vec<(PoiId, usize)> = crowded_score.into_iter().collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("Persistently crowded POIs (appearances in the 10-minute top-{k}):");
    println!("{:<18} {:>12} {:>12}", "POI", "appearances", "peak flow");
    for &(poi, hits) in ranking.iter().take(8) {
        println!("{:<18} {:>12} {:>12.2}", w.ctx.plan().poi(poi).name, hits, peak_flow[&poi]);
    }
    println!(
        "\nOperational reading: POIs topping this list (typically the security\n\
         zone and popular shops near it) are candidate bottlenecks — consider\n\
         re-routing signage or extra staffing there."
    );
}
