//! A day on an office floor: scenario plans + streaming ingestion.
//!
//! Demonstrates two library features together:
//!
//! * the prebuilt [`office_plan`] scenario (corridor, offices, kitchen,
//!   printer nook, meeting rooms — paper §1's office-building setting);
//! * **streaming** tracking: readings are fed one by one into an
//!   [`OnlineTracker`], and the analytics run on periodic snapshots, the
//!   way a live deployment would.
//!
//! Run with: `cargo run --release --example office_day`

use inflow::core::{FlowAnalytics, IntervalQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::DistanceOracle;
use inflow::tracking::{ObjectId, OnlineTracker, RawReading};
use inflow::uncertainty::{IndoorContext, UrConfig};
use inflow::viz::SceneRenderer;
use inflow::workload::{office_plan, DeviceIndex, TimedPath};
use std::sync::Arc;

fn main() {
    let plan = office_plan(10);
    println!(
        "Office floor: {} cells, {} readers, {} POIs.",
        plan.cells().len(),
        plan.devices().len(),
        plan.pois().len()
    );
    let oracle = DistanceOracle::new(&plan);
    let index = DeviceIndex::build(&plan);

    // Simulate 30 employees each making a kitchen/meeting run and stream
    // the readings into an OnlineTracker in timestamp order.
    let mut all_readings: Vec<RawReading> = Vec::new();
    for e in 0..30u32 {
        let office = plan.cells()[1 + (e as usize % 10)].footprint().centroid();
        // Destination rotates through the south rooms (kitchen first).
        let south_count = plan.cells().len() - 11;
        let dest_cell = &plan.cells()[11 + (e as usize % south_count)];
        let dest = dest_cell.footprint().centroid();
        let route = oracle.route(&plan, office, dest).expect("connected plan");

        let mut path = TimedPath::new();
        let mut t = 60.0 * e as f64; // staggered departures
        path.push(t, route.waypoints[0]);
        for pair in route.waypoints.windows(2) {
            t += pair[0].distance(pair[1]) / 1.1;
            path.push(t, pair[1]);
        }
        t += 240.0; // a coffee/meeting dwell
        path.push(t, dest);

        inflow::workload::movement::sample_readings(
            &plan,
            &index,
            ObjectId(e),
            &path,
            1.0,
            &mut all_readings,
        );
    }
    all_readings.sort_by(|a, b| a.t.total_cmp(&b.t));

    let mut tracker = OnlineTracker::new(1.5);
    tracker.ingest_all(all_readings).expect("ordered stream");
    println!(
        "Streamed into the tracker: {} closed records, {} open runs, watermark {:.0} s.",
        tracker.closed_rows(),
        tracker.open_runs(),
        tracker.watermark()
    );

    // Periodic analytics over a snapshot of the stream.
    let ott = tracker.snapshot().expect("consistent stream");
    let ctx = Arc::new(IndoorContext::new(office_plan(10)));
    let analytics = FlowAnalytics::new(
        ctx.clone(),
        ott,
        UrConfig { vmax: 1.1, resolution: GridResolution::COARSE, ..UrConfig::default() },
    );
    let pois: Vec<_> = ctx.plan().pois().iter().map(|p| p.id).collect();
    let horizon = tracker.watermark();
    let q = IntervalQuery::new(0.0, horizon, pois, 5);
    let result = analytics.interval_topk_join(&q);

    println!("\nMost visited amenities so far:");
    for (rank, &(poi, flow)) in result.ranked.iter().enumerate() {
        println!("  {}. {:<22} Φ = {:.2}", rank + 1, ctx.plan().poi(poi).name, flow);
    }

    let svg = SceneRenderer::new(ctx.plan())
        .highlight_pois(&result.poi_ids())
        .draw_pois()
        .draw_devices()
        .render();
    std::fs::write("office_top5.svg", &svg).expect("writable cwd");
    println!("\nWrote office_top5.svg with the top-5 amenities highlighted.");
}
