//! Quickstart: the full pipeline on a tiny hand-built dataset.
//!
//! Builds a three-cell floor plan with two RFID readers, loads a
//! hand-written Object Tracking Table (in the spirit of the paper's
//! Table 2), and runs both query types with both algorithms. The output
//! illustrates the two regimes of symbolic tracking:
//!
//! * shortly after a detection, uncertainty regions are tight and flows
//!   are informative;
//! * across long undetected gaps the uncertainty saturates and every POI
//!   within walking range accrues presence — exactly the behaviour the
//!   paper's model prescribes.
//!
//! Run with: `cargo run --example quickstart`

use inflow::core::{FlowAnalytics, IntervalQuery, SnapshotQuery};
use inflow::geometry::{Point, Polygon};
use inflow::indoor::{CellKind, FloorPlanBuilder};
use inflow::tracking::{ObjectId, ObjectTrackingTable, OttRow};
use inflow::uncertainty::{IndoorContext, UrConfig};
use std::sync::Arc;

fn main() {
    // ── 1. Model the indoor space ───────────────────────────────────────
    // A 30 m hallway with a cafe and a shop hanging off it.
    let mut b = FloorPlanBuilder::new();
    let hall = b.add_cell(
        "hallway",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(30.0, 4.0)),
    );
    let cafe = b.add_cell(
        "cafe",
        CellKind::Room,
        Polygon::rectangle(Point::new(4.0, 4.0), Point::new(14.0, 12.0)),
    );
    let shop = b.add_cell(
        "shop",
        CellKind::Room,
        Polygon::rectangle(Point::new(18.0, 4.0), Point::new(28.0, 12.0)),
    );
    b.add_door("cafe-door", Point::new(9.0, 4.0), cafe, hall);
    b.add_door("shop-door", Point::new(23.0, 4.0), shop, hall);

    // Two RFID readers at the doors (1.5 m detection range).
    let dev_cafe = b.add_device("reader-cafe", Point::new(9.0, 4.0), 1.5);
    let dev_shop = b.add_device("reader-shop", Point::new(23.0, 4.0), 1.5);

    // POIs: the cafe seating area, the shop floor, and a hallway kiosk.
    let poi_cafe =
        b.add_poi("cafe-seating", Polygon::rectangle(Point::new(5.0, 5.0), Point::new(13.0, 11.0)));
    let poi_shop =
        b.add_poi("shop-floor", Polygon::rectangle(Point::new(19.0, 5.0), Point::new(27.0, 11.0)));
    let poi_kiosk =
        b.add_poi("hall-kiosk", Polygon::rectangle(Point::new(13.0, 0.5), Point::new(19.0, 3.5)));

    let ctx = Arc::new(IndoorContext::new(b.build().expect("valid plan")));

    // ── 2. Load symbolic tracking data ──────────────────────────────────
    // Three visitors. A record ⟨o, dev, ts, te⟩ means the object was
    // continuously detected by the reader over [ts, te] (seconds).
    let row = |o: u32, d, ts, te| OttRow { object: ObjectId(o), device: d, ts, te };
    let ott = ObjectTrackingTable::from_rows(vec![
        // Visitor 0: enters past the cafe reader, re-appears there later.
        row(0, dev_cafe, 0.0, 5.0),
        row(0, dev_cafe, 60.0, 65.0),
        // Visitor 1: cafe reader, then the shop reader (walks the hallway).
        row(1, dev_cafe, 0.0, 4.0),
        row(1, dev_shop, 30.0, 34.0),
        row(1, dev_shop, 60.0, 64.0),
        // Visitor 2: only ever seen at the shop reader.
        row(2, dev_shop, 5.0, 10.0),
        row(2, dev_shop, 45.0, 50.0),
    ])
    .expect("consistent OTT");

    // ── 3. Query ────────────────────────────────────────────────────────
    let analytics =
        FlowAnalytics::new(ctx.clone(), ott, UrConfig { vmax: 1.1, ..UrConfig::default() });
    let pois = vec![poi_cafe, poi_shop, poi_kiosk];

    println!("=== Snapshot top-k at t = 8 s (tight uncertainty) ===");
    println!("Visitors 0 and 1 left the cafe reader seconds ago; visitor 2 is");
    println!("being detected at the shop door right now.\n");
    let q = SnapshotQuery::new(8.0, pois.clone(), 3);
    let iterative = analytics.snapshot_topk_iterative(&q);
    let join = analytics.snapshot_topk_join(&q);
    print_result("iterative", &iterative, &ctx);
    print_result("join     ", &join, &ctx);

    println!("\n=== Interval top-k over [0 s, 70 s] ===");
    println!("Across the whole window every visitor had long undetected gaps,");
    println!("so presence spreads across all reachable POIs (model-faithful):\n");
    let q = IntervalQuery::new(0.0, 70.0, pois, 3);
    let iterative = analytics.interval_topk_iterative(&q);
    let join = analytics.interval_topk_join(&q);
    print_result("iterative", &iterative, &ctx);
    print_result("join     ", &join, &ctx);

    println!(
        "\nPresence integrations — join: {}, iterative: {}.",
        join.stats.presence_evaluations, iterative.stats.presence_evaluations
    );
}

fn print_result(label: &str, result: &inflow::core::QueryResult, ctx: &IndoorContext) {
    let names: Vec<String> = result
        .ranked
        .iter()
        .map(|&(p, flow)| format!("{} (Φ = {:.3})", ctx.plan().poi(p).name, flow))
        .collect();
    println!("  {label}: {}", names.join(", "));
}
