//! Museum exhibition analytics: popularity-based recommendations.
//!
//! "Information on the behavior of past visitors to a museum with
//! multiple exhibitions may be used for making recommendations to new
//! visitors and for planning" (paper §1). This example models a small
//! museum as a grid of exhibition halls, replays a day of visitors, and
//! uses interval flows per hour to (a) rank exhibitions and (b) suggest a
//! visit plan that avoids each exhibition's crowded hours.
//!
//! Run with: `cargo run --release --example museum_recommender`

use inflow::core::{FlowAnalytics, IntervalQuery};
use inflow::geometry::GridResolution;
use inflow::indoor::PoiId;
use inflow::uncertainty::UrConfig;
use inflow::workload::{generate_synthetic, SyntheticConfig};

fn main() {
    // A compact museum: 3×3 halls, 80 visitors over a 2-hour opening.
    let cfg = SyntheticConfig {
        rooms_x: 3,
        rooms_y: 3,
        room_size: 12.0,
        num_objects: 80,
        duration: 7200.0,
        num_pois: 12,
        pause_range: (30.0, 240.0), // visitors linger at exhibits
        seed: 99,
        ..SyntheticConfig::default()
    };
    let w = generate_synthetic(&cfg);
    println!(
        "Museum day replayed: {} visitors, {} tracking records.\n",
        w.ott.object_count(),
        w.ott.len()
    );

    let analytics = FlowAnalytics::new(
        w.ctx.clone(),
        w.ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    );
    let pois: Vec<PoiId> = w.ctx.plan().pois().iter().map(|p| p.id).collect();

    // Hourly interval flows per exhibition.
    let hours = [(0.0, 3600.0), (3600.0, 7200.0)];
    let mut hourly: Vec<Vec<(PoiId, f64)>> = Vec::new();
    for &(ts, te) in &hours {
        let q = IntervalQuery::new(ts, te, pois.clone(), pois.len());
        hourly.push(analytics.interval_topk_join(&q).ranked);
    }

    // Overall ranking = summed hourly flows.
    let mut total: Vec<(PoiId, f64)> = pois
        .iter()
        .map(|&p| {
            let sum: f64 = hourly
                .iter()
                .map(|h| h.iter().find(|&&(hp, _)| hp == p).map_or(0.0, |&(_, f)| f))
                .sum();
            (p, sum)
        })
        .collect();
    total.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("Exhibition popularity (total flow over the day):");
    println!("{:<10} {:>10} {:>12} {:>12}", "exhibit", "total Φ", "hour-1 Φ", "hour-2 Φ");
    for &(p, sum) in total.iter().take(8) {
        let per_hour: Vec<f64> = hourly
            .iter()
            .map(|h| h.iter().find(|&&(hp, _)| hp == p).map_or(0.0, |&(_, f)| f))
            .collect();
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12.1}",
            w.ctx.plan().poi(p).name,
            sum,
            per_hour[0],
            per_hour[1]
        );
    }

    // Recommendation: for the top-3 exhibitions, visit in the quieter hour.
    println!("\nSuggested visit plan (see the must-sees in their quiet hour):");
    for &(p, _) in total.iter().take(3) {
        let per_hour: Vec<f64> = hourly
            .iter()
            .map(|h| h.iter().find(|&&(hp, _)| hp == p).map_or(0.0, |&(_, f)| f))
            .collect();
        let quiet = if per_hour[0] <= per_hour[1] { "hour 1" } else { "hour 2" };
        println!("  {} → go during {}", w.ctx.plan().poi(p).name, quiet);
    }
}
