//! Shopping-mall analytics: the paper's motivating lease-pricing scenario.
//!
//! "The lease prices of different shop locations in a large shopping mall
//! may be set according to the numbers of people passing by the location"
//! (paper §1). This example simulates a mall floor (the synthetic grid
//! workload), then uses interval top-k queries over business hours to rank
//! shop POIs and derive a pricing tier per shop, comparing the iterative
//! and join algorithms' runtimes along the way.
//!
//! Run with: `cargo run --release --example mall_analytics`

use inflow::core::{FlowAnalytics, IntervalQuery};
use inflow::geometry::GridResolution;
use inflow::uncertainty::UrConfig;
use inflow::workload::{generate_synthetic, SyntheticConfig};
use std::time::Instant;

fn main() {
    // A 6×4 block mall with 150 shoppers over one simulated hour.
    let cfg = SyntheticConfig {
        rooms_x: 6,
        rooms_y: 4,
        num_objects: 150,
        duration: 3600.0,
        num_pois: 30,
        seed: 7,
        ..SyntheticConfig::default()
    };
    println!(
        "Simulating a mall floor: {} rooms, ~40 readers, {} shoppers, {} s …",
        cfg.rooms_x * cfg.rooms_y,
        cfg.num_objects,
        cfg.duration
    );
    let w = generate_synthetic(&cfg);
    println!(
        "Tracking data: {} records for {} tracked shoppers.\n",
        w.ott.len(),
        w.ott.object_count()
    );

    let analytics = FlowAnalytics::new(
        w.ctx.clone(),
        w.ott,
        UrConfig { vmax: w.vmax, resolution: GridResolution::COARSE, ..UrConfig::default() },
    );

    // Rank all shop POIs over the "peak hour" [600 s, 1800 s].
    let pois: Vec<_> = w.ctx.plan().pois().iter().map(|p| p.id).collect();
    let q = IntervalQuery::new(600.0, 1800.0, pois, 10);

    let t0 = Instant::now();
    let iterative = analytics.interval_topk_iterative(&q);
    let t_iter = t0.elapsed();
    let t0 = Instant::now();
    let join = analytics.interval_topk_join(&q);
    let t_join = t0.elapsed();

    println!("Top-10 most visited shop locations (interval flow over peak hour):");
    println!("{:<6} {:<14} {:>10}  suggested tier", "rank", "POI", "flow Φ");
    for (rank, &(poi, flow)) in join.ranked.iter().enumerate() {
        let tier = match rank {
            0..=2 => "premium",
            3..=6 => "standard",
            _ => "economy",
        };
        println!("{:<6} {:<14} {:>10.2}  {}", rank + 1, w.ctx.plan().poi(poi).name, flow, tier);
    }

    assert_eq!(iterative.poi_ids(), join.poi_ids(), "algorithms must agree");
    println!(
        "\nRuntimes — iterative: {:.1} ms ({} integrations), join: {:.1} ms ({} integrations).",
        t_iter.as_secs_f64() * 1e3,
        iterative.stats.presence_evaluations,
        t_join.as_secs_f64() * 1e3,
        join.stats.presence_evaluations,
    );
}
