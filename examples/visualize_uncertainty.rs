//! Renders uncertainty regions to SVG for visual inspection.
//!
//! Recreates the paper's Figure 8 scenario — an object moving along a
//! corridor past two readers, with a room hanging off the corridor — and
//! renders, side by side:
//!
//! * the purely Euclidean snapshot uncertainty region (which pokes
//!   through the wall into the room), and
//! * the topology-checked region (where the unreachable room part is
//!   excluded).
//!
//! Also renders an interval uncertainty region over a trajectory from the
//! synthetic workload.
//!
//! Run with: `cargo run --release --example visualize_uncertainty`
//! (writes `ur_euclidean.svg`, `ur_topology.svg`, `ur_interval.svg`).

use inflow::geometry::{Point, Polygon};
use inflow::indoor::{CellKind, FloorPlanBuilder};
use inflow::tracking::{ObjectId, ObjectTrackingTable, OttRow};
use inflow::uncertainty::{IndoorContext, UrConfig, UrEngine};
use inflow::viz::{SceneRenderer, Style};
use inflow::workload::{generate_synthetic, SyntheticConfig};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    figure8_scenario()?;
    interval_scenario()?;
    println!("wrote ur_euclidean.svg, ur_topology.svg, ur_interval.svg");
    Ok(())
}

/// The Figure 8(a) setup: snapshot UR of an inactive object, with and
/// without the indoor topology check.
fn figure8_scenario() -> std::io::Result<()> {
    let mut b = FloorPlanBuilder::new();
    let hall = b.add_cell(
        "corridor",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(24.0, 4.0)),
    );
    let room = b.add_cell(
        "room-2",
        CellKind::Room,
        Polygon::rectangle(Point::new(8.0, 4.0), Point::new(16.0, 11.0)),
    );
    // The door sits at the far west end of the room: reaching the room's
    // interior from the corridor requires a long detour.
    b.add_door("door", Point::new(8.2, 4.0), hall, room);
    let dev1 = b.add_device("device-1", Point::new(8.0, 2.0), 1.0);
    let dev2 = b.add_device("device-2", Point::new(16.0, 2.0), 1.0);
    let ctx = Arc::new(IndoorContext::new(b.build().expect("valid plan")));

    // The object left device 1 at t=2 and reaches device 2 at t=9.
    let ott = ObjectTrackingTable::from_rows(vec![
        OttRow { object: ObjectId(0), device: dev1, ts: 0.0, te: 2.0 },
        OttRow { object: ObjectId(0), device: dev2, ts: 9.0, te: 11.0 },
    ])
    .expect("consistent OTT");
    let t = 5.5;
    let state = ott.state_at(ObjectId(0), t).expect("inactive between readers");

    for (topology, file) in [(false, "ur_euclidean.svg"), (true, "ur_topology.svg")] {
        let engine = UrEngine::new(
            Arc::clone(&ctx),
            UrConfig { vmax: 1.1, topology_check: topology, ..UrConfig::default() },
        );
        let ur = engine.snapshot_ur(&ott, state, t);
        let style = Style { labels: true, scale: 24.0, ur_resolution: 8.0, ..Style::default() };
        let svg = SceneRenderer::with_style(ctx.plan(), style)
            .draw_devices()
            .draw_uncertainty_region(&ur)
            .render();
        std::fs::write(file, svg)?;
    }
    Ok(())
}

/// An interval UR over a real random-waypoint trajectory, drawn together
/// with the ground truth path that generated the tracking data.
fn interval_scenario() -> std::io::Result<()> {
    let cfg = SyntheticConfig {
        rooms_x: 4,
        rooms_y: 2,
        num_objects: 1,
        duration: 420.0,
        seed: 12,
        ..SyntheticConfig::default()
    };
    let w = generate_synthetic(&cfg);
    let engine = UrEngine::new(
        w.ctx.clone(),
        UrConfig { vmax: w.vmax, topology_check: true, ..UrConfig::default() },
    );
    let (object, path) = &w.ground_truth[0];
    let (ts, te) = (60.0, 240.0);
    let ur = engine.interval_ur(&w.ott, *object, ts, te).expect("object is tracked in the window");

    let style = Style { scale: 10.0, ur_resolution: 4.0, ..Style::default() };
    let svg = SceneRenderer::with_style(w.ctx.plan(), style)
        .draw_pois()
        .draw_devices()
        .draw_uncertainty_region(&ur)
        .draw_trajectory(path)
        .render();
    std::fs::write("ur_interval.svg", svg)
}
