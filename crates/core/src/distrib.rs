//! Probabilistic count distributions per POI (Poisson binomial).
//!
//! The paper's flow Φ is the *expected* number of objects in a POI:
//! `Φ(p) = Σ_o presence_o(p)`. Because the per-object presences are
//! independent inclusion probabilities, the full probabilistic *count*
//! distribution is the Poisson binomial over those presences (Züfle,
//! arXiv 2112.06344): `P(count = k)` is the coefficient of `z^k` in the
//! generating-function product `Π_o (1 − p_o + p_o·z)`.
//!
//! [`CountDistribution`] maintains that product by convolution, one
//! object at a time — `new[i] = old[i]·(1−p) + old[i−1]·p` — truncated
//! at a `kmax` tail bound, which makes the whole computation `O(n·kmax)`
//! per POI instead of `O(n²)`. Mass beyond `kmax` is never lost: it is
//! recovered as [`CountDistribution::tail_mass`], so `P(count ≥ k)` is
//! *exact* for every `k ≤ kmax + 1` (and a tight upper bound above).
//!
//! The distribution's expectation is, by the generating-function
//! identity, exactly `Σ_o p_o` — the flow Φ the four batch algorithms
//! compute. [`CountDistribution::expectation`] accumulates that sum
//! alongside the convolution; the property suite asserts it matches all
//! four algorithm outputs within 1e-9 and, for untruncated
//! distributions, matches `Σ k·pmf(k)` as well.
//!
//! Determinism contract: [`count_distributions`] convolves candidates in
//! ascending object-id order — the same order the incremental serving
//! engine uses — so a streamed distribution subscription and a batch
//! recomputation over the same rows produce bit-identical probabilities.

use crate::analytics::FlowAnalytics;
use crate::contrib;
use crate::query::{rank_topk, DataQuality, QueryStats};
use inflow_indoor::PoiId;
use inflow_obs::Counter;
use inflow_tracking::{ArTree, ObjectId, ObjectState, Timestamp};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The Poisson-binomial count distribution of one POI, truncated at a
/// `kmax` tail bound.
///
/// `probs[i] = P(count = i)` for `i ≤ kmax`; probability mass for counts
/// above `kmax` is truncated out of the vector and recovered exactly as
/// [`CountDistribution::tail_mass`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountDistribution {
    probs: Vec<f64>,
    /// Running `Σ p_o` — the exact expectation (= flow Φ), independent
    /// of truncation.
    mean: f64,
}

impl CountDistribution {
    /// The empty-product distribution: `P(count = 0) = 1`. `kmax` is
    /// clamped to at least 1.
    pub fn new(kmax: usize) -> CountDistribution {
        let kmax = kmax.max(1);
        let mut probs = vec![0.0; kmax + 1];
        if let Some(p0) = probs.first_mut() {
            *p0 = 1.0;
        }
        CountDistribution { probs, mean: 0.0 }
    }

    /// Convolves one more object's presence probability `p` into the
    /// distribution (`p` is clamped to `[0, 1]`).
    pub fn push(&mut self, p: f64) {
        let p = p.clamp(0.0, 1.0);
        self.mean += p;
        let q = 1.0 - p;
        for i in (1..self.probs.len()).rev() {
            self.probs[i] = self.probs[i] * q + self.probs[i - 1] * p;
        }
        if let Some(p0) = self.probs.first_mut() {
            *p0 *= q;
        }
    }

    /// Builds the distribution of a presence sequence (convolved in
    /// iteration order).
    pub fn from_presences(ps: impl IntoIterator<Item = f64>, kmax: usize) -> CountDistribution {
        let mut d = CountDistribution::new(kmax);
        for p in ps {
            d.push(p);
        }
        d
    }

    /// The truncation bound: `pmf(k)` is held exactly for `k ≤ kmax`.
    pub fn kmax(&self) -> usize {
        self.probs.len() - 1
    }

    /// `P(count = k)`; 0 for `k > kmax` (that mass lives in the tail).
    pub fn pmf(&self, k: usize) -> f64 {
        self.probs.get(k).copied().unwrap_or(0.0)
    }

    /// Probability mass truncated past `kmax`: `P(count > kmax)`,
    /// recovered as `1 − Σ pmf` (clamped at 0 against rounding).
    pub fn tail_mass(&self) -> f64 {
        (1.0 - self.probs.iter().sum::<f64>()).max(0.0)
    }

    /// `P(count ≥ k)` — exact for `k ≤ kmax + 1`; for larger `k` the
    /// truncated tail makes this an upper bound (`P(count > kmax)`).
    pub fn p_ge(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let above: f64 = self.probs.iter().skip(k).sum();
        (above + self.tail_mass()).clamp(0.0, 1.0)
    }

    /// `P(count ≤ k)`.
    pub fn cdf(&self, k: usize) -> f64 {
        self.probs.iter().take(k + 1).sum::<f64>().clamp(0.0, 1.0)
    }

    /// Smallest `k` with `CDF(k) ≥ q`; `kmax + 1` when the quantile
    /// falls into the truncated tail.
    pub fn quantile(&self, q: f64) -> usize {
        let q = q.clamp(0.0, 1.0);
        let mut cum = 0.0;
        for (k, &p) in self.probs.iter().enumerate() {
            cum += p;
            if cum >= q {
                return k;
            }
        }
        self.probs.len()
    }

    /// The exact expectation `E[count] = Σ p_o` — by the
    /// generating-function identity, exactly the paper's flow Φ. Kept as
    /// a running sum so truncation never degrades it.
    pub fn expectation(&self) -> f64 {
        self.mean
    }

    /// `Σ k·pmf(k)` over the held mass — equals [`expectation`] within
    /// rounding when nothing was truncated (`tail_mass = 0`). The
    /// property suite uses the pair as the truncation-soundness oracle.
    ///
    /// [`expectation`]: CountDistribution::expectation
    pub fn expectation_from_pmf(&self) -> f64 {
        self.probs.iter().enumerate().map(|(k, &p)| k as f64 * p).sum()
    }
}

/// The query time parameter of a count-distribution query.
/// Incremental per-POI score maintenance for distrib subscriptions in
/// the serving engine — the count-distribution twin of
/// [`crate::DwellState`].
///
/// Rebuilding every POI's Poisson binomial from the contribution map on
/// each refresh costs O(|P| · n · kmax), which dwarfs the O(total
/// presences) fold a snapshot subscription pays and shows up directly
/// as serving-ingest overhead. But a delta only ever changes *one*
/// object's presences, so only the POIs that object touches (before or
/// after) can change their distribution. This state inverts presences
/// by POI — keyed by object in a `BTreeMap`, so refolds walk ascending
/// object id, the exact candidate order of the batch paths — caches
/// each POI's `P(count ≥ kq)`, and refolds only the POIs marked stale
/// by [`update`](DistribState::update) calls since the last
/// [`scores`](DistribState::scores).
///
/// Bit-identity with a from-scratch fold holds because an unchanged
/// POI's presence multiset and fold order are unchanged, and a stale
/// POI is refolded exactly the way the batch path folds it.
#[derive(Debug, Clone)]
pub struct DistribState {
    kq: usize,
    kmax: usize,
    /// Presences inverted by POI, keyed by object id (ascending walk).
    per_poi: HashMap<PoiId, BTreeMap<ObjectId, f64>>,
    /// Cached `P(count ≥ kq)` for POIs with at least one presence.
    scores: HashMap<PoiId, f64>,
    /// POIs whose cached score must be refolded.
    stale: HashSet<PoiId>,
    /// The score of a POI no object contributes to.
    empty_score: f64,
}

impl DistribState {
    pub fn new(kq: usize, kmax: usize) -> DistribState {
        DistribState {
            kq,
            kmax,
            per_poi: HashMap::new(),
            scores: HashMap::new(),
            stale: HashSet::new(),
            empty_score: CountDistribution::new(kmax).p_ge(kq),
        }
    }

    /// Records one object's contribution change: every POI it
    /// contributed to before or contributes to now becomes stale.
    pub fn update(&mut self, object: ObjectId, old: &[(PoiId, f64)], new: &[(PoiId, f64)]) {
        for &(poi, _) in old {
            if let Some(m) = self.per_poi.get_mut(&poi) {
                m.remove(&object);
                if m.is_empty() {
                    self.per_poi.remove(&poi);
                }
            }
            self.stale.insert(poi);
        }
        for &(poi, p) in new {
            self.per_poi.entry(poi).or_default().insert(object, p);
            self.stale.insert(poi);
        }
    }

    /// `P(count ≥ kq)` for every requested POI, in input order,
    /// refolding only the POIs whose presences changed since the last
    /// call — bit-identical to folding every POI from scratch in
    /// ascending object-id order.
    pub fn scores(&mut self, pois: &[PoiId]) -> Vec<(PoiId, f64)> {
        for poi in self.stale.drain() {
            match self.per_poi.get(&poi) {
                Some(m) => {
                    let d = CountDistribution::from_presences(m.values().copied(), self.kmax);
                    self.scores.insert(poi, d.p_ge(self.kq));
                }
                None => {
                    self.scores.remove(&poi);
                }
            }
        }
        pois.iter()
            .map(|&p| (p, self.scores.get(&p).copied().unwrap_or(self.empty_score)))
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistribTime {
    /// Distribution of the snapshot count at time `t`.
    At(Timestamp),
    /// Distribution of the interval count over `[ts, te]`.
    Over(Timestamp, Timestamp),
}

/// A top-k count-distribution query: rank POIs by `P(count ≥ kq)`.
#[derive(Debug, Clone)]
pub struct DistribQuery {
    pub time: DistribTime,
    /// The query POI set `P`.
    pub pois: Vec<PoiId>,
    /// The count threshold the ranking scores: `P(count ≥ kq)`.
    pub kq: usize,
    /// Convolution truncation bound (exact `P(count ≥ k)` for
    /// `k ≤ kmax + 1`).
    pub kmax: usize,
    /// Result size `k` (`0 < k ≤ |P|`).
    pub k: usize,
}

impl DistribQuery {
    /// Snapshot-count distribution query at time `t`.
    pub fn at(t: Timestamp, pois: Vec<PoiId>, kq: usize, kmax: usize, k: usize) -> DistribQuery {
        assert!(!pois.is_empty(), "query POI set must be non-empty");
        let k = k.clamp(1, pois.len());
        DistribQuery { time: DistribTime::At(t), pois, kq, kmax: kmax.max(1), k }
    }

    /// Interval-count distribution query over `[ts, te]`.
    pub fn over(
        ts: Timestamp,
        te: Timestamp,
        pois: Vec<PoiId>,
        kq: usize,
        kmax: usize,
        k: usize,
    ) -> DistribQuery {
        assert!(!pois.is_empty(), "query POI set must be non-empty");
        assert!(ts <= te, "query interval must be ordered");
        let k = k.clamp(1, pois.len());
        DistribQuery { time: DistribTime::Over(ts, te), pois, kq, kmax: kmax.max(1), k }
    }
}

/// A count-distribution query answer.
#[derive(Debug, Clone)]
pub struct DistribResult {
    /// Top-k POIs by `P(count ≥ kq)`, descending (ties by ascending id).
    pub ranked: Vec<(PoiId, f64)>,
    /// Every query POI's full distribution, in query POI-set order.
    pub distributions: Vec<(PoiId, CountDistribution)>,
    pub stats: QueryStats,
    pub quality: DataQuality,
}

/// Computes the exact Poisson-binomial count distribution of every query
/// POI by convolving per-object presence probabilities in ascending
/// object-id order (the serving engine's order), then ranks POIs by
/// `P(count ≥ kq)`.
pub fn count_distributions(fa: &FlowAnalytics, q: &DistribQuery) -> DistribResult {
    let mut rec = fa.recorder();
    rec.add(Counter::DistribQueries, 1);
    let root = rec.enter("distrib");
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);
    let mut stats = QueryStats::default();
    let mut dists: HashMap<PoiId, CountDistribution> =
        q.pois.iter().map(|&p| (p, CountDistribution::new(q.kmax))).collect();

    // Candidate retrieval, then an ascending object-id sort: the
    // convolution order must match the incremental engine's rank order
    // so streamed and batch distributions are bit-identical.
    let span = rec.enter("candidate_retrieval");
    let mut candidates: Vec<(ObjectId, Option<ObjectState>)> = match q.time {
        DistribTime::At(t) => fa
            .artree()
            .point_query(t)
            .into_iter()
            .filter_map(|e| ArTree::resolve_state(fa.ott(), e, t).map(|s| (e.object, Some(s))))
            .collect(),
        DistribTime::Over(ts, te) => {
            fa.interval_candidates(ts, te).into_iter().map(|o| (o, None)).collect()
        }
    };
    candidates.sort_by_key(|&(o, _)| o);
    candidates.dedup_by_key(|&mut (o, _)| o);
    rec.exit(span);

    let span = rec.enter("convolve");
    for (object, state) in candidates {
        stats.objects_considered += 1;
        let contribs = match (q.time, state) {
            (DistribTime::At(t), Some(state)) => Some(contrib::snapshot_object_contrib(
                fa.engine(),
                fa.ott(),
                state,
                t,
                &rp,
                &mut rec,
                &mut stats,
            )),
            (DistribTime::Over(ts, te), _) => contrib::interval_object_contrib(
                fa.engine(),
                fa.ott(),
                object,
                ts,
                te,
                &rp,
                &mut rec,
                &mut stats,
            ),
            (DistribTime::At(_), None) => None,
        };
        let Some(contribs) = contribs else { continue };
        for (poi, presence) in contribs {
            stats.accumulated_flow_mass += presence;
            if fa.is_repaired(object) {
                stats.repaired_flow_mass += presence;
            }
            if let Some(dist) = dists.get_mut(&poi) {
                dist.push(presence);
            }
        }
    }
    rec.exit(span);

    let span = rec.enter("rank");
    let scores: Vec<(PoiId, f64)> =
        q.pois.iter().map(|&p| (p, score_of(&dists, p, q.kq))).collect();
    let ranked = rank_topk(scores, q.k);
    let distributions: Vec<(PoiId, CountDistribution)> = q
        .pois
        .iter()
        .map(|&p| (p, dists.get(&p).cloned().unwrap_or_else(|| CountDistribution::new(q.kmax))))
        .collect();
    rec.exit(span);
    rec.exit(root);
    let quality = fa.quality(&stats);
    DistribResult { ranked, distributions, stats, quality }
}

fn score_of(dists: &HashMap<PoiId, CountDistribution>, poi: PoiId, kq: usize) -> f64 {
    dists.get(&poi).map(|d| d.p_ge(kq)).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force Poisson-binomial pmf by enumerating all subsets.
    fn brute_pmf(ps: &[f64]) -> Vec<f64> {
        let mut pmf = vec![0.0; ps.len() + 1];
        for mask in 0..(1u32 << ps.len()) {
            let mut prob = 1.0;
            let mut count = 0usize;
            for (i, &p) in ps.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    prob *= p;
                    count += 1;
                } else {
                    prob *= 1.0 - p;
                }
            }
            pmf[count] += prob;
        }
        pmf
    }

    #[test]
    fn convolution_matches_subset_enumeration() {
        let ps = [0.3, 0.75, 0.1, 0.9, 0.5];
        let d = CountDistribution::from_presences(ps.iter().copied(), ps.len());
        let brute = brute_pmf(&ps);
        for (k, &want) in brute.iter().enumerate() {
            assert!((d.pmf(k) - want).abs() < 1e-12, "pmf({k}): {} vs {want}", d.pmf(k));
        }
        assert!(d.tail_mass() < 1e-12);
        assert!((d.expectation() - ps.iter().sum::<f64>()).abs() < 1e-12);
        assert!((d.expectation_from_pmf() - d.expectation()).abs() < 1e-9);
    }

    #[test]
    fn truncated_tail_keeps_p_ge_exact_up_to_kmax_plus_one() {
        let ps = [0.6, 0.7, 0.8, 0.9, 0.5, 0.4];
        let full = CountDistribution::from_presences(ps.iter().copied(), ps.len());
        let cut = CountDistribution::from_presences(ps.iter().copied(), 2);
        for k in 0..=3 {
            assert!(
                (full.p_ge(k) - cut.p_ge(k)).abs() < 1e-12,
                "p_ge({k}): {} vs {}",
                full.p_ge(k),
                cut.p_ge(k)
            );
        }
        // Beyond kmax + 1 the truncated value is an upper bound.
        assert!(cut.p_ge(5) >= full.p_ge(5) - 1e-12);
        // The exact expectation survives truncation untouched.
        assert!((cut.expectation() - full.expectation()).abs() < 1e-12);
    }

    #[test]
    fn p_ge_is_monotone_and_pmf_sums_to_one() {
        let ps = [0.25, 0.5, 0.125, 0.99, 0.01, 0.66];
        let d = CountDistribution::from_presences(ps.iter().copied(), ps.len());
        let total: f64 = (0..=d.kmax()).map(|k| d.pmf(k)).sum::<f64>() + d.tail_mass();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 0..d.kmax() + 2 {
            assert!(d.p_ge(k) + 1e-12 >= d.p_ge(k + 1), "p_ge not monotone at {k}");
        }
    }

    #[test]
    fn quantiles_walk_the_cdf() {
        let d = CountDistribution::from_presences([0.5, 0.5], 2);
        // pmf = [0.25, 0.5, 0.25]
        assert_eq!(d.quantile(0.0), 0);
        assert_eq!(d.quantile(0.25), 0);
        assert_eq!(d.quantile(0.5), 1);
        assert_eq!(d.quantile(0.75), 1);
        assert_eq!(d.quantile(1.0), 2);
        let cut = CountDistribution::from_presences([1.0, 1.0, 1.0], 1);
        // All mass is past kmax: the quantile lands in the tail.
        assert_eq!(cut.quantile(0.5), 2);
    }
}
