//! Flow timelines and continuous top-k monitoring.
//!
//! The paper's queries are one-shot; its concluding discussion points at
//! continuous monitoring as follow-on work. This module layers both on the
//! core engine:
//!
//! * [`flow_timeline`] evaluates interval flows over consecutive buckets
//!   of a time range — the "flows over time" view behind the motivating
//!   lease-pricing and planning scenarios (§1);
//! * [`ContinuousSnapshotMonitor`] re-evaluates a snapshot top-k as time
//!   advances and reports which POIs entered or left the result.

use crate::analytics::FlowAnalytics;
use crate::profiling;
use crate::query::{DataQuality, IntervalQuery, QueryStats, SnapshotQuery};
use inflow_indoor::PoiId;
use inflow_obs::QueryProfile;
use inflow_tracking::Timestamp;

/// One bucket of a [`FlowTimeline`].
#[derive(Debug, Clone)]
pub struct TimelineBucket {
    /// Bucket start (inclusive).
    pub ts: Timestamp,
    /// Bucket end.
    pub te: Timestamp,
    /// Interval flows of every query POI over `[ts, te]`, unranked but in
    /// query-POI order.
    pub flows: Vec<(PoiId, f64)>,
    /// Execution statistics of this bucket's interval evaluation.
    pub stats: QueryStats,
}

/// Interval flows per POI over consecutive time buckets.
#[derive(Debug, Clone)]
pub struct FlowTimeline {
    /// The buckets in chronological order.
    pub buckets: Vec<TimelineBucket>,
    /// Statistics summed across all buckets.
    pub stats: QueryStats,
    /// Per-phase profile of the whole timeline evaluation (one `bucket`
    /// child span per bucket under the `timeline` root). `Some` only when
    /// profiling is enabled on the façade.
    pub profile: Option<Box<QueryProfile>>,
    /// Data-quality summary across all buckets (degraded-mode reporting).
    pub quality: DataQuality,
}

impl FlowTimeline {
    /// The flow series of one POI across all buckets.
    pub fn series(&self, poi: PoiId) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|b| b.flows.iter().find(|&&(p, _)| p == poi).map_or(0.0, |&(_, f)| f))
            .collect()
    }

    /// Total flow of one POI over the whole timeline.
    pub fn total(&self, poi: PoiId) -> f64 {
        self.series(poi).iter().sum()
    }

    /// The bucket index where the POI peaks, with the peak flow
    /// (`None` for an empty timeline).
    pub fn peak_bucket(&self, poi: PoiId) -> Option<(usize, f64)> {
        self.series(poi).into_iter().enumerate().max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The `k` POIs with the largest summed flow, descending
    /// (ties by ascending POI id).
    pub fn top_k_overall(&self, k: usize) -> Vec<(PoiId, f64)> {
        let Some(first) = self.buckets.first() else {
            return Vec::new();
        };
        let totals: Vec<(PoiId, f64)> =
            first.flows.iter().map(|&(p, _)| (p, self.total(p))).collect();
        crate::query::rank_topk(totals, k)
    }
}

/// Evaluates interval flows over consecutive `bucket_len`-second buckets
/// spanning `[start, end)`. The final bucket is truncated at `end`.
pub fn flow_timeline(
    fa: &FlowAnalytics,
    pois: &[PoiId],
    start: Timestamp,
    end: Timestamp,
    bucket_len: f64,
) -> FlowTimeline {
    assert!(bucket_len > 0.0, "bucket length must be positive");
    assert!(end >= start, "time range must be ordered");
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("timeline");
    let mut buckets = Vec::new();
    let mut total = QueryStats::default();
    let mut ts = start;
    while ts < end {
        let te = (ts + bucket_len).min(end);
        let q = IntervalQuery::new(ts, te, pois.to_vec(), pois.len());
        let span = rec.enter("bucket");
        let (flows, stats) = crate::iterative::interval_flows_threads(fa, &q, &mut rec, 1);
        rec.exit(span);
        total.merge(&stats);
        buckets.push(TimelineBucket { ts, te, flows, stats });
        ts = te;
    }
    rec.exit(root);
    let quality = fa.quality(&total);
    FlowTimeline {
        buckets,
        stats: total,
        profile: profiling::finish_profile(rec, &total, probes0),
        quality,
    }
}

/// The outcome of one continuous-monitor evaluation.
#[derive(Debug, Clone)]
pub struct TopKUpdate {
    /// Evaluation time.
    pub t: Timestamp,
    /// The current top-k, ranked.
    pub ranked: Vec<(PoiId, f64)>,
    /// POIs that entered the top-k since the previous evaluation.
    pub entered: Vec<PoiId>,
    /// POIs that dropped out since the previous evaluation.
    pub exited: Vec<PoiId>,
}

impl TopKUpdate {
    /// Whether the top-k membership changed.
    pub fn changed(&self) -> bool {
        !self.entered.is_empty() || !self.exited.is_empty()
    }
}

/// Continuously monitors a snapshot top-k query as time advances.
///
/// Each [`ContinuousSnapshotMonitor::evaluate_at`] call runs the join
/// algorithm at the given time and diffs the membership against the
/// previous result.
pub struct ContinuousSnapshotMonitor<'a> {
    fa: &'a FlowAnalytics,
    pois: Vec<PoiId>,
    k: usize,
    last: Option<Vec<PoiId>>,
}

impl<'a> ContinuousSnapshotMonitor<'a> {
    /// Creates a monitor over the given POI set and result size.
    pub fn new(fa: &'a FlowAnalytics, pois: Vec<PoiId>, k: usize) -> Self {
        assert!(!pois.is_empty(), "monitor needs a non-empty POI set");
        let k = k.clamp(1, pois.len());
        ContinuousSnapshotMonitor { fa, pois, k, last: None }
    }

    /// Evaluates the top-k at `t` and reports membership changes.
    pub fn evaluate_at(&mut self, t: Timestamp) -> TopKUpdate {
        let q = SnapshotQuery::new(t, self.pois.clone(), self.k);
        let result = self.fa.snapshot_topk_join(&q);
        let current: Vec<PoiId> = result.poi_ids();
        let (entered, exited) = match &self.last {
            None => (current.clone(), Vec::new()),
            Some(prev) => {
                let entered = current.iter().copied().filter(|p| !prev.contains(p)).collect();
                let exited = prev.iter().copied().filter(|p| !current.contains(p)).collect();
                (entered, exited)
            }
        };
        self.last = Some(current);
        TopKUpdate { t, ranked: result.ranked, entered, exited }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::{Point, Polygon};
    use inflow_indoor::{CellKind, FloorPlanBuilder};
    use inflow_tracking::{ObjectId, ObjectTrackingTable, OttRow};
    use inflow_uncertainty::{IndoorContext, UrConfig};
    use std::sync::Arc;

    /// A corridor with two readers; objects pass reader A early and
    /// reader B late, so the popular POI flips between buckets.
    fn setup() -> (FlowAnalytics, Vec<PoiId>) {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(40.0, 4.0)),
        );
        let dev_a = b.add_device("dev-a", Point::new(5.0, 2.0), 1.0);
        let dev_b = b.add_device("dev-b", Point::new(35.0, 2.0), 1.0);
        let poi_a =
            b.add_poi("poi-a", Polygon::rectangle(Point::new(3.0, 0.0), Point::new(7.0, 4.0)));
        let poi_b =
            b.add_poi("poi-b", Polygon::rectangle(Point::new(33.0, 0.0), Point::new(37.0, 4.0)));
        let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));

        let mut rows = Vec::new();
        for o in 0..4u32 {
            let offset = o as f64;
            rows.push(OttRow { object: ObjectId(o), device: dev_a, ts: offset, te: offset + 5.0 });
            rows.push(OttRow {
                object: ObjectId(o),
                device: dev_b,
                ts: offset + 40.0,
                te: offset + 45.0,
            });
        }
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        let fa = FlowAnalytics::new(ctx, ott, UrConfig { vmax: 1.1, ..UrConfig::default() });
        (fa, vec![poi_a, poi_b])
    }

    #[test]
    fn timeline_buckets_cover_range() {
        let (fa, pois) = setup();
        let tl = flow_timeline(&fa, &pois, 0.0, 50.0, 20.0);
        assert_eq!(tl.buckets.len(), 3);
        assert_eq!(tl.buckets[0].ts, 0.0);
        assert_eq!(tl.buckets[2].te, 50.0); // truncated final bucket
    }

    #[test]
    fn timeline_shows_popularity_shift() {
        let (fa, pois) = setup();
        let (poi_a, poi_b) = (pois[0], pois[1]);
        let tl = flow_timeline(&fa, &pois, 0.0, 50.0, 25.0);
        // Early bucket: everyone near reader A.
        let early_a = tl.buckets[0].flows.iter().find(|&&(p, _)| p == poi_a).unwrap().1;
        let early_b = tl.buckets[0].flows.iter().find(|&&(p, _)| p == poi_b).unwrap().1;
        assert!(early_a > early_b, "A should dominate early: {early_a} vs {early_b}");
        // Late bucket: everyone near reader B.
        let late_a = tl.buckets[1].flows.iter().find(|&&(p, _)| p == poi_a).unwrap().1;
        let late_b = tl.buckets[1].flows.iter().find(|&&(p, _)| p == poi_b).unwrap().1;
        assert!(late_b > late_a, "B should dominate late: {late_b} vs {late_a}");
        // Series/peak helpers agree.
        assert_eq!(tl.series(poi_a).len(), 2);
        assert_eq!(tl.peak_bucket(poi_a).unwrap().0, 0);
        assert_eq!(tl.peak_bucket(poi_b).unwrap().0, 1);
        assert!(tl.total(poi_a) > 0.0);
        assert_eq!(tl.top_k_overall(1).len(), 1);
    }

    #[test]
    fn monitor_reports_membership_changes() {
        let (fa, pois) = setup();
        let (poi_a, poi_b) = (pois[0], pois[1]);
        let mut monitor = ContinuousSnapshotMonitor::new(&fa, pois, 1);
        // t=3: objects detected at reader A.
        let u1 = monitor.evaluate_at(3.0);
        assert_eq!(u1.ranked[0].0, poi_a);
        assert!(u1.changed()); // first evaluation counts as entering
                               // Shortly after: still A.
        let u2 = monitor.evaluate_at(4.0);
        assert!(!u2.changed(), "top-1 should be stable: {u2:?}");
        // t=43: objects detected at reader B.
        let u3 = monitor.evaluate_at(43.0);
        assert_eq!(u3.ranked[0].0, poi_b);
        assert!(u3.changed());
        assert_eq!(u3.entered, vec![poi_b]);
        assert_eq!(u3.exited, vec![poi_a]);
    }

    #[test]
    fn empty_timeline_helpers() {
        let tl = FlowTimeline {
            buckets: Vec::new(),
            stats: QueryStats::default(),
            profile: None,
            quality: DataQuality::default(),
        };
        assert!(tl.top_k_overall(3).is_empty());
        assert!(tl.peak_bucket(PoiId(0)).is_none());
        assert_eq!(tl.total(PoiId(0)), 0.0);
    }
}
