//! The top-level query façade.

use crate::iterative;
use crate::join::{self, JoinConfig};
use crate::query::{DataQuality, IntervalQuery, QueryResult, QueryStats, SnapshotQuery};
use inflow_indoor::PoiId;
use inflow_rtree::RTree;
use inflow_tracking::Timestamp;
use inflow_tracking::{ArTree, ObjectId, ObjectTrackingTable, SanitizeReport};
use inflow_uncertainty::{IndoorContext, UrConfig, UrEngine};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Flow analytics over one floor plan and one Object Tracking Table.
///
/// Owns the uncertainty engine and the AR-tree, and executes the paper's
/// four top-k algorithms. The POI R-tree `R_P` is built per query, since
/// the query POI set `P` is a query parameter (§5.1 varies `|P|`).
///
/// ```
/// # use inflow_core::{FlowAnalytics, SnapshotQuery};
/// # use inflow_geometry::{Point, Polygon};
/// # use inflow_indoor::{CellKind, FloorPlanBuilder};
/// # use inflow_tracking::{ObjectId, ObjectTrackingTable, OttRow};
/// # use inflow_uncertainty::{IndoorContext, UrConfig};
/// # use std::sync::Arc;
/// let mut b = FloorPlanBuilder::new();
/// b.add_cell("hall", CellKind::Hallway,
///     Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 4.0)));
/// let dev = b.add_device("dev0", Point::new(2.0, 2.0), 1.0);
/// let poi = b.add_poi("shop", Polygon::rectangle(Point::new(1.0, 0.0), Point::new(4.0, 4.0)));
/// let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));
/// let ott = ObjectTrackingTable::from_rows(vec![OttRow {
///     object: ObjectId(0), device: dev, ts: 0.0, te: 10.0,
/// }]).unwrap();
/// let analytics = FlowAnalytics::new(ctx, ott, UrConfig { vmax: 1.1, ..Default::default() });
/// let result = analytics.snapshot_topk_join(&SnapshotQuery::new(5.0, vec![poi], 1));
/// assert_eq!(result.ranked[0].0, poi);
/// assert!(result.ranked[0].1 > 0.0);
/// ```
pub struct FlowAnalytics {
    engine: UrEngine,
    ott: ObjectTrackingTable,
    artree: ArTree,
    join_cfg: JoinConfig,
    profiling: bool,
    /// The sanitize report of the gate that produced `ott`, when the data
    /// went through `inflow_tracking::sanitize` (degraded-mode reporting).
    sanitize_report: Option<SanitizeReport>,
    /// Objects whose chains the sanitizer repaired (including synthetic
    /// ids minted by chain splitting).
    repaired_objects: HashSet<ObjectId>,
    /// Rows excluded from `ott` because their storage segments are
    /// quarantined (damaged on disk, awaiting repair). Every answer over
    /// this table is degraded by exactly these rows.
    storage_quarantined_rows: u64,
    /// Last interval candidate scan: `(ts, te, distinct objects)`. The OTT
    /// is immutable per instance, so a repeated `[ts, te]` — e.g. a
    /// subscription refresh — reuses the scan instead of re-walking the
    /// AR-tree. A `Mutex` (not `RefCell`) keeps the façade `Sync` for the
    /// scoped-thread query paths.
    range_memo: Mutex<Option<(Timestamp, Timestamp, Vec<ObjectId>)>>,
    /// Times the memo answered a candidate scan (observability + tests).
    range_memo_hits: AtomicU64,
}

impl FlowAnalytics {
    /// Builds the analytics stack: uncertainty engine plus AR-tree.
    /// Profiling starts disabled (see [`FlowAnalytics::with_profiling`]).
    pub fn new(ctx: Arc<IndoorContext>, ott: ObjectTrackingTable, cfg: UrConfig) -> FlowAnalytics {
        let artree = ArTree::build(&ott);
        FlowAnalytics {
            engine: UrEngine::new(ctx, cfg),
            ott,
            artree,
            join_cfg: JoinConfig::default(),
            profiling: false,
            sanitize_report: None,
            repaired_objects: HashSet::new(),
            storage_quarantined_rows: 0,
            range_memo: Mutex::new(None),
            range_memo_hits: AtomicU64::new(0),
        }
    }

    /// Overrides the join-algorithm configuration (ablation switches).
    pub fn with_join_config(mut self, join_cfg: JoinConfig) -> FlowAnalytics {
        self.join_cfg = join_cfg;
        self
    }

    /// Attaches the [`SanitizeReport`] of the gate that produced this
    /// table, plus the objects whose chains were repaired. Query answers
    /// then attribute flow mass to repaired records in their
    /// [`crate::QueryResult::quality`] summary, and profiles carry the
    /// sanitize counters.
    pub fn with_sanitize_report(
        mut self,
        report: SanitizeReport,
        repaired_objects: impl IntoIterator<Item = ObjectId>,
    ) -> FlowAnalytics {
        self.repaired_objects = repaired_objects.into_iter().collect();
        self.sanitize_report = Some(report);
        self
    }

    /// The attached sanitize report, if any.
    pub fn sanitize_report(&self) -> Option<&SanitizeReport> {
        self.sanitize_report.as_ref()
    }

    /// Declares that `rows` rows are missing from the table because the
    /// storage tier quarantined their segments. They count into every
    /// answer's [`DataQuality::quarantined_rows`] — the answer is served,
    /// but marked degraded rather than passed off as complete.
    pub fn with_storage_quarantine(mut self, rows: u64) -> FlowAnalytics {
        self.storage_quarantined_rows = rows;
        self
    }

    /// Rows excluded by storage-tier quarantine (0 when the table came
    /// from a healthy store or a plain file).
    pub fn storage_quarantined_rows(&self) -> u64 {
        self.storage_quarantined_rows
    }

    /// Whether the sanitizer repaired this object's chain.
    pub(crate) fn is_repaired(&self, object: ObjectId) -> bool {
        self.repaired_objects.contains(&object)
    }

    /// Builds the data-quality summary for one query's final stats.
    pub(crate) fn quality(&self, stats: &QueryStats) -> DataQuality {
        let (repaired, rejected, quarantined) = match &self.sanitize_report {
            Some(r) => (r.total_repaired(), r.total_rejected(), r.total_quarantined()),
            None => (0, 0, 0),
        };
        DataQuality::from_stats(
            stats,
            repaired,
            rejected,
            quarantined + self.storage_quarantined_rows,
        )
    }

    /// Enables or disables per-query profiling. When enabled, every query
    /// result carries a [`crate::QueryResult::profile`] with phase spans,
    /// counters and latency histograms. When disabled (the default) the
    /// queries run with a no-op recorder — a single pointer-sized `None`
    /// checked per record call, no allocation, no clock reads.
    pub fn with_profiling(mut self, enabled: bool) -> FlowAnalytics {
        self.profiling = enabled;
        self
    }

    /// In-place variant of [`FlowAnalytics::with_profiling`].
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
    }

    /// Whether per-query profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The recorder for one query execution. When profiling is on and a
    /// sanitize report is attached, the report's totals are pre-loaded so
    /// the profile shows what the query's data went through upstream.
    pub(crate) fn recorder(&self) -> inflow_obs::Recorder {
        if !self.profiling {
            return inflow_obs::Recorder::disabled();
        }
        let mut rec = inflow_obs::Recorder::enabled();
        if let Some(report) = &self.sanitize_report {
            rec.add(inflow_obs::Counter::SanitizeDetected, report.total_detected());
            rec.add(inflow_obs::Counter::SanitizeRepaired, report.total_repaired());
            rec.add(inflow_obs::Counter::SanitizeRejected, report.total_rejected());
            rec.add(inflow_obs::Counter::SanitizeQuarantined, report.total_quarantined());
            rec.add(inflow_obs::Counter::SanitizeReadmitted, report.readmitted);
        }
        if self.storage_quarantined_rows > 0 {
            // This execution answers despite storage-tier quarantine.
            rec.add(inflow_obs::Counter::QuarantineDegradedAnswers, 1);
        }
        rec
    }

    /// The uncertainty engine.
    pub fn engine(&self) -> &UrEngine {
        &self.engine
    }

    /// The Object Tracking Table.
    pub fn ott(&self) -> &ObjectTrackingTable {
        &self.ott
    }

    /// The AR-tree over the OTT.
    pub fn artree(&self) -> &ArTree {
        &self.artree
    }

    /// Builds the POI R-tree `R_P` over the query POI set.
    pub(crate) fn build_poi_rtree(&self, pois: &[PoiId]) -> RTree<PoiId> {
        let plan = self.engine.context().plan();
        RTree::bulk_load(pois.iter().map(|&p| (plan.poi(p).mbr(), p)).collect())
    }

    /// Distinct objects whose augmented tracking intervals overlap
    /// `[ts, te]`, sorted ascending — the interval algorithms' candidate
    /// population. Memoized for the last range queried: identical repeat
    /// ranges (continuous-monitoring refreshes) skip the AR-tree scan.
    pub(crate) fn interval_candidates(&self, ts: Timestamp, te: Timestamp) -> Vec<ObjectId> {
        {
            // A cache of plain data: recovering from a poisoned memo is
            // always safe, so no panic on the query path.
            let memo = self.range_memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some((mts, mte, objects)) = memo.as_ref() {
                if *mts == ts && *mte == te {
                    self.range_memo_hits.fetch_add(1, Ordering::Relaxed);
                    return objects.clone();
                }
            }
        }
        let mut objects: Vec<ObjectId> =
            self.artree.range_query(ts, te).iter().map(|e| e.object).collect();
        objects.sort_unstable();
        objects.dedup();
        *self.range_memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((ts, te, objects.clone()));
        objects
    }

    /// Times the last-range memo answered a candidate scan.
    pub fn range_memo_hits(&self) -> u64 {
        self.range_memo_hits.load(Ordering::Relaxed)
    }

    /// Snapshot top-k via the iterative Algorithm 1.
    pub fn snapshot_topk_iterative(&self, q: &SnapshotQuery) -> QueryResult {
        iterative::snapshot(self, q)
    }

    /// Snapshot top-k via the join Algorithm 2 (+ expandList, Algorithm 3).
    pub fn snapshot_topk_join(&self, q: &SnapshotQuery) -> QueryResult {
        join::snapshot(self, q, &self.join_cfg)
    }

    /// Interval top-k via the iterative Algorithm 4.
    pub fn interval_topk_iterative(&self, q: &IntervalQuery) -> QueryResult {
        iterative::interval(self, q)
    }

    /// Interval top-k via the improved join Algorithm 5.
    pub fn interval_topk_join(&self, q: &IntervalQuery) -> QueryResult {
        join::interval(self, q, &self.join_cfg)
    }

    /// Snapshot top-k via Algorithm 1 with the per-object work spread
    /// over `threads` scoped workers. The fold runs on the calling thread
    /// in the sequential candidate order, so the result — flows, ranking,
    /// even stats — is bitwise identical to
    /// [`FlowAnalytics::snapshot_topk_iterative`]. `threads <= 1` runs
    /// inline. Per-operation latency histograms are not collected from
    /// workers; phase spans still are.
    pub fn snapshot_topk_iterative_threads(
        &self,
        q: &SnapshotQuery,
        threads: usize,
    ) -> QueryResult {
        iterative::snapshot_threads(self, q, threads)
    }

    /// Interval top-k via Algorithm 4 across `threads` scoped workers;
    /// bitwise identical to [`FlowAnalytics::interval_topk_iterative`]
    /// (see [`FlowAnalytics::snapshot_topk_iterative_threads`]).
    pub fn interval_topk_iterative_threads(
        &self,
        q: &IntervalQuery,
        threads: usize,
    ) -> QueryResult {
        iterative::interval_threads(self, q, threads)
    }

    /// Top-k POIs by `P(count ≥ kq)` — the Poisson-binomial count
    /// distribution over per-object presences (see [`crate::distrib`]).
    pub fn distrib_topk(&self, q: &crate::distrib::DistribQuery) -> crate::distrib::DistribResult {
        crate::distrib::count_distributions(self, q)
    }

    /// Top-k POIs by the number of objects whose expected dwell reaches
    /// the query threshold (see [`crate::longvisit`]).
    pub fn longvisit_topk(
        &self,
        q: &crate::longvisit::LongVisitQuery,
    ) -> crate::longvisit::LongVisitResult {
        crate::longvisit::longvisit_counts(self, q)
    }

    /// All snapshot flows (unranked), mainly for tests and inspection.
    pub fn snapshot_flows(&self, q: &SnapshotQuery) -> Vec<(PoiId, f64)> {
        iterative::snapshot_flows(self, q)
    }

    /// All interval flows (unranked), mainly for tests and inspection.
    pub fn interval_flows(&self, q: &IntervalQuery) -> Vec<(PoiId, f64)> {
        iterative::interval_flows(self, q)
    }
}
