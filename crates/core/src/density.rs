//! Probabilistic snapshot density analysis.
//!
//! The paper's related-work discussion (§6.2) contrasts its POI flows
//! with outdoor *density queries* — finding dense regions rather than
//! ranking fixed POIs. This module brings that query type indoors: under
//! the standard uniform-within-UR assumption, an object contributes
//! `area(UR ∩ cell) / area(UR)` expected presence to each grid cell, and
//! the densest cells at a time point fall out of a single pass over the
//! snapshot uncertainty regions.
//!
//! Note the different normalization from POI flow (Definition 1): flow
//! divides by the *POI's* area (a coverage measure), density divides by
//! the *UR's* area (a probability measure), so per-cell expectations sum
//! to the population size.

use crate::analytics::FlowAnalytics;
use inflow_geometry::{area_in_window, area_of_region, GridResolution, Mbr, Point, Region};
use inflow_obs::Counter;
use inflow_tracking::{ArTree, Timestamp};

/// Expected object counts on a uniform grid at one time point.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    origin: Point,
    cell_size: f64,
    nx: usize,
    ny: usize,
    expected: Vec<f64>,
}

impl DensityGrid {
    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Edge length of a cell in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The world rectangle of cell `(i, j)`.
    pub fn cell_mbr(&self, i: usize, j: usize) -> Mbr {
        let lo = Point::new(
            self.origin.x + i as f64 * self.cell_size,
            self.origin.y + j as f64 * self.cell_size,
        );
        Mbr::new(lo, Point::new(lo.x + self.cell_size, lo.y + self.cell_size))
    }

    /// Expected object count in cell `(i, j)`.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.expected[j * self.nx + i]
    }

    /// Total expected count across the grid — approximately the number of
    /// tracked objects whose uncertainty region lies within the grid.
    pub fn total(&self) -> f64 {
        self.expected.iter().sum()
    }

    /// The `k` densest cells, as `(i, j, expected)` sorted descending.
    pub fn hottest(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let mut cells: Vec<(usize, usize, f64)> = (0..self.ny)
            .flat_map(|j| (0..self.nx).map(move |i| (i, j)))
            .map(|(i, j)| (i, j, self.value(i, j)))
            .collect();
        cells.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        cells.truncate(k);
        cells
    }
}

/// Computes the expected-count density grid at time `t` with square cells
/// of `cell_size` metres covering the floor plan.
pub fn snapshot_density(fa: &FlowAnalytics, t: Timestamp, cell_size: f64) -> DensityGrid {
    assert!(cell_size > 0.0, "cell size must be positive");
    let mut rec = fa.recorder();
    rec.add(Counter::DensityQueries, 1);
    let span = rec.enter("snapshot_density");
    let plan = fa.engine().context().plan();
    let window = plan.mbr();
    let origin = window.lo;
    let nx = (window.width() / cell_size).ceil().max(1.0) as usize;
    let ny = (window.height() / cell_size).ceil().max(1.0) as usize;
    let mut grid = DensityGrid { origin, cell_size, nx, ny, expected: vec![0.0; nx * ny] };

    // Cheaper integration than presence: density is an aggregate view, so
    // coarse cells tolerate coarse grids.
    let res = GridResolution::COARSE;
    for entry in fa.artree().point_query(t) {
        let Some(state) = ArTree::resolve_state(fa.ott(), entry, t) else {
            continue;
        };
        let ur = fa.engine().snapshot_ur(fa.ott(), state, t);
        if ur.is_empty() {
            continue;
        }
        let total_area = area_of_region(&ur, res);
        if total_area <= f64::EPSILON {
            continue;
        }
        // Only cells overlapping the UR's MBR can receive mass.
        let m = ur.mbr();
        let i0 = (((m.lo.x - origin.x) / cell_size).floor().max(0.0)) as usize;
        let j0 = (((m.lo.y - origin.y) / cell_size).floor().max(0.0)) as usize;
        let i1 = ((((m.hi.x - origin.x) / cell_size).ceil()) as usize).min(nx);
        let j1 = ((((m.hi.y - origin.y) / cell_size).ceil()) as usize).min(ny);
        for j in j0..j1 {
            for i in i0..i1 {
                let cell = grid.cell_mbr(i, j);
                let inter = area_in_window(&ur, cell, res);
                if inter > 0.0 {
                    grid.expected[j * nx + i] += inter / total_area;
                }
            }
        }
    }
    rec.exit(span);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Polygon;
    use inflow_indoor::{CellKind, FloorPlanBuilder};
    use inflow_tracking::{ObjectId, ObjectTrackingTable, OttRow};
    use inflow_uncertainty::{IndoorContext, UrConfig};
    use std::sync::Arc;

    /// One 40×40 hall with a reader near the south-west corner.
    fn setup(object_count: u32) -> FlowAnalytics {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(40.0, 40.0)),
        );
        let dev = b.add_device("dev", Point::new(5.0, 5.0), 2.0);
        b.add_poi("poi", Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));
        let rows = (0..object_count)
            .map(|o| OttRow { object: ObjectId(o), device: dev, ts: 0.0, te: 100.0 })
            .collect();
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        FlowAnalytics::new(ctx, ott, UrConfig { vmax: 1.1, ..UrConfig::default() })
    }

    #[test]
    fn mass_concentrates_at_the_detection_disk() {
        let fa = setup(3);
        let grid = snapshot_density(&fa, 50.0, 10.0);
        assert_eq!(grid.dims(), (4, 4));
        // All three objects are inside the r=2 disk around (5,5): cell (0,0).
        let hottest = grid.hottest(1)[0];
        assert_eq!((hottest.0, hottest.1), (0, 0));
        assert!((hottest.2 - 3.0).abs() < 0.05, "expected ≈3, got {}", hottest.2);
        // Far cells see nothing.
        assert!(grid.value(3, 3) < 1e-9);
    }

    #[test]
    fn mass_is_conserved() {
        let fa = setup(5);
        let grid = snapshot_density(&fa, 50.0, 8.0);
        assert!((grid.total() - 5.0).abs() < 0.1, "total {}", grid.total());
    }

    #[test]
    fn untracked_time_gives_empty_grid() {
        let fa = setup(2);
        let grid = snapshot_density(&fa, 1000.0, 10.0);
        assert!(grid.total() < 1e-9);
    }

    #[test]
    fn cell_mbrs_tile_the_plan() {
        let fa = setup(1);
        let grid = snapshot_density(&fa, 50.0, 10.0);
        let (nx, ny) = grid.dims();
        let mut area = 0.0;
        for j in 0..ny {
            for i in 0..nx {
                area += grid.cell_mbr(i, j).area();
            }
        }
        assert!((area - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_is_sorted_descending() {
        let fa = setup(4);
        let grid = snapshot_density(&fa, 50.0, 10.0);
        let hot = grid.hottest(5);
        for w in hot.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }
}
