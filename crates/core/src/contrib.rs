//! Per-object flow contributions — the shared recompute entry point.
//!
//! Both the batch iterative algorithms ([`crate::iterative`]) and the
//! incremental flow-monitoring service (`inflow-service`) reduce to the
//! same primitive: derive one object's uncertainty region for the query
//! time parameter, probe the POI R-tree `R_P` with its MBR, and integrate
//! a presence for every hit. Factoring that primitive here is what makes
//! the service's incremental maintenance *provably* agree with a batch
//! recomputation — the increments are not a reimplementation of the math,
//! they are the same function applied to one object at a time.
//!
//! The batch loops call the `*_object_contrib` functions per candidate and
//! fold the returned contributions in candidate order, which keeps their
//! floating-point accumulation order — and therefore their results —
//! bitwise identical to the pre-refactor code.

use crate::query::QueryStats;
use inflow_geometry::Region;
use inflow_indoor::PoiId;
use inflow_obs::{Recorder, Timer};
use inflow_rtree::RTree;
use inflow_tracking::{ObjectId, ObjectState, ObjectTrackingTable, Timestamp};
use inflow_uncertainty::UrEngine;

/// One object's positive presence contributions `(poi, presence)` against
/// the POI set indexed by `rp`, in R-tree hit order. Empty when the
/// object's uncertainty region is empty or intersects no query POI.
///
/// `state` must have been resolved against `ott` (record ids are
/// table-relative). Bumps `stats` for the UR derivation, R-tree probe and
/// presence integrations; the caller accounts `objects_considered` and
/// folds the returned mass into its flow accumulator.
pub fn snapshot_object_contrib(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    state: ObjectState,
    t: Timestamp,
    rp: &RTree<PoiId>,
    rec: &mut Recorder,
    stats: &mut QueryStats,
) -> Vec<(PoiId, f64)> {
    let timer = rec.start(Timer::UrDerive);
    let ur = engine.snapshot_ur(ott, state, t);
    rec.stop(Timer::UrDerive, timer);
    stats.urs_built += 1;
    if ur.is_empty() {
        stats.empty_urs += 1;
        return Vec::new();
    }
    integrate_hits(engine, &ur, rp, rec, stats)
}

/// Interval twin of [`snapshot_object_contrib`]: contributions of one
/// object over `[ts, te]`. `None` when no uncertainty region could be
/// derived at all (no covering records — counted as a missing UR).
#[allow(clippy::too_many_arguments)]
pub fn interval_object_contrib(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    object: ObjectId,
    ts: Timestamp,
    te: Timestamp,
    rp: &RTree<PoiId>,
    rec: &mut Recorder,
    stats: &mut QueryStats,
) -> Option<Vec<(PoiId, f64)>> {
    let timer = rec.start(Timer::UrDerive);
    let ur = engine.interval_ur(ott, object, ts, te);
    rec.stop(Timer::UrDerive, timer);
    let Some(ur) = ur else {
        stats.missing_urs += 1;
        return None;
    };
    stats.urs_built += 1;
    if ur.is_empty() {
        stats.empty_urs += 1;
        return Some(Vec::new());
    }
    Some(integrate_hits(engine, &ur, rp, rec, stats))
}

fn integrate_hits(
    engine: &UrEngine,
    ur: &inflow_uncertainty::UncertaintyRegion,
    rp: &RTree<PoiId>,
    rec: &mut Recorder,
    stats: &mut QueryStats,
) -> Vec<(PoiId, f64)> {
    let plan = engine.context().plan();
    let (hits, visited) = rp.query_intersecting_counted(&ur.mbr());
    stats.rtree_nodes_visited += visited;
    let mut out = Vec::with_capacity(hits.len());
    for &poi_id in hits {
        let poi = plan.poi(poi_id);
        stats.presence_evaluations += 1;
        let timer = rec.start(Timer::Presence);
        let presence = engine.presence(ur, poi);
        rec.stop(Timer::Presence, timer);
        if presence > 0.0 {
            out.push((poi_id, presence));
        }
    }
    out
}

/// Folds one object's contributions into a flow accumulator in hit order,
/// accounting the accumulated (and, for repaired objects, attributed)
/// flow mass exactly as the pre-refactor inline loops did.
pub(crate) fn fold_contrib(
    flows: &mut std::collections::HashMap<PoiId, f64>,
    stats: &mut QueryStats,
    contribs: &[(PoiId, f64)],
    repaired: bool,
) {
    for &(poi, presence) in contribs {
        // Contributions only name query POIs; an unknown id would be a
        // bug upstream, and skipping it beats crashing the query.
        let Some(flow) = flows.get_mut(&poi) else { continue };
        *flow += presence;
        stats.accumulated_flow_mass += presence;
        if repaired {
            stats.repaired_flow_mass += presence;
        }
    }
}

/// Standalone snapshot recompute for one object, used by the incremental
/// service: resolves the object's state at `t` against `ott` (typically a
/// single-object table assembled from the object's current rows) and
/// returns its positive contributions. Empty when the object is not
/// tracked at `t`.
pub fn object_snapshot_flows(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    object: ObjectId,
    t: Timestamp,
    rp: &RTree<PoiId>,
) -> Vec<(PoiId, f64)> {
    let Some(state) = ott.state_at(object, t) else {
        return Vec::new();
    };
    let mut stats = QueryStats::default();
    snapshot_object_contrib(engine, ott, state, t, rp, &mut Recorder::disabled(), &mut stats)
}

/// Standalone interval recompute for one object (service twin of
/// [`object_snapshot_flows`]).
pub fn object_interval_flows(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    object: ObjectId,
    ts: Timestamp,
    te: Timestamp,
    rp: &RTree<PoiId>,
) -> Vec<(PoiId, f64)> {
    let mut stats = QueryStats::default();
    interval_object_contrib(engine, ott, object, ts, te, rp, &mut Recorder::disabled(), &mut stats)
        .unwrap_or_default()
}
