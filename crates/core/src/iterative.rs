//! The iterative query algorithms (Algorithms 1 and 4).
//!
//! Straightforward processing: derive the uncertainty region of *every*
//! object relevant to the query time parameter, find the POIs it
//! intersects via `R_P`, and accumulate presences into per-POI flow
//! values. Serves as the baseline the join algorithms are compared
//! against throughout §5.

use crate::analytics::FlowAnalytics;
use crate::query::{rank_topk, IntervalQuery, QueryResult, QueryStats, SnapshotQuery};
use inflow_geometry::Region;
use inflow_indoor::PoiId;
use inflow_tracking::{ArTree, ObjectId};
use std::collections::HashMap;

/// Algorithm 1: iterative snapshot top-k.
pub fn snapshot(fa: &FlowAnalytics, q: &SnapshotQuery) -> QueryResult {
    let (flows, stats) = snapshot_flows_with_stats(fa, q);
    QueryResult { ranked: rank_topk(flows, q.k), stats }
}

/// Algorithm 4: iterative interval top-k.
pub fn interval(fa: &FlowAnalytics, q: &IntervalQuery) -> QueryResult {
    let (flows, stats) = interval_flows_with_stats(fa, q);
    QueryResult { ranked: rank_topk(flows, q.k), stats }
}

/// All snapshot flows, unranked.
pub fn snapshot_flows(fa: &FlowAnalytics, q: &SnapshotQuery) -> Vec<(PoiId, f64)> {
    snapshot_flows_with_stats(fa, q).0
}

/// All interval flows, unranked.
pub fn interval_flows(fa: &FlowAnalytics, q: &IntervalQuery) -> Vec<(PoiId, f64)> {
    interval_flows_with_stats(fa, q).0
}

fn snapshot_flows_with_stats(
    fa: &FlowAnalytics,
    q: &SnapshotQuery,
) -> (Vec<(PoiId, f64)>, QueryStats) {
    let rp = fa.build_poi_rtree(&q.pois);
    let plan = fa.engine().context().plan();
    let mut flows: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();
    let mut stats = QueryStats::default();

    // Point query on the AR-tree: all objects with an augmented tracking
    // interval covering t (Algorithm 1, line 3).
    for entry in fa.artree().point_query(q.t) {
        let Some(state) = ArTree::resolve_state(fa.ott(), entry, q.t) else { continue };
        stats.objects_considered += 1;
        let ur = fa.engine().snapshot_ur(fa.ott(), state, q.t);
        stats.urs_built += 1;
        if ur.is_empty() {
            continue;
        }
        for &poi_id in rp.query_intersecting(&ur.mbr()) {
            let poi = plan.poi(poi_id);
            stats.presence_evaluations += 1;
            let presence = fa.engine().presence(&ur, poi);
            if presence > 0.0 {
                *flows.get_mut(&poi_id).expect("query POI") += presence;
            }
        }
    }
    (flows.into_iter().collect(), stats)
}

fn interval_flows_with_stats(
    fa: &FlowAnalytics,
    q: &IntervalQuery,
) -> (Vec<(PoiId, f64)>, QueryStats) {
    let rp = fa.build_poi_rtree(&q.pois);
    let plan = fa.engine().context().plan();
    let mut flows: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();
    let mut stats = QueryStats::default();

    // Range query on the AR-tree; the distinct objects form the relevant
    // population (Algorithm 4, lines 3–6).
    let mut objects: Vec<ObjectId> =
        fa.artree().range_query(q.ts, q.te).iter().map(|e| e.object).collect();
    objects.sort_unstable();
    objects.dedup();

    for object in objects {
        stats.objects_considered += 1;
        let Some(ur) = fa.engine().interval_ur(fa.ott(), object, q.ts, q.te) else { continue };
        stats.urs_built += 1;
        if ur.is_empty() {
            continue;
        }
        for &poi_id in rp.query_intersecting(&ur.mbr()) {
            let poi = plan.poi(poi_id);
            stats.presence_evaluations += 1;
            let presence = fa.engine().presence(&ur, poi);
            if presence > 0.0 {
                *flows.get_mut(&poi_id).expect("query POI") += presence;
            }
        }
    }
    (flows.into_iter().collect(), stats)
}
