//! The iterative query algorithms (Algorithms 1 and 4).
//!
//! Straightforward processing: derive the uncertainty region of *every*
//! object relevant to the query time parameter, find the POIs it
//! intersects via `R_P`, and accumulate presences into per-POI flow
//! values. Serves as the baseline the join algorithms are compared
//! against throughout §5.
//!
//! The per-object body lives in [`crate::contrib`] so the incremental
//! flow-monitoring service reuses the exact same primitive; the loops
//! here fold contributions in candidate order, keeping results bitwise
//! identical to the pre-factoring code.
//!
//! Both algorithms are embarrassingly parallel over objects: the
//! `*_parallel` variants partition the candidate list across
//! `std::thread::scope` workers and fold the per-object contributions on
//! the calling thread *in the sequential candidate order*, so the
//! floating-point accumulation order — and therefore the flows, the
//! top-k and even the stats — is bitwise identical to the
//! single-threaded path (asserted in `tests/algorithm_equivalence.rs`).
//!
//! Observability: each query records phase spans (`build_poi_rtree`,
//! `candidate_retrieval`, `accumulate`, `rank`) plus per-operation
//! latency histograms for UR derivation and presence integration when
//! profiling is enabled on the façade (sequential paths only — parallel
//! workers run with no-op recorders).

use crate::analytics::FlowAnalytics;
use crate::contrib::{self, fold_contrib};
use crate::profiling;
use crate::query::{rank_topk, IntervalQuery, QueryResult, QueryStats, SnapshotQuery};
use inflow_indoor::PoiId;
use inflow_obs::Recorder;
use inflow_tracking::{ArTree, ObjectId, ObjectState};
use std::collections::HashMap;

/// Algorithm 1: iterative snapshot top-k.
pub fn snapshot(fa: &FlowAnalytics, q: &SnapshotQuery) -> QueryResult {
    snapshot_threads(fa, q, 1)
}

/// Algorithm 1 with the per-object work spread over `threads` workers
/// (`<= 1` runs inline). Bitwise-identical results to [`snapshot`].
pub fn snapshot_threads(fa: &FlowAnalytics, q: &SnapshotQuery, threads: usize) -> QueryResult {
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("snapshot_iterative");
    let (flows, stats) = snapshot_flows_threads(fa, q, &mut rec, threads);
    let span = rec.enter("rank");
    let ranked = rank_topk(flows, q.k);
    rec.exit(span);
    rec.exit(root);
    let quality = fa.quality(&stats);
    QueryResult { ranked, stats, profile: profiling::finish_profile(rec, &stats, probes0), quality }
}

/// Algorithm 4: iterative interval top-k.
pub fn interval(fa: &FlowAnalytics, q: &IntervalQuery) -> QueryResult {
    interval_threads(fa, q, 1)
}

/// Algorithm 4 with the per-object work spread over `threads` workers
/// (`<= 1` runs inline). Bitwise-identical results to [`interval`].
pub fn interval_threads(fa: &FlowAnalytics, q: &IntervalQuery, threads: usize) -> QueryResult {
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("interval_iterative");
    let (flows, stats) = interval_flows_threads(fa, q, &mut rec, threads);
    let span = rec.enter("rank");
    let ranked = rank_topk(flows, q.k);
    rec.exit(span);
    rec.exit(root);
    let quality = fa.quality(&stats);
    QueryResult { ranked, stats, profile: profiling::finish_profile(rec, &stats, probes0), quality }
}

/// All snapshot flows, unranked.
pub fn snapshot_flows(fa: &FlowAnalytics, q: &SnapshotQuery) -> Vec<(PoiId, f64)> {
    snapshot_flows_threads(fa, q, &mut Recorder::disabled(), 1).0
}

/// All interval flows, unranked.
pub fn interval_flows(fa: &FlowAnalytics, q: &IntervalQuery) -> Vec<(PoiId, f64)> {
    interval_flows_threads(fa, q, &mut Recorder::disabled(), 1).0
}

fn snapshot_flows_threads(
    fa: &FlowAnalytics,
    q: &SnapshotQuery,
    rec: &mut Recorder,
    threads: usize,
) -> (Vec<(PoiId, f64)>, QueryStats) {
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);
    let mut flows: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();
    let mut stats = QueryStats::default();

    // Point query on the AR-tree: all objects with an augmented tracking
    // interval covering t (Algorithm 1, line 3). Resolving states up
    // front fixes the candidate order the fold must follow.
    let span = rec.enter("candidate_retrieval");
    let candidates: Vec<(ObjectId, ObjectState)> = fa
        .artree()
        .point_query(q.t)
        .into_iter()
        .filter_map(|e| ArTree::resolve_state(fa.ott(), e, q.t).map(|s| (e.object, s)))
        .collect();
    rec.exit(span);

    let span = rec.enter("accumulate");
    let per_object =
        run_candidates(&candidates, threads, rec, &mut stats, |_, state, rec, stats| {
            Some(contrib::snapshot_object_contrib(
                fa.engine(),
                fa.ott(),
                *state,
                q.t,
                &rp,
                rec,
                stats,
            ))
        });
    for ((object, _), contribs) in candidates.iter().zip(&per_object) {
        stats.objects_considered += 1;
        let Some(contribs) = contribs else { continue };
        fold_contrib(&mut flows, &mut stats, contribs, fa.is_repaired(*object));
    }
    rec.exit(span);
    (flows.into_iter().collect(), stats)
}

pub(crate) fn interval_flows_threads(
    fa: &FlowAnalytics,
    q: &IntervalQuery,
    rec: &mut Recorder,
    threads: usize,
) -> (Vec<(PoiId, f64)>, QueryStats) {
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);
    let mut flows: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();
    let mut stats = QueryStats::default();

    // Range query on the AR-tree; the distinct objects form the relevant
    // population (Algorithm 4, lines 3–6). Memoized on the façade so
    // repeated refreshes over the same range skip the rescan.
    let span = rec.enter("candidate_retrieval");
    let candidates: Vec<(ObjectId, ())> =
        fa.interval_candidates(q.ts, q.te).into_iter().map(|o| (o, ())).collect();
    rec.exit(span);

    let span = rec.enter("accumulate");
    let per_object =
        run_candidates(&candidates, threads, rec, &mut stats, |object, (), rec, stats| {
            contrib::interval_object_contrib(
                fa.engine(),
                fa.ott(),
                object,
                q.ts,
                q.te,
                &rp,
                rec,
                stats,
            )
        });
    for ((object, ()), contribs) in candidates.iter().zip(&per_object) {
        stats.objects_considered += 1;
        let Some(contribs) = contribs else { continue };
        fold_contrib(&mut flows, &mut stats, contribs, fa.is_repaired(*object));
    }
    rec.exit(span);
    (flows.into_iter().collect(), stats)
}

/// Computes one optional contribution list per candidate — inline on this
/// thread for `threads <= 1`, otherwise across contiguous chunks under
/// `std::thread::scope` — and returns them *in candidate order*, so the
/// caller's fold is order-identical either way. `None` marks a candidate
/// with no derivable region (counted inside `f` via its stats).
///
/// Integer stats from parallel workers merge commutatively; the f64 flow
/// masses are accumulated only by the caller's sequential fold, which is
/// what makes the parallel results bitwise identical.
fn run_candidates<S: Sync, F>(
    candidates: &[(ObjectId, S)],
    threads: usize,
    rec: &mut Recorder,
    stats: &mut QueryStats,
    f: F,
) -> Vec<Option<Vec<(PoiId, f64)>>>
where
    F: Fn(ObjectId, &S, &mut Recorder, &mut QueryStats) -> Option<Vec<(PoiId, f64)>> + Sync,
{
    if threads <= 1 || candidates.len() < 2 {
        return candidates.iter().map(|(o, s)| f(*o, s, rec, stats)).collect();
    }
    let workers = threads.min(candidates.len());
    let chunk = candidates.len().div_ceil(workers);
    let mut results: Vec<Option<Vec<(PoiId, f64)>>> = Vec::with_capacity(candidates.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|part| {
                let f = &f;
                scope.spawn(move || {
                    let mut local = QueryStats::default();
                    let out: Vec<_> = part
                        .iter()
                        .map(|(o, s)| f(*o, s, &mut Recorder::disabled(), &mut local))
                        .collect();
                    (out, local)
                })
            })
            .collect();
        for h in handles {
            // A panicked worker already logged its own failure; degrade
            // to the surviving workers' results rather than tearing down
            // the serving thread with it.
            if let Ok((out, local)) = h.join() {
                results.extend(out);
                stats.merge(&local);
            }
        }
    });
    results
}
