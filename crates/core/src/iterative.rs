//! The iterative query algorithms (Algorithms 1 and 4).
//!
//! Straightforward processing: derive the uncertainty region of *every*
//! object relevant to the query time parameter, find the POIs it
//! intersects via `R_P`, and accumulate presences into per-POI flow
//! values. Serves as the baseline the join algorithms are compared
//! against throughout §5.
//!
//! Observability: each query records phase spans (`build_poi_rtree`,
//! `candidate_retrieval`, `accumulate`, `rank`) plus per-operation
//! latency histograms for UR derivation and presence integration when
//! profiling is enabled on the façade.

use crate::analytics::FlowAnalytics;
use crate::profiling;
use crate::query::{rank_topk, IntervalQuery, QueryResult, QueryStats, SnapshotQuery};
use inflow_geometry::Region;
use inflow_indoor::PoiId;
use inflow_obs::{Recorder, Timer};
use inflow_tracking::{ArTree, ObjectId};
use std::collections::HashMap;

/// Algorithm 1: iterative snapshot top-k.
pub fn snapshot(fa: &FlowAnalytics, q: &SnapshotQuery) -> QueryResult {
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("snapshot_iterative");
    let (flows, stats) = snapshot_flows_recorded(fa, q, &mut rec);
    let span = rec.enter("rank");
    let ranked = rank_topk(flows, q.k);
    rec.exit(span);
    rec.exit(root);
    let quality = fa.quality(&stats);
    QueryResult { ranked, stats, profile: profiling::finish_profile(rec, &stats, probes0), quality }
}

/// Algorithm 4: iterative interval top-k.
pub fn interval(fa: &FlowAnalytics, q: &IntervalQuery) -> QueryResult {
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("interval_iterative");
    let (flows, stats) = interval_flows_recorded(fa, q, &mut rec);
    let span = rec.enter("rank");
    let ranked = rank_topk(flows, q.k);
    rec.exit(span);
    rec.exit(root);
    let quality = fa.quality(&stats);
    QueryResult { ranked, stats, profile: profiling::finish_profile(rec, &stats, probes0), quality }
}

/// All snapshot flows, unranked.
pub fn snapshot_flows(fa: &FlowAnalytics, q: &SnapshotQuery) -> Vec<(PoiId, f64)> {
    snapshot_flows_recorded(fa, q, &mut Recorder::disabled()).0
}

/// All interval flows, unranked.
pub fn interval_flows(fa: &FlowAnalytics, q: &IntervalQuery) -> Vec<(PoiId, f64)> {
    interval_flows_recorded(fa, q, &mut Recorder::disabled()).0
}

fn snapshot_flows_recorded(
    fa: &FlowAnalytics,
    q: &SnapshotQuery,
    rec: &mut Recorder,
) -> (Vec<(PoiId, f64)>, QueryStats) {
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);
    let plan = fa.engine().context().plan();
    let mut flows: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();
    let mut stats = QueryStats::default();

    // Point query on the AR-tree: all objects with an augmented tracking
    // interval covering t (Algorithm 1, line 3).
    let span = rec.enter("candidate_retrieval");
    let entries = fa.artree().point_query(q.t);
    rec.exit(span);

    let span = rec.enter("accumulate");
    for entry in entries {
        let Some(state) = ArTree::resolve_state(fa.ott(), entry, q.t) else {
            continue;
        };
        stats.objects_considered += 1;
        let timer = rec.start(Timer::UrDerive);
        let ur = fa.engine().snapshot_ur(fa.ott(), state, q.t);
        rec.stop(Timer::UrDerive, timer);
        stats.urs_built += 1;
        if ur.is_empty() {
            stats.empty_urs += 1;
            continue;
        }
        let repaired = fa.is_repaired(entry.object);
        let (hits, visited) = rp.query_intersecting_counted(&ur.mbr());
        stats.rtree_nodes_visited += visited;
        for &poi_id in hits {
            let poi = plan.poi(poi_id);
            stats.presence_evaluations += 1;
            let timer = rec.start(Timer::Presence);
            let presence = fa.engine().presence(&ur, poi);
            rec.stop(Timer::Presence, timer);
            if presence > 0.0 {
                *flows.get_mut(&poi_id).expect("query POI") += presence;
                stats.accumulated_flow_mass += presence;
                if repaired {
                    stats.repaired_flow_mass += presence;
                }
            }
        }
    }
    rec.exit(span);
    (flows.into_iter().collect(), stats)
}

pub(crate) fn interval_flows_recorded(
    fa: &FlowAnalytics,
    q: &IntervalQuery,
    rec: &mut Recorder,
) -> (Vec<(PoiId, f64)>, QueryStats) {
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);
    let plan = fa.engine().context().plan();
    let mut flows: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();
    let mut stats = QueryStats::default();

    // Range query on the AR-tree; the distinct objects form the relevant
    // population (Algorithm 4, lines 3–6).
    let span = rec.enter("candidate_retrieval");
    let mut objects: Vec<ObjectId> =
        fa.artree().range_query(q.ts, q.te).iter().map(|e| e.object).collect();
    objects.sort_unstable();
    objects.dedup();
    rec.exit(span);

    let span = rec.enter("accumulate");
    for object in objects {
        stats.objects_considered += 1;
        let timer = rec.start(Timer::UrDerive);
        let ur = fa.engine().interval_ur(fa.ott(), object, q.ts, q.te);
        rec.stop(Timer::UrDerive, timer);
        let Some(ur) = ur else {
            stats.missing_urs += 1;
            continue;
        };
        stats.urs_built += 1;
        if ur.is_empty() {
            stats.empty_urs += 1;
            continue;
        }
        let repaired = fa.is_repaired(object);
        let (hits, visited) = rp.query_intersecting_counted(&ur.mbr());
        stats.rtree_nodes_visited += visited;
        for &poi_id in hits {
            let poi = plan.poi(poi_id);
            stats.presence_evaluations += 1;
            let timer = rec.start(Timer::Presence);
            let presence = fa.engine().presence(&ur, poi);
            rec.stop(Timer::Presence, timer);
            if presence > 0.0 {
                *flows.get_mut(&poi_id).expect("query POI") += presence;
                stats.accumulated_flow_mass += presence;
                if repaired {
                    stats.repaired_flow_mass += presence;
                }
            }
        }
    }
    rec.exit(span);
    (flows.into_iter().collect(), stats)
}
