//! Inverse queries: from POIs back to the objects that likely visited
//! them.
//!
//! Flow aggregates presences over objects; the motivating scenarios also
//! need the other direction — the museum recommender of §1 ("behavior of
//! past visitors … used for making recommendations") wants *who* likely
//! visited an exhibition and *what else* those visitors saw. Presences
//! are probabilities (Definition 1), so visitor sets are inherently
//! weighted.

use crate::analytics::FlowAnalytics;
use inflow_indoor::PoiId;
use inflow_obs::Counter;
use inflow_tracking::{ObjectId, Timestamp};

/// Objects whose interval presence in `poi` over `[ts, te]` is at least
/// `min_presence`, sorted by presence descending (ties by object id).
///
/// `min_presence` filters out the long tail of objects whose saturated
/// uncertainty regions graze every POI; `0.3`–`0.5` works well in
/// practice.
pub fn likely_visitors(
    fa: &FlowAnalytics,
    poi: PoiId,
    ts: Timestamp,
    te: Timestamp,
    min_presence: f64,
) -> Vec<(ObjectId, f64)> {
    assert!((0.0..=1.0).contains(&min_presence), "presence threshold must be in [0, 1]");
    let mut rec = fa.recorder();
    rec.add(Counter::VisitorQueries, 1);
    let span = rec.enter("likely_visitors");
    let plan = fa.engine().context().plan();
    let poi = plan.poi(poi);
    let mut objects: Vec<ObjectId> =
        fa.artree().range_query(ts, te).iter().map(|e| e.object).collect();
    objects.sort_unstable();
    objects.dedup();

    let mut visitors = Vec::new();
    for object in objects {
        let Some(ur) = fa.engine().interval_ur(fa.ott(), object, ts, te) else {
            continue;
        };
        if ur.is_empty() {
            continue;
        }
        let presence = fa.engine().presence(&ur, poi);
        if presence >= min_presence {
            visitors.push((object, presence));
        }
    }
    visitors.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rec.exit(span);
    visitors
}

/// For the likely visitors of `anchor`, scores every other POI in `pois`
/// by the summed presence of those visitors — "visitors of X also
/// visited …". Returns `(poi, score)` sorted descending, excluding the
/// anchor itself.
pub fn also_visited(
    fa: &FlowAnalytics,
    anchor: PoiId,
    pois: &[PoiId],
    ts: Timestamp,
    te: Timestamp,
    min_presence: f64,
) -> Vec<(PoiId, f64)> {
    let visitors = likely_visitors(fa, anchor, ts, te, min_presence);
    let mut rec = fa.recorder();
    rec.add(Counter::VisitorQueries, 1);
    let span = rec.enter("also_visited");
    let plan = fa.engine().context().plan();
    let mut scores: Vec<(PoiId, f64)> = Vec::new();
    for &poi_id in pois {
        if poi_id == anchor {
            continue;
        }
        let poi = plan.poi(poi_id);
        let mut score = 0.0;
        for &(object, _) in &visitors {
            if let Some(ur) = fa.engine().interval_ur(fa.ott(), object, ts, te) {
                if !ur.is_empty() {
                    score += fa.engine().presence(&ur, poi);
                }
            }
        }
        scores.push((poi_id, score));
    }
    scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rec.exit(span);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::{Point, Polygon};
    use inflow_indoor::{CellKind, FloorPlanBuilder};
    use inflow_tracking::{ObjectTrackingTable, OttRow};
    use inflow_uncertainty::{IndoorContext, UrConfig};
    use std::sync::Arc;

    /// A corridor with two readers far apart; objects 0 and 1 dwell at
    /// reader A, object 2 dwells at reader B.
    fn setup() -> (FlowAnalytics, Vec<PoiId>) {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(60.0, 4.0)),
        );
        let dev_a = b.add_device("dev-a", Point::new(5.0, 2.0), 1.5);
        let dev_b = b.add_device("dev-b", Point::new(55.0, 2.0), 1.5);
        let poi_a =
            b.add_poi("poi-a", Polygon::rectangle(Point::new(3.0, 0.0), Point::new(7.0, 4.0)));
        let poi_b =
            b.add_poi("poi-b", Polygon::rectangle(Point::new(53.0, 0.0), Point::new(57.0, 4.0)));
        let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));

        let row = |o: u32, d, ts: f64, te: f64| OttRow { object: ObjectId(o), device: d, ts, te };
        let ott = ObjectTrackingTable::from_rows(vec![
            row(0, dev_a, 0.0, 30.0),
            row(1, dev_a, 5.0, 28.0),
            row(2, dev_b, 0.0, 30.0),
        ])
        .unwrap();
        let fa = FlowAnalytics::new(ctx, ott, UrConfig { vmax: 1.1, ..UrConfig::default() });
        (fa, vec![poi_a, poi_b])
    }

    #[test]
    fn visitors_are_ranked_and_filtered() {
        let (fa, pois) = setup();
        let visitors = likely_visitors(&fa, pois[0], 0.0, 30.0, 0.3);
        let ids: Vec<ObjectId> = visitors.iter().map(|&(o, _)| o).collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1)], "only A-dwellers qualify: {visitors:?}");
        for &(_, p) in &visitors {
            assert!((0.3..=1.0).contains(&p));
        }
        // Object 2 shows up for poi-b instead.
        let visitors_b = likely_visitors(&fa, pois[1], 0.0, 30.0, 0.3);
        assert_eq!(visitors_b.iter().map(|&(o, _)| o).collect::<Vec<_>>(), vec![ObjectId(2)]);
    }

    #[test]
    fn presence_is_poi_area_normalized() {
        let (fa, pois) = setup();
        // A dweller's UR is its detection disk (r = 1.5, area ≈ 7.07),
        // fully inside the 16 m² POI, so presence ≈ 7.07/16 ≈ 0.44
        // (Definition 1 normalizes by POI area, not UR area).
        let visitors = likely_visitors(&fa, pois[0], 0.0, 30.0, 0.40);
        assert_eq!(visitors.len(), 2, "{visitors:?}");
        for &(_, p) in &visitors {
            assert!((0.40..0.50).contains(&p), "presence {p} outside the expected band");
        }
        // A stricter threshold than the disk/POI ratio admits nobody.
        assert!(likely_visitors(&fa, pois[0], 0.0, 30.0, 0.9).is_empty());
    }

    #[test]
    fn also_visited_scores_companion_pois() {
        let (fa, pois) = setup();
        // Visitors of poi-a never reached poi-b (50 m away, detected at A
        // the whole time).
        let scores = also_visited(&fa, pois[0], &pois, 0.0, 30.0, 0.3);
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].0, pois[1]);
        assert!(scores[0].1 < 0.1, "A-dwellers cannot have visited B: {scores:?}");
    }

    #[test]
    fn empty_window_has_no_visitors() {
        let (fa, pois) = setup();
        assert!(likely_visitors(&fa, pois[0], 1000.0, 2000.0, 0.1).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        let (fa, pois) = setup();
        let _ = likely_visitors(&fa, pois[0], 0.0, 1.0, 1.5);
    }
}
