//! Glue between query execution and the `inflow-obs` recorder.
//!
//! The always-on [`QueryStats`] counters are accumulated in plain locals
//! on the hot paths (no recorder branches in inner loops) and mirrored
//! into the profile's counter registry once per query, here. Profile-only
//! metrics — queue traffic, grid probes — are added by the algorithms
//! directly.

use crate::query::QueryStats;
use inflow_obs::{Counter, QueryProfile, Recorder};

/// Baseline of the geometry integrator's probe counter, taken before the
/// query runs so [`finish_profile`] can report the delta. Zero (and
/// unused) when profiling is disabled.
pub(crate) fn probes_start(rec: &Recorder) -> u64 {
    if rec.is_enabled() {
        inflow_geometry::integration_probes()
    } else {
        0
    }
}

/// Mirrors the final [`QueryStats`] into the recorder's counter registry,
/// records the grid-probe delta, and freezes the profile.
pub(crate) fn finish_profile(
    mut rec: Recorder,
    stats: &QueryStats,
    probes_before: u64,
) -> Option<Box<QueryProfile>> {
    if rec.is_enabled() {
        rec.add(Counter::ObjectsConsidered, stats.objects_considered as u64);
        rec.add(Counter::UrsBuilt, stats.urs_built as u64);
        rec.add(Counter::PresenceEvaluations, stats.presence_evaluations as u64);
        rec.add(Counter::MbrRejects, stats.mbr_rejects as u64);
        rec.add(Counter::SmallMbrRejects, stats.small_mbr_rejects as u64);
        rec.add(Counter::RtreeNodesVisited, stats.rtree_nodes_visited as u64);
        rec.add(Counter::ExactFlowsResolved, stats.exact_flows_resolved as u64);
        rec.add(Counter::PoisPruned, stats.pois_pruned as u64);
        rec.add(Counter::EmptyUrs, stats.empty_urs as u64);
        rec.add(Counter::MissingUrs, stats.missing_urs as u64);
        let probes = inflow_geometry::integration_probes().wrapping_sub(probes_before);
        rec.add(Counter::GridProbes, probes);
    }
    rec.finish().map(Box::new)
}
