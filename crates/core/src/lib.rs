//! Flow counting and top-k frequently-visited-POI queries over symbolic
//! indoor tracking data — the primary contribution of the EDBT 2016 paper
//! *Finding Frequently Visited Indoor POIs Using Symbolic Indoor Tracking
//! Data*.
//!
//! Flow (Definition 2) performs weighted counting of the objects that stay
//! in a POI at a time point or during a time interval, where each object's
//! weight is its *presence* — the fraction of the POI covered by the
//! object's uncertainty region. On top of this, two query types return the
//! top-k most frequently visited POIs:
//!
//! * **snapshot** queries (Problem 1) at a time point `t`;
//! * **interval** queries (Problem 2) over `[t_s, t_e]`.
//!
//! Each query type has two processing algorithms, reproduced from §4:
//!
//! * the **iterative** algorithms (Algorithms 1 and 4): derive every
//!   relevant object's uncertainty region and accumulate presences per POI;
//! * the **join** algorithms (Algorithms 2, 3 and 5): build an in-memory
//!   aggregate R-tree of object MBRs and join it against the POI R-tree
//!   guided by a priority queue of upper-bound flows, computing exact
//!   presences only for POIs that can still enter the top-k. The interval
//!   variant implements the improved per-segment small-MBR checks of
//!   §4.3.2 (Figure 9).
//!
//! The entry point is [`FlowAnalytics`].

pub mod analytics;
pub mod contrib;
pub mod density;
pub mod distrib;
pub mod iterative;
pub mod join;
pub mod longvisit;
mod profiling;
pub mod query;
pub mod timeline;
pub mod visitors;

pub use analytics::FlowAnalytics;
pub use contrib::{object_interval_flows, object_snapshot_flows};
pub use density::{snapshot_density, DensityGrid};
pub use distrib::{
    count_distributions, CountDistribution, DistribQuery, DistribResult, DistribState, DistribTime,
};
pub use join::JoinConfig;
pub use longvisit::{
    longvisit_counts, object_dwell, DwellState, LongVisitQuery, LongVisitResult, DWELL_SAMPLES,
};
pub use query::{rank_topk, DataQuality, IntervalQuery, QueryResult, QueryStats, SnapshotQuery};
pub use timeline::{
    flow_timeline, ContinuousSnapshotMonitor, FlowTimeline, TimelineBucket, TopKUpdate,
};
pub use visitors::{also_visited, likely_visitors};
