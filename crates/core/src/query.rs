//! Query types, results, and execution statistics.

use inflow_indoor::PoiId;
use inflow_tracking::Timestamp;

/// A snapshot top-k indoor POIs query (Problem 1): return the `k` POIs of
/// `pois` with the highest flow `Φ_t(p)` at time point `t`.
#[derive(Debug, Clone)]
pub struct SnapshotQuery {
    /// The query time point.
    pub t: Timestamp,
    /// The query POI set `P` (a subset of the plan's POIs).
    pub pois: Vec<PoiId>,
    /// Result size `k` (`0 < k ≤ |P|`).
    pub k: usize,
}

impl SnapshotQuery {
    /// Creates a snapshot query; `k` is clamped to `[1, |pois|]`.
    pub fn new(t: Timestamp, pois: Vec<PoiId>, k: usize) -> SnapshotQuery {
        assert!(!pois.is_empty(), "query POI set must be non-empty");
        let k = k.clamp(1, pois.len());
        SnapshotQuery { t, pois, k }
    }
}

/// An interval top-k indoor POIs query (Problem 2): return the `k` POIs of
/// `pois` with the highest flow `Φ_{[ts,te]}(p)`.
#[derive(Debug, Clone)]
pub struct IntervalQuery {
    /// Query interval start.
    pub ts: Timestamp,
    /// Query interval end (`ts ≤ te`).
    pub te: Timestamp,
    /// The query POI set `P`.
    pub pois: Vec<PoiId>,
    /// Result size `k` (`0 < k ≤ |P|`).
    pub k: usize,
}

impl IntervalQuery {
    /// Creates an interval query; `k` is clamped to `[1, |pois|]`.
    pub fn new(ts: Timestamp, te: Timestamp, pois: Vec<PoiId>, k: usize) -> IntervalQuery {
        assert!(!pois.is_empty(), "query POI set must be non-empty");
        assert!(ts <= te, "query interval must be ordered");
        let k = k.clamp(1, pois.len());
        IntervalQuery { ts, te, pois, k }
    }
}

/// Execution statistics, for analysis and the paper's ablation studies.
///
/// Always collected (they are plain integer bumps on paths that already
/// do real work); the richer per-phase timing breakdown lives in
/// [`QueryResult::profile`] and is opt-in via
/// [`crate::FlowAnalytics::with_profiling`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Objects whose tracking data overlapped the query time parameter.
    pub objects_considered: usize,
    /// Uncertainty regions actually derived.
    pub urs_built: usize,
    /// Presence integrations performed (the dominant cost).
    pub presence_evaluations: usize,
    /// Object–POI pairings rejected by the cheap MBR intersection test
    /// before any integration.
    pub mbr_rejects: usize,
    /// Join-list entries rejected by the finer small-MBR checks (§4.3.2
    /// per-segment MBRs in the interval join; derived-region MBRs in the
    /// snapshot join). Always 0 for the iterative algorithms.
    pub small_mbr_rejects: usize,
    /// R-tree nodes expanded (`R_P` probes in the iterative algorithms,
    /// `R_I`/`R_P` descent in the join algorithms).
    pub rtree_nodes_visited: usize,
    /// POIs whose exact flow the join algorithm computed. Always 0 for
    /// the iterative algorithms (which resolve every POI implicitly).
    pub exact_flows_resolved: usize,
    /// POIs never exactly resolved thanks to upper-bound early
    /// termination — the join algorithm's payoff. Always 0 for the
    /// iterative algorithms.
    pub pois_pruned: usize,
    /// Objects considered whose uncertainty region came out empty — e.g.
    /// `V_max`-infeasible record pairs (§3.2.2), degraded data, or device
    /// outages. They contribute no flow.
    pub empty_urs: usize,
    /// Objects considered for which no uncertainty region could be
    /// derived at all (no covering tracking records in the query range).
    pub missing_urs: usize,
    /// Total presence mass accumulated across evaluated object–POI pairs.
    /// For the join algorithms this covers only the pairs actually
    /// integrated (pruned POIs contribute nothing).
    pub accumulated_flow_mass: f64,
    /// The share of [`QueryStats::accumulated_flow_mass`] contributed by
    /// objects whose records the sanitization gate repaired. Always 0
    /// when no sanitize report is attached to the analytics façade.
    pub repaired_flow_mass: f64,
}

impl QueryStats {
    /// Accumulates `other` into `self` (used for timeline totals).
    pub fn merge(&mut self, other: &QueryStats) {
        self.objects_considered += other.objects_considered;
        self.urs_built += other.urs_built;
        self.presence_evaluations += other.presence_evaluations;
        self.mbr_rejects += other.mbr_rejects;
        self.small_mbr_rejects += other.small_mbr_rejects;
        self.rtree_nodes_visited += other.rtree_nodes_visited;
        self.exact_flows_resolved += other.exact_flows_resolved;
        self.pois_pruned += other.pois_pruned;
        self.empty_urs += other.empty_urs;
        self.missing_urs += other.missing_urs;
        self.accumulated_flow_mass += other.accumulated_flow_mass;
        self.repaired_flow_mass += other.repaired_flow_mass;
    }
}

/// Data-quality summary of one query answer — the degraded-mode contract:
/// instead of failing on dirty data, queries answer from what survived
/// sanitization and report how much the answer rests on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataQuality {
    /// Objects whose tracking data overlapped the query time parameter.
    pub objects_considered: usize,
    /// Considered objects whose uncertainty region was empty.
    pub empty_urs: usize,
    /// Considered objects with no derivable uncertainty region.
    pub missing_urs: usize,
    /// Fraction of considered objects that produced a usable region
    /// (`1.0` when nothing was considered — an empty answer is exact).
    pub coverage: f64,
    /// Rows the upstream sanitization gate repaired (0 when no report
    /// was attached to the analytics façade).
    pub repaired_rows: u64,
    /// Rows the gate rejected.
    pub rejected_rows: u64,
    /// Rows the gate quarantined.
    pub quarantined_rows: u64,
    /// Presence mass contributed by repaired objects. Under join pruning
    /// this is a lower bound: pruned POIs never integrate their objects.
    pub repaired_flow_mass: f64,
    /// `repaired_flow_mass` as a fraction of all accumulated flow mass
    /// (`0.0` when no mass was accumulated).
    pub repaired_mass_fraction: f64,
}

impl Default for DataQuality {
    fn default() -> DataQuality {
        DataQuality {
            objects_considered: 0,
            empty_urs: 0,
            missing_urs: 0,
            coverage: 1.0,
            repaired_rows: 0,
            rejected_rows: 0,
            quarantined_rows: 0,
            repaired_flow_mass: 0.0,
            repaired_mass_fraction: 0.0,
        }
    }
}

impl DataQuality {
    /// Derives the summary from a query's stats and the sanitize-report
    /// totals of the data it ran on.
    pub fn from_stats(
        stats: &QueryStats,
        repaired_rows: u64,
        rejected_rows: u64,
        quarantined_rows: u64,
    ) -> DataQuality {
        let unusable = stats.empty_urs + stats.missing_urs;
        let coverage = if stats.objects_considered == 0 {
            1.0
        } else {
            1.0 - unusable as f64 / stats.objects_considered as f64
        };
        let repaired_mass_fraction = if stats.accumulated_flow_mass > 0.0 {
            stats.repaired_flow_mass / stats.accumulated_flow_mass
        } else {
            0.0
        };
        DataQuality {
            objects_considered: stats.objects_considered,
            empty_urs: stats.empty_urs,
            missing_urs: stats.missing_urs,
            coverage,
            repaired_rows,
            rejected_rows,
            quarantined_rows,
            repaired_flow_mass: stats.repaired_flow_mass,
            repaired_mass_fraction,
        }
    }

    /// Whether the answer rests on anything less than full clean data.
    pub fn degraded(&self) -> bool {
        self.empty_urs > 0
            || self.missing_urs > 0
            || self.repaired_rows > 0
            || self.rejected_rows > 0
            || self.quarantined_rows > 0
    }

    /// One-line summary for CLI output.
    pub fn render(&self) -> String {
        if !self.degraded() {
            return format!("quality: clean ({} objects, full coverage)", self.objects_considered);
        }
        let mut s = format!(
            "quality: coverage {:.1}% ({} objects, {} empty URs, {} missing URs)",
            self.coverage * 100.0,
            self.objects_considered,
            self.empty_urs,
            self.missing_urs
        );
        if self.repaired_rows > 0 || self.rejected_rows > 0 || self.quarantined_rows > 0 {
            s.push_str(&format!(
                "; sanitized input: {} repaired, {} rejected, {} quarantined; repaired flow mass {:.1}%",
                self.repaired_rows,
                self.rejected_rows,
                self.quarantined_rows,
                self.repaired_mass_fraction * 100.0
            ));
        }
        s
    }
}

/// A ranked top-k result: `(poi, flow)` pairs in descending flow order
/// (ties broken by ascending POI id), plus execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The top-k POIs with their flow values.
    pub ranked: Vec<(PoiId, f64)>,
    /// Execution statistics.
    pub stats: QueryStats,
    /// Per-phase span timings, counters and latency histograms. `Some`
    /// only when profiling was enabled on the analytics façade; boxed so
    /// the common disabled case stays one pointer wide.
    pub profile: Option<Box<inflow_obs::QueryProfile>>,
    /// Data-quality summary: how much of the answer rests on repaired,
    /// empty or missing tracking data (degraded-mode reporting).
    pub quality: DataQuality,
}

impl QueryResult {
    /// The POI ids of the result, in rank order.
    pub fn poi_ids(&self) -> Vec<PoiId> {
        self.ranked.iter().map(|&(p, _)| p).collect()
    }
}

/// Ranks flows in descending order with deterministic tie-breaking
/// (ascending POI id) and truncates to `k`. Public so the incremental
/// flow-monitoring service materializes its top-k with the exact same
/// ordering semantics as the batch algorithms.
pub fn rank_topk(mut flows: Vec<(PoiId, f64)>, k: usize) -> Vec<(PoiId, f64)> {
    flows.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    flows.truncate(k);
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_and_breaks_ties_by_id() {
        let flows = vec![(PoiId(3), 1.0), (PoiId(1), 2.0), (PoiId(2), 1.0), (PoiId(0), 0.5)];
        let ranked = rank_topk(flows, 3);
        assert_eq!(ranked, vec![(PoiId(1), 2.0), (PoiId(2), 1.0), (PoiId(3), 1.0)]);
    }

    /// IL001 regression: a NaN flow must neither panic the sort nor
    /// perturb the relative order of the finite flows. Under total_cmp,
    /// NaN compares above +inf, so a NaN entry ranks first (and is
    /// visible, rather than silently shuffling the rest as the old
    /// partial_cmp sort could).
    #[test]
    fn nan_flow_does_not_reorder_topk() {
        let flows = vec![(PoiId(0), 1.0), (PoiId(1), f64::NAN), (PoiId(2), 3.0), (PoiId(3), 2.0)];
        let ranked = rank_topk(flows, 4);
        let ids: Vec<PoiId> = ranked.iter().map(|&(p, _)| p).collect();
        assert_eq!(ids, vec![PoiId(1), PoiId(2), PoiId(3), PoiId(0)]);
        // And with the NaN absent, the finite ordering is identical.
        let finite = rank_topk(vec![(PoiId(0), 1.0), (PoiId(2), 3.0), (PoiId(3), 2.0)], 3);
        let finite_ids: Vec<PoiId> = finite.iter().map(|&(p, _)| p).collect();
        assert_eq!(finite_ids, vec![PoiId(2), PoiId(3), PoiId(0)]);
    }

    #[test]
    fn k_is_clamped() {
        let q = SnapshotQuery::new(0.0, vec![PoiId(0), PoiId(1)], 10);
        assert_eq!(q.k, 2);
        let q = SnapshotQuery::new(0.0, vec![PoiId(0)], 0);
        assert_eq!(q.k, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_poi_set_rejected() {
        let _ = IntervalQuery::new(0.0, 1.0, Vec::new(), 1);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn reversed_interval_rejected() {
        let _ = IntervalQuery::new(2.0, 1.0, vec![PoiId(0)], 1);
    }
}
