//! The join query algorithms (Algorithms 2, 3 and 5).
//!
//! Three phases (§4.2.2, §4.3.2):
//!
//! 1. build an in-memory **aggregate R-tree** `R_I` over the MBRs of the
//!    objects relevant to the query, each node entry augmented with the
//!    count of objects in its subtree;
//! 2. initialize a max-priority queue pairing POI R-tree (`R_P`) entries
//!    with *join lists* of `R_I` entries whose MBRs overlap, prioritized by
//!    the count-based **upper-bound flow** (an object's presence never
//!    exceeds 1, so the object count bounds the flow from above);
//! 3. drain the queue: descend whichever side is coarser
//!    (`expandList`, Algorithm 3, descends the `R_I` side), compute exact
//!    flows only when a POI leaf meets object leaves, and emit a POI as
//!    soon as its exact flow outranks every remaining upper bound.
//!
//! The interval variant implements the §4.3.2 improvement: each object
//! entry carries the per-segment small MBRs of its trajectory (Figure 9),
//! and a leaf object is admitted to a join list only if at least one small
//! MBR intersects the POI entry — eliminating the dead space of the single
//! large trajectory MBR.

use crate::analytics::FlowAnalytics;
use crate::profiling;
use crate::query::{IntervalQuery, QueryResult, QueryStats, SnapshotQuery};
use inflow_geometry::{Mbr, Region};
use inflow_indoor::PoiId;
use inflow_obs::{Counter, Histogram, Timer};
use inflow_rtree::{EntryRef, RTree};
use inflow_tracking::{ArTree, ObjectState};
use inflow_uncertainty::UncertaintyRegion;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configuration switches for the join algorithms (ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Apply the finer small-MBR checks when filtering join lists
    /// (`true` = the paper's improved algorithm, which is the variant it
    /// evaluates; `false` = the single-large-MBR basic framework).
    ///
    /// In the **interval** join this is the §4.3.2 per-segment check
    /// (Figure 9). In the **snapshot** join, where `R_I` holds coarse
    /// MBRs (Algorithm 2 line 8) and exact regions are derived lazily,
    /// the analogous refinement tests an already-derived region's tight
    /// segment MBR instead of the coarse entry MBR — same flows, fewer
    /// presence integrations.
    pub use_segment_mbrs: bool,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig { use_segment_mbrs: true }
    }
}

/// A priority-queue item: an `R_P` entry with its join list and
/// upper-bound flow, or a resolved POI with its exact flow.
struct Item {
    ub: f64,
    /// `true` once the flow is exact (the join list has been consumed).
    exact: bool,
    e_p: EntryRef,
    list: Vec<EntryRef>,
    poi: Option<PoiId>,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on the upper bound; exact flows win ties so a resolved
        // POI is emitted before equal-bound unresolved entries.
        self.ub
            .total_cmp(&other.ub)
            .then_with(|| self.exact.cmp(&other.exact))
            .then_with(|| other.e_p.cmp(&self.e_p))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Algorithm 2 (+ 3): join-based snapshot top-k.
pub fn snapshot(fa: &FlowAnalytics, q: &SnapshotQuery, cfg: &JoinConfig) -> QueryResult {
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("snapshot_join");
    let mut stats = QueryStats::default();

    // Phase 1: aggregate R-tree over coarse object MBRs (lines 1–11).
    let span = rec.enter("candidate_retrieval");
    let mut states: Vec<ObjectState> = Vec::new();
    let mut repaired_slots: Vec<bool> = Vec::new();
    let mut data: Vec<(Mbr, u32)> = Vec::new();
    for entry in fa.artree().point_query(q.t) {
        let Some(state) = ArTree::resolve_state(fa.ott(), entry, q.t) else {
            continue;
        };
        stats.objects_considered += 1;
        let mbr = fa.engine().snapshot_mbr_coarse(fa.ott(), state, q.t);
        if mbr.is_empty() {
            // The coarse MBR is already empty, so the exact region would
            // be too (infeasible/degraded records).
            stats.empty_urs += 1;
            continue;
        }
        let slot = states.len() as u32;
        states.push(state);
        repaired_slots.push(fa.is_repaired(entry.object));
        data.push((mbr, slot));
    }
    rec.exit(span);
    let span = rec.enter("build_ri");
    let ri: RTree<u32> = RTree::bulk_load(data);
    rec.exit(span);
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);

    // H_U: lazily derived uncertainty regions, shared across join lists
    // (lines 29–31). In a `RefCell` because the fine check reads it while
    // the presence closure populates it.
    let h_u: RefCell<Vec<Option<UncertaintyRegion>>> =
        RefCell::new((0..states.len()).map(|_| None).collect());
    let plan = fa.engine().context().plan();
    let engine = fa.engine();
    let ott = fa.ott();
    let t = q.t;
    let refine_with_derived = cfg.use_segment_mbrs;
    let timed = rec.is_enabled();

    let mut urs_built = 0usize;
    let mut presence_evals = 0usize;
    let mut mbr_rejects = 0usize;
    let mut small_mbr_rejects = 0usize;
    let mut accumulated_mass = 0.0f64;
    let mut repaired_mass = 0.0f64;
    let mut presence_hist = Histogram::new();
    let mut counters = JoinCounters::default();
    let descent = rec.enter("join_descent");
    let ranked = {
        let mut fine_check = |slot: u32, mbr: &Mbr| {
            // Snapshot analogue of the §4.3.2 refinement: the coarse R_I
            // entry MBR admitted this pairing, but once the object's
            // exact region is in H_U its tight segment MBR can veto it.
            if !refine_with_derived {
                return true;
            }
            match h_u.borrow()[slot as usize].as_ref() {
                None => true,
                Some(ur) if ur.any_segment_intersects(mbr) => true,
                Some(_) => {
                    small_mbr_rejects += 1;
                    false
                }
            }
        };
        let mut presence = |slot: u32, poi_id: PoiId| {
            let slot = slot as usize;
            if h_u.borrow()[slot].is_none() {
                let ur = engine.snapshot_ur(ott, states[slot], t);
                h_u.borrow_mut()[slot] = Some(ur);
                urs_built += 1;
            }
            let h = h_u.borrow();
            // Built two lines up when absent; contribute nothing rather
            // than panic inside the join loop if that ever changes.
            let Some(ur) = h[slot].as_ref() else { return 0.0 };
            let poi = plan.poi(poi_id);
            // Cheap MBR reject mirrors the iterative algorithm's R_P
            // filtering; only genuine integrations are counted.
            if !ur.mbr().intersects(&poi.mbr()) {
                mbr_rejects += 1;
                return 0.0;
            }
            presence_evals += 1;
            let p = if timed {
                let t0 = Instant::now();
                let p = engine.presence(ur, poi);
                presence_hist.observe(t0.elapsed().as_nanos() as u64);
                p
            } else {
                engine.presence(ur, poi)
            };
            if p > 0.0 {
                accumulated_mass += p;
                if repaired_slots[slot] {
                    repaired_mass += p;
                }
            }
            p
        };
        run_join(&rp, &ri, &q.pois, q.k, &mut fine_check, &mut presence, &mut counters)
    };
    rec.exit(descent);
    // Normalize tie order to match the iterative ranking (flow desc,
    // POI id asc); flows are unchanged.
    let span = rec.enter("rank");
    let ranked = crate::query::rank_topk(ranked, q.k);
    rec.exit(span);
    rec.exit(root);
    stats.urs_built = urs_built;
    stats.presence_evaluations = presence_evals;
    stats.mbr_rejects = mbr_rejects;
    stats.small_mbr_rejects = small_mbr_rejects;
    stats.accumulated_flow_mass = accumulated_mass;
    stats.repaired_flow_mass = repaired_mass;
    counters.fill(&mut stats, q.pois.len());
    rec.merge_timer(Timer::Presence, &presence_hist);
    counters.record_queue_traffic(&mut rec);
    let quality = fa.quality(&stats);
    QueryResult { ranked, stats, profile: profiling::finish_profile(rec, &stats, probes0), quality }
}

/// Algorithm 5 (improved): join-based interval top-k.
pub fn interval(fa: &FlowAnalytics, q: &IntervalQuery, cfg: &JoinConfig) -> QueryResult {
    let mut rec = fa.recorder();
    let probes0 = profiling::probes_start(&rec);
    let root = rec.enter("interval_join");
    let mut stats = QueryStats::default();

    // Phase 1 (lines 1–9): group the range query's entries by object and
    // derive each object's trajectory MBRs. The full region construction is
    // cheap; the expensive presence integrations stay lazy.
    let span = rec.enter("candidate_retrieval");
    let objects = fa.interval_candidates(q.ts, q.te);
    rec.exit(span);

    let span = rec.enter("derive_urs");
    let mut urs: Vec<UncertaintyRegion> = Vec::new();
    let mut repaired_slots: Vec<bool> = Vec::new();
    let mut data: Vec<(Mbr, u32)> = Vec::new();
    for object in objects {
        stats.objects_considered += 1;
        let timer = rec.start(Timer::UrDerive);
        let ur = fa.engine().interval_ur(fa.ott(), object, q.ts, q.te);
        rec.stop(Timer::UrDerive, timer);
        let Some(ur) = ur else {
            stats.missing_urs += 1;
            continue;
        };
        stats.urs_built += 1;
        if ur.is_empty() {
            stats.empty_urs += 1;
            continue;
        }
        let slot = urs.len() as u32;
        data.push((ur.mbr(), slot));
        urs.push(ur);
        repaired_slots.push(fa.is_repaired(object));
    }
    rec.exit(span);
    let span = rec.enter("build_ri");
    let ri: RTree<u32> = RTree::bulk_load(data);
    rec.exit(span);
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);

    let plan = fa.engine().context().plan();
    let engine = fa.engine();
    let use_segments = cfg.use_segment_mbrs;
    let timed = rec.is_enabled();

    let mut presence_evals = 0usize;
    let mut mbr_rejects = 0usize;
    let mut small_mbr_rejects = 0usize;
    let mut accumulated_mass = 0.0f64;
    let mut repaired_mass = 0.0f64;
    let mut presence_hist = Histogram::new();
    let mut counters = JoinCounters::default();
    let descent = rec.enter("join_descent");
    let ranked = {
        // Figure 9: admit a leaf object only if one of its small MBRs
        // intersects the POI entry's MBR.
        let mut fine_check = |slot: u32, mbr: &Mbr| {
            if !use_segments || urs[slot as usize].any_segment_intersects(mbr) {
                true
            } else {
                small_mbr_rejects += 1;
                false
            }
        };
        let mut presence = |slot: u32, poi_id: PoiId| {
            let slot = slot as usize;
            let ur = &urs[slot];
            let poi = plan.poi(poi_id);
            if !ur.mbr().intersects(&poi.mbr()) {
                mbr_rejects += 1;
                return 0.0;
            }
            presence_evals += 1;
            let p = if timed {
                let t0 = Instant::now();
                let p = engine.presence(ur, poi);
                presence_hist.observe(t0.elapsed().as_nanos() as u64);
                p
            } else {
                engine.presence(ur, poi)
            };
            if p > 0.0 {
                accumulated_mass += p;
                if repaired_slots[slot] {
                    repaired_mass += p;
                }
            }
            p
        };
        run_join(&rp, &ri, &q.pois, q.k, &mut fine_check, &mut presence, &mut counters)
    };
    rec.exit(descent);
    let span = rec.enter("rank");
    let ranked = crate::query::rank_topk(ranked, q.k);
    rec.exit(span);
    rec.exit(root);
    stats.presence_evaluations = presence_evals;
    stats.mbr_rejects = mbr_rejects;
    stats.small_mbr_rejects = small_mbr_rejects;
    stats.accumulated_flow_mass = accumulated_mass;
    stats.repaired_flow_mass = repaired_mass;
    counters.fill(&mut stats, q.pois.len());
    rec.merge_timer(Timer::Presence, &presence_hist);
    counters.record_queue_traffic(&mut rec);
    let quality = fa.quality(&stats);
    QueryResult { ranked, stats, profile: profiling::finish_profile(rec, &stats, probes0), quality }
}

/// Counters local to one [`run_join`] drive: plain integers so the
/// closures and the driver never contend for the recorder.
#[derive(Debug, Default, Clone, Copy)]
struct JoinCounters {
    /// R-tree nodes expanded on either side of the join.
    nodes_visited: usize,
    /// Entries pushed into the priority queue.
    queue_pushes: usize,
    /// Entries popped off the priority queue.
    queue_pops: usize,
    /// POIs whose exact flow was computed.
    exact_resolved: usize,
}

impl JoinCounters {
    /// Copies the driver counters into the query's [`QueryStats`].
    fn fill(&self, stats: &mut QueryStats, query_poi_count: usize) {
        stats.rtree_nodes_visited = self.nodes_visited;
        stats.exact_flows_resolved = self.exact_resolved;
        stats.pois_pruned = query_poi_count.saturating_sub(self.exact_resolved);
    }

    /// Queue traffic only exists in the join driver, so it bypasses
    /// `QueryStats` and goes straight into the profile registry.
    fn record_queue_traffic(&self, rec: &mut inflow_obs::Recorder) {
        rec.add(Counter::QueuePushes, self.queue_pushes as u64);
        rec.add(Counter::QueuePops, self.queue_pops as u64);
    }
}

/// The shared priority-queue join driver (Algorithm 2 lines 12–48 /
/// Algorithm 5 lines 10–46).
fn run_join(
    rp: &RTree<PoiId>,
    ri: &RTree<u32>,
    query_pois: &[PoiId],
    k: usize,
    fine_check: &mut dyn FnMut(u32, &Mbr) -> bool,
    presence: &mut dyn FnMut(u32, PoiId) -> f64,
    counters: &mut JoinCounters,
) -> Vec<(PoiId, f64)> {
    let mut result: Vec<(PoiId, f64)> = Vec::new();
    if !ri.is_empty() && !rp.is_empty() {
        let mut queue: BinaryHeap<Item> = BinaryHeap::new();
        let ri_roots = ri.root_entries();
        counters.nodes_visited += 2; // both roots
        for e_p in rp.root_entries() {
            push_filtered(&mut queue, rp, ri, e_p, &ri_roots, fine_check, counters);
        }
        while let Some(item) = queue.pop() {
            counters.queue_pops += 1;
            if item.exact {
                // The exact flow dominates every remaining upper bound:
                // emit (lines 22–25).
                // Exact items carry their POI by construction; a bare
                // one is dropped, not panicked on.
                let Some(poi) = item.poi else { continue };
                result.push((poi, item.ub));
                if result.len() == k {
                    break;
                }
                continue;
            }
            let list_is_leaf = ri.is_leaf_entry(item.list[0]);
            if rp.is_leaf_entry(item.e_p) {
                let poi = *rp.item(item.e_p);
                if list_is_leaf {
                    // Exact flow: integrate every object in the join list
                    // (lines 27–33).
                    counters.exact_resolved += 1;
                    let mut flow = 0.0;
                    for &e_i in &item.list {
                        flow += presence(*ri.item(e_i), poi);
                    }
                    if flow > 0.0 {
                        queue.push(Item {
                            ub: flow,
                            exact: true,
                            e_p: item.e_p,
                            list: Vec::new(),
                            poi: Some(poi),
                        });
                        counters.queue_pushes += 1;
                    }
                } else {
                    // expandList (Algorithm 3): descend the R_I side.
                    counters.nodes_visited += item.list.len();
                    let children: Vec<EntryRef> =
                        item.list.iter().flat_map(|&e| ri.children(e)).collect();
                    push_filtered(&mut queue, rp, ri, item.e_p, &children, fine_check, counters);
                }
            } else if list_is_leaf {
                // Descend the POI side against the resolved object leaves
                // (lines 36–45).
                counters.nodes_visited += 1;
                for e_p2 in rp.children(item.e_p) {
                    push_filtered(&mut queue, rp, ri, e_p2, &item.list, fine_check, counters);
                }
            } else {
                // Both sides coarse: descend both (lines 46–48).
                counters.nodes_visited += 1 + item.list.len();
                let children: Vec<EntryRef> =
                    item.list.iter().flat_map(|&e| ri.children(e)).collect();
                for e_p2 in rp.children(item.e_p) {
                    push_filtered(&mut queue, rp, ri, e_p2, &children, fine_check, counters);
                }
            }
        }
    }
    // Queries can legitimately have fewer than k POIs with positive flow;
    // pad deterministically with zero-flow POIs in id order, mirroring the
    // iterative algorithms' ranking.
    if result.len() < k {
        let mut rest: Vec<PoiId> = query_pois
            .iter()
            .copied()
            .filter(|p| !result.iter().any(|&(rp_id, _)| rp_id == *p))
            .collect();
        rest.sort_unstable();
        for p in rest {
            if result.len() == k {
                break;
            }
            result.push((p, 0.0));
        }
    }
    result
}

/// Filters `candidates` down to those overlapping `e_p`'s MBR (with the
/// finer small-MBR check for leaf entries), sums their counts into the
/// upper-bound flow, and enqueues the pairing when non-empty.
fn push_filtered(
    queue: &mut BinaryHeap<Item>,
    rp: &RTree<PoiId>,
    ri: &RTree<u32>,
    e_p: EntryRef,
    candidates: &[EntryRef],
    fine_check: &mut dyn FnMut(u32, &Mbr) -> bool,
    counters: &mut JoinCounters,
) {
    let mbr_p = rp.entry_mbr(e_p);
    let mut ub = 0.0;
    let mut list = Vec::new();
    for &e_i in candidates {
        if !ri.entry_mbr(e_i).intersects(&mbr_p) {
            continue;
        }
        if ri.is_leaf_entry(e_i) && !fine_check(*ri.item(e_i), &mbr_p) {
            continue;
        }
        ub += ri.entry_count(e_i) as f64;
        list.push(e_i);
    }
    if !list.is_empty() {
        queue.push(Item { ub, exact: false, e_p, list, poi: None });
        counters.queue_pushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::FlowAnalytics;
    use crate::query::SnapshotQuery;
    use inflow_geometry::{Point, Polygon};
    use inflow_indoor::{CellKind, FloorPlanBuilder};
    use inflow_tracking::{ObjectTrackingTable, OttRow};
    use inflow_uncertainty::{IndoorContext, UrConfig};
    use std::sync::Arc;

    /// A 100×100 hall with a 5×5 grid of POIs and one reader per POI;
    /// big enough that both R-trees have internal levels (25 POIs,
    /// up to 60 objects) so the join exercises every descent branch.
    fn grid_world(objects_per_device: &[(u32, usize)]) -> (FlowAnalytics, Vec<PoiId>) {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        );
        let mut pois = Vec::new();
        let mut devices = Vec::new();
        for j in 0..5 {
            for i in 0..5 {
                let cx = 10.0 + i as f64 * 20.0;
                let cy = 10.0 + j as f64 * 20.0;
                devices.push(b.add_device(format!("dev-{i}-{j}"), Point::new(cx, cy), 2.0));
                pois.push(b.add_poi(
                    format!("poi-{i}-{j}"),
                    Polygon::rectangle(
                        Point::new(cx - 5.0, cy - 5.0),
                        Point::new(cx + 5.0, cy + 5.0),
                    ),
                ));
            }
        }
        let mut rows = Vec::new();
        let mut next_object = 0u32;
        for &(dev_idx, count) in objects_per_device {
            for _ in 0..count {
                rows.push(OttRow {
                    object: inflow_tracking::ObjectId(next_object),
                    device: devices[dev_idx as usize],
                    ts: 0.0,
                    te: 100.0,
                });
                next_object += 1;
            }
        }
        let ott = ObjectTrackingTable::from_rows(rows).unwrap();
        let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));
        let fa = FlowAnalytics::new(ctx, ott, UrConfig { vmax: 1.1, ..UrConfig::default() });
        (fa, pois)
    }

    #[test]
    fn join_finds_the_dominant_poi_with_deep_trees() {
        // 40 objects at device 12 (the centre POI), a few elsewhere.
        let (fa, pois) = grid_world(&[(12, 40), (0, 3), (24, 2)]);
        let q = SnapshotQuery::new(50.0, pois.clone(), 3);
        let result = snapshot(&fa, &q, &JoinConfig::default());
        assert_eq!(result.ranked[0].0, pois[12]);
        assert!(result.ranked[0].1 > result.ranked[1].1);
        // Matches the iterative computation exactly.
        let iterative = crate::iterative::snapshot(&fa, &q);
        assert_eq!(result.poi_ids(), iterative.poi_ids());
        for (a, b) in result.ranked.iter().zip(&iterative.ranked) {
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn early_termination_skips_low_bound_pois() {
        // One hot POI and k=1: the join should resolve far fewer POIs than
        // the iterative pass, which integrates every object-POI pair.
        let (fa, pois) = grid_world(&[(12, 30), (0, 1), (6, 1), (18, 1), (24, 1)]);
        let q = SnapshotQuery::new(50.0, pois, 1);
        let join = snapshot(&fa, &q, &JoinConfig::default());
        let iterative = crate::iterative::snapshot(&fa, &q);
        assert_eq!(join.ranked[0].0, iterative.ranked[0].0);
        assert!(
            join.stats.presence_evaluations < iterative.stats.presence_evaluations,
            "join {} should beat iterative {}",
            join.stats.presence_evaluations,
            iterative.stats.presence_evaluations
        );
    }

    #[test]
    fn padding_fills_result_when_flows_are_scarce() {
        // Only two devices see anyone; k=5 forces three zero-flow pads in
        // ascending POI-id order.
        let (fa, pois) = grid_world(&[(3, 2), (7, 1)]);
        let q = SnapshotQuery::new(50.0, pois.clone(), 5);
        let result = snapshot(&fa, &q, &JoinConfig::default());
        assert_eq!(result.ranked.len(), 5);
        let positive = result.ranked.iter().filter(|&&(_, f)| f > 0.0).count();
        assert_eq!(positive, 2, "{:?}", result.ranked);
        // Pads are sorted by id among the zero flows.
        let zero_ids: Vec<PoiId> =
            result.ranked.iter().filter(|&&(_, f)| f == 0.0).map(|&(p, _)| p).collect();
        let mut sorted = zero_ids.clone();
        sorted.sort_unstable();
        assert_eq!(zero_ids, sorted);
    }

    #[test]
    fn empty_object_population_pads_everything() {
        let (fa, pois) = grid_world(&[]);
        let q = SnapshotQuery::new(50.0, pois, 4);
        let result = snapshot(&fa, &q, &JoinConfig::default());
        assert_eq!(result.ranked.len(), 4);
        assert!(result.ranked.iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn k_equals_poi_count_resolves_all() {
        let (fa, pois) = grid_world(&[(12, 5), (0, 5), (24, 5)]);
        let n = pois.len();
        let q = SnapshotQuery::new(50.0, pois, n);
        let result = snapshot(&fa, &q, &JoinConfig::default());
        assert_eq!(result.ranked.len(), n);
        let iterative = crate::iterative::snapshot(&fa, &q);
        assert_eq!(result.poi_ids(), iterative.poi_ids());
    }
}
