//! Duration-threshold counting — "how many objects stayed ≥ d".
//!
//! Afshani et al. (arXiv 2601.09489) motivate counting objects by *visit
//! duration* rather than mere presence. On the uncertain symbolic
//! substrate the natural analogue is **expected dwell**: for one object
//! and one POI, `dwell(o, p) = ∫_{ts}^{te} presence_o(p, t) dt` — the
//! expected amount of time the object spends inside the POI over the
//! query window. A long-visit query then counts, per POI, the objects
//! whose expected dwell reaches a threshold `d`, and ranks POIs by that
//! count.
//!
//! The integral is evaluated piecewise: an object's presence is smooth
//! between its tracking-record boundaries (the uncertainty-region shape
//! only changes character when the active record or the pre/suc record
//! pair changes), so the window is cut at every record boundary and each
//! piece integrated with a fixed [`DWELL_SAMPLES`]-point midpoint rule
//! over snapshot presences — the exact same per-sample primitive
//! ([`crate::contrib::snapshot_object_contrib`]) the paper's snapshot
//! algorithms use.
//!
//! Determinism contract: [`object_dwell`] is shared verbatim by the
//! batch path and the incremental serving engine, the per-POI threshold
//! count accumulates integer increments in ascending object-id order,
//! and the piece/sample loops are fixed — so streamed long-visit answers
//! are bit-identical to batch recomputation over the same rows.

use crate::analytics::FlowAnalytics;
use crate::contrib;
use crate::query::{rank_topk, DataQuality, QueryStats};
use inflow_indoor::PoiId;
use inflow_obs::{Counter, Recorder};
use inflow_rtree::RTree;
use inflow_tracking::{ObjectId, ObjectTrackingTable, Timestamp};
use inflow_uncertainty::UrEngine;
use std::collections::HashMap;

/// Midpoint-rule samples per inter-boundary piece of the dwell integral.
/// Fixed (not adaptive) so the float evaluation order — and therefore
/// stream-vs-batch equality — never depends on data-dependent branching.
pub const DWELL_SAMPLES: usize = 4;

/// One object's expected dwell per POI over `[ts, te]`:
/// `∫ presence(t) dt`, integrated piecewise at the object's record
/// boundaries with a fixed midpoint rule. Entries are sorted by POI id
/// and only positive dwells are kept. This is the shared batch/engine
/// recompute primitive for long-visit subscriptions.
pub fn object_dwell(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    object: ObjectId,
    ts: Timestamp,
    te: Timestamp,
    rp: &RTree<PoiId>,
) -> Vec<(PoiId, f64)> {
    let mut stats = QueryStats::default();
    object_dwell_stats(engine, ott, object, ts, te, rp, &mut Recorder::disabled(), &mut stats)
}

/// [`object_dwell`] with observability: bumps `stats`/`rec` for every
/// NaN-safe strict "greater than": false when either operand is NaN,
/// so degenerate or poisoned bounds take the empty/skip path instead of
/// feeding NaN into the quadrature.
fn gt(a: f64, b: f64) -> bool {
    !a.is_nan() && !b.is_nan() && a.total_cmp(&b) == std::cmp::Ordering::Greater
}

/// underlying UR derivation and presence integration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn object_dwell_stats(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    object: ObjectId,
    ts: Timestamp,
    te: Timestamp,
    rp: &RTree<PoiId>,
    rec: &mut Recorder,
    stats: &mut QueryStats,
) -> Vec<(PoiId, f64)> {
    if !gt(te, ts) {
        return Vec::new();
    }
    let mut dwell: HashMap<PoiId, f64> = HashMap::new();
    integrate_segment(engine, ott, object, ts, te, rp, rec, stats, &mut dwell);
    finalize_dwell(dwell)
}

/// Integrates `∫ presence dt` over `[a, b]`, cutting at every record
/// boundary strictly inside the segment and folding `presence·step`
/// into `sums` per POI in ascending-time piece order. This is the
/// shared quadrature core of the batch recompute and the incremental
/// serving cache: splitting a window into consecutive segments at cut
/// points of the full decomposition and folding each in turn produces
/// the exact same left fold — bit-identical sums — as one pass over the
/// whole window.
#[allow(clippy::too_many_arguments)]
fn integrate_segment(
    engine: &UrEngine,
    ott: &ObjectTrackingTable,
    object: ObjectId,
    a: Timestamp,
    b: Timestamp,
    rp: &RTree<PoiId>,
    rec: &mut Recorder,
    stats: &mut QueryStats,
    sums: &mut HashMap<PoiId, f64>,
) {
    if !gt(b, a) {
        return;
    }
    // Cut the segment at every record boundary that falls strictly
    // inside it: presence is smooth between cuts, so a fixed-order
    // quadrature per piece converges cleanly.
    let mut cuts: Vec<Timestamp> = Vec::with_capacity(2 + 2 * ott.object_records(object).len());
    cuts.push(a);
    for &rid in ott.object_records(object) {
        let r = ott.record(rid);
        for t in [r.ts, r.te] {
            if t > a && t < b {
                cuts.push(t);
            }
        }
    }
    cuts.push(b);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();

    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let step = (b - a) / DWELL_SAMPLES as f64;
        if !gt(step, 0.0) {
            continue;
        }
        for s in 0..DWELL_SAMPLES {
            let t = a + (s as f64 + 0.5) * step;
            let Some(state) = ott.state_at(object, t) else { continue };
            let contribs = contrib::snapshot_object_contrib(engine, ott, state, t, rp, rec, stats);
            for (poi, presence) in contribs {
                *sums.entry(poi).or_insert(0.0) += presence * step;
            }
        }
    }
}

/// The shared dwell post-processing: keep positive entries, sorted by
/// POI id.
fn finalize_dwell(dwell: HashMap<PoiId, f64>) -> Vec<(PoiId, f64)> {
    let mut out: Vec<(PoiId, f64)> = dwell.into_iter().filter(|&(_, d)| d > 0.0).collect();
    out.sort_by_key(|&(p, _)| p);
    out
}

/// Incremental dwell-integration state for one (subscription, object)
/// pair in the serving engine.
///
/// A full [`object_dwell`] costs O(records in window) per call, which
/// under a sustained stream makes a long-visit subscription's per-delta
/// recompute quadratic in stream length — enough to stall ingest. The
/// fix leans on the uncertainty model's locality: presence at `t`
/// depends only on the record covering `t` or the `pre`/`suc` pair
/// around it ([`inflow_tracking::ObjectState`]), and a tracker stream
/// only ever appends rows or grows the open last record's `te` — both
/// of which leave presence **before the last record's start**
/// untouched. Everything before `last.ts` is therefore permanently
/// settled: the state caches the per-POI left-fold of the quadrature up
/// to that frontier and re-integrates only the short tail
/// `[frontier, te]` on each recompute, making the per-delta cost O(1)
/// in stream length.
///
/// Bit-identity with the batch path holds because the frontier is
/// always a record-boundary cut of the full decomposition (`last.ts`
/// never changes once a row exists) and pieces are folded in the same
/// ascending-time order — the cached prefix is literally the partial
/// sum [`object_dwell`] would hold after its first pieces. The caller
/// must [`reset`](DwellState::reset) the state whenever the object's
/// rows change other than by appending/extending (repair rewrites
/// history; the serving engine checks row prefixes on every delta).
#[derive(Debug, Clone, Default)]
pub struct DwellState {
    /// Per-POI partial sums over the settled prefix `[ts, frontier]`.
    sums: HashMap<PoiId, f64>,
    /// End of the settled prefix; `None` until the first recompute.
    frontier: Option<Timestamp>,
}

impl DwellState {
    /// Drops the cached prefix; the next recompute is a full pass. Call
    /// when the object's rows changed other than by appending.
    pub fn reset(&mut self) {
        self.sums.clear();
        self.frontier = None;
    }

    /// The object's dwell vector over `[ts, te]` — the same value
    /// [`object_dwell`] returns on the same table, amortized O(tail)
    /// per call instead of O(window).
    pub fn recompute(
        &mut self,
        engine: &UrEngine,
        ott: &ObjectTrackingTable,
        object: ObjectId,
        ts: Timestamp,
        te: Timestamp,
        rp: &RTree<PoiId>,
    ) -> Vec<(PoiId, f64)> {
        if !gt(te, ts) {
            return Vec::new();
        }
        let mut stats = QueryStats::default();
        let mut rec = Recorder::disabled();
        let start = *self.frontier.get_or_insert(ts);
        // The settled prefix ends at the last record's *start*: its `te`
        // may still grow as the tracker merges readings into the open
        // record, and the un-tracked region beyond it flips to a gap
        // when the next record arrives.
        let settled = ott
            .object_records(object)
            .last()
            .map(|&rid| ott.record(rid).ts)
            .unwrap_or(ts)
            .clamp(start, te);
        integrate_segment(
            engine,
            ott,
            object,
            start,
            settled,
            rp,
            &mut rec,
            &mut stats,
            &mut self.sums,
        );
        self.frontier = Some(settled);
        let mut sums = self.sums.clone();
        integrate_segment(engine, ott, object, settled, te, rp, &mut rec, &mut stats, &mut sums);
        finalize_dwell(sums)
    }
}

/// A top-k long-visit query: rank POIs by the number of objects whose
/// expected dwell within `[ts, te]` reaches `d`.
#[derive(Debug, Clone)]
pub struct LongVisitQuery {
    pub ts: Timestamp,
    pub te: Timestamp,
    /// Dwell threshold (same time unit as the tracking data).
    pub d: f64,
    /// The query POI set `P`.
    pub pois: Vec<PoiId>,
    /// Result size `k` (`0 < k ≤ |P|`).
    pub k: usize,
}

impl LongVisitQuery {
    pub fn new(ts: Timestamp, te: Timestamp, d: f64, pois: Vec<PoiId>, k: usize) -> LongVisitQuery {
        assert!(!pois.is_empty(), "query POI set must be non-empty");
        assert!(ts <= te, "query interval must be ordered");
        assert!(d >= 0.0 && d.is_finite(), "dwell threshold must be finite and non-negative");
        let k = k.clamp(1, pois.len());
        LongVisitQuery { ts, te, d, pois, k }
    }
}

/// A long-visit query answer.
#[derive(Debug, Clone)]
pub struct LongVisitResult {
    /// Top-k POIs by qualifying-object count, descending (ties by
    /// ascending id). Values are integral counts carried as `f64` for
    /// ranked-answer uniformity with the flow queries.
    pub ranked: Vec<(PoiId, f64)>,
    /// Every query POI's qualifying-object count, in query POI-set order.
    pub counts: Vec<(PoiId, f64)>,
    pub stats: QueryStats,
    pub quality: DataQuality,
}

/// Counts, per query POI, the objects whose expected dwell within
/// `[ts, te]` is at least `q.d`, walking interval candidates in
/// ascending object-id order (the serving engine's order).
pub fn longvisit_counts(fa: &FlowAnalytics, q: &LongVisitQuery) -> LongVisitResult {
    let mut rec = fa.recorder();
    rec.add(Counter::LongVisitQueries, 1);
    let root = rec.enter("longvisit");
    let span = rec.enter("build_poi_rtree");
    let rp = fa.build_poi_rtree(&q.pois);
    rec.exit(span);
    let mut stats = QueryStats::default();
    let mut counts: HashMap<PoiId, f64> = q.pois.iter().map(|&p| (p, 0.0)).collect();

    let span = rec.enter("candidate_retrieval");
    let candidates = fa.interval_candidates(q.ts, q.te);
    rec.exit(span);

    let span = rec.enter("integrate_dwell");
    for object in candidates {
        stats.objects_considered += 1;
        let dwell = object_dwell_stats(
            fa.engine(),
            fa.ott(),
            object,
            q.ts,
            q.te,
            &rp,
            &mut rec,
            &mut stats,
        );
        for (poi, dw) in dwell {
            stats.accumulated_flow_mass += dw;
            if fa.is_repaired(object) {
                stats.repaired_flow_mass += dw;
            }
            if dw >= q.d {
                if let Some(c) = counts.get_mut(&poi) {
                    *c += 1.0;
                }
            }
        }
    }
    rec.exit(span);

    let span = rec.enter("rank");
    let scores: Vec<(PoiId, f64)> =
        q.pois.iter().map(|&p| (p, counts.get(&p).copied().unwrap_or(0.0))).collect();
    let ranked = rank_topk(scores.clone(), q.k);
    rec.exit(span);
    rec.exit(root);
    let quality = fa.quality(&stats);
    LongVisitResult { ranked, counts: scores, stats, quality }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::{Point, Polygon};
    use inflow_indoor::{CellKind, FloorPlanBuilder};
    use inflow_tracking::OttRow;
    use inflow_uncertainty::{IndoorContext, UrConfig};
    use std::sync::Arc;

    /// The incremental serving cache must reproduce the batch integral
    /// bit-for-bit at every step of a tracker-like row evolution:
    /// records appended one at a time, each first arriving as a short
    /// open record whose `te` then grows (the tracker's merge).
    #[test]
    fn incremental_dwell_is_bit_identical_to_batch_under_appends() {
        // A 60×20 hall with three reader-covered POIs in a row; one
        // object walks past all three readers.
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(60.0, 20.0)),
        );
        let mut pois = Vec::new();
        let mut devices = Vec::new();
        for i in 0..3 {
            let cx = 10.0 + i as f64 * 20.0;
            devices.push(b.add_device(format!("dev-{i}"), Point::new(cx, 10.0), 2.0));
            pois.push(b.add_poi(
                format!("poi-{i}"),
                Polygon::rectangle(Point::new(cx - 5.0, 5.0), Point::new(cx + 5.0, 15.0)),
            ));
        }
        let object = ObjectId(7);
        let full_rows: Vec<OttRow> = vec![
            OttRow { object, device: devices[0], ts: 0.0, te: 10.0 },
            OttRow { object, device: devices[1], ts: 18.0, te: 31.0 },
            OttRow { object, device: devices[2], ts: 44.0, te: 52.0 },
        ];
        let ott = ObjectTrackingTable::from_rows(full_rows.clone()).unwrap();
        let ctx = Arc::new(IndoorContext::new(b.build().unwrap()));
        let fa = FlowAnalytics::new(ctx, ott, UrConfig { vmax: 2.0, ..UrConfig::default() });
        let rp = fa.build_poi_rtree(&pois);
        let (ts, te) = (0.0, 60.0);

        let mut state = DwellState::default();
        let mut steps = 0usize;
        for i in 1..=full_rows.len() {
            // The i-th record first appears as a half-open stub, then
            // extends to its final te — exactly how the online tracker
            // grows an open record as readings arrive.
            let mut stub = full_rows[..i].to_vec();
            let last = stub.last_mut().unwrap();
            last.te = last.ts + (last.te - last.ts) / 2.0;
            for rows in [stub, full_rows[..i].to_vec()] {
                let ott = ObjectTrackingTable::from_rows(rows).unwrap();
                let batch = object_dwell(fa.engine(), &ott, object, ts, te, &rp);
                let incr = state.recompute(fa.engine(), &ott, object, ts, te, &rp);
                assert_eq!(incr, batch, "step {steps}: incremental != batch");
                assert!(!batch.is_empty(), "step {steps}: fixture should dwell somewhere");
                steps += 1;
            }
        }

        // History rewritten (repair moved a middle record): after a
        // reset the state must agree with batch again from scratch.
        let mut rewritten = full_rows.clone();
        rewritten[1].ts = 20.0;
        rewritten[1].te = 29.0;
        let ott = ObjectTrackingTable::from_rows(rewritten).unwrap();
        state.reset();
        let batch = object_dwell(fa.engine(), &ott, object, ts, te, &rp);
        let incr = state.recompute(fa.engine(), &ott, object, ts, te, &rp);
        assert_eq!(incr, batch, "post-reset incremental != batch");
    }
}
