//! Always-on flight recorder: a fixed-size lock-free ring of recent
//! pipeline events.
//!
//! The serving stack records one [`FlightEvent`] per interesting
//! transition (reading applied, delta emitted, notification sent, shard
//! crash, …) into a power-of-two ring of seqlock-style slots. Recording
//! never blocks and never allocates: one `fetch_add` claims a slot,
//! then five plain atomic stores fill it. When the server panics, a
//! shard crashes, or a client sends the `FLIGHT` verb, the ring is
//! dumped as JSONL — newest ~N events, oldest first — so postmortems
//! can see what the pipeline was doing in the seconds before the end.
//!
//! Torn reads are handled the seqlock way: each slot carries the event
//! sequence number, written *last* with release ordering; the dumper
//! reads the sequence before and after the payload and drops the slot
//! if a concurrent writer raced it. All fields are atomics, so a race
//! is a skipped event, never undefined behavior.

use crate::trace::TraceClock;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. The `a`/`b` payload fields are event-specific; see
/// each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightEventKind {
    /// Router accepted a PUBLISH batch. `a` = connection id, `b` =
    /// readings in the batch.
    PublishRouted,
    /// Shard worker applied a reading. `a` = shard, `b` = object id.
    ReadingApplied,
    /// Shard tracker rejected a reading. `a` = shard, `b` = object id.
    ReadingRejected,
    /// Shard emitted a delta batch. `a` = shard, `b` = objects in batch.
    DeltaEmitted,
    /// Engine applied a delta batch. `a` = shard, `b` = objects.
    DeltaApplied,
    /// Engine pushed a notification. `a` = subscription id, `b` = seq.
    NotifySent,
    /// Engine suppressed a notification (ε gate). `a` = subscription id.
    NotifySuppressed,
    /// Subscription registered. `a` = subscription id, `b` = conn id.
    Subscribed,
    /// Subscription dropped. `a` = subscription id.
    Unsubscribed,
    /// One-shot query answered. `a` = connection id.
    OneShotQuery,
    /// Barrier completed. `a` = connection id.
    Barrier,
    /// Shard worker crashed (injected or real). `a` = shard.
    ShardCrash,
    /// Shard worker restarted after a crash. `a` = shard.
    ShardRestart,
    /// Metrics snapshot served. `a` = connection id.
    MetricsQuery,
    /// Trace snapshot served. `a` = connection id.
    TraceQuery,
    /// Flight-recorder dump served. `a` = connection id.
    FlightDump,
    /// Connection opened. `a` = connection id.
    ConnOpened,
    /// Connection closed. `a` = connection id.
    ConnClosed,
    /// PUBLISH refused with an `OVERLOADED` backpressure frame. `a` =
    /// connection id, `b` = deepest shard queue depth at refusal.
    Overloaded,
    /// Connection refused at accept time (server at its connection
    /// bound). `a` = concurrent connections at refusal.
    ConnRejected,
    /// Barrier state digest served (`STATE_HASH`). `a` = connection id,
    /// `b` = combined engine hash.
    StateHash,
    /// Subscription re-registered with a resume section. `a` = new
    /// subscription id, `b` = resumed-from sequence number.
    SubResumed,
    /// Replay harness detected a per-barrier hash divergence. `a` =
    /// barrier index, `b` = count of mismatched shards.
    ReplayDivergence,
    /// Shard store ran a compaction pass that changed the manifest.
    /// `a` = shard, `b` = segments sealed in the pass.
    CompactionRun,
    /// Shard store completed a background scrub pass. `a` = shard,
    /// `b` = segments checked.
    ScrubPass,
    /// A segment was quarantined (scrub or read-time verification).
    /// `a` = shard, `b` = rows now excluded from answers.
    SegmentQuarantined,
    /// A one-shot DISTRIB request was answered. `b` = connection id.
    /// Appended after the storage kinds so earlier postmortem codes stay
    /// stable (codes are positional).
    DistribQuery,
}

impl FlightEventKind {
    pub const ALL: [FlightEventKind; 27] = [
        FlightEventKind::PublishRouted,
        FlightEventKind::ReadingApplied,
        FlightEventKind::ReadingRejected,
        FlightEventKind::DeltaEmitted,
        FlightEventKind::DeltaApplied,
        FlightEventKind::NotifySent,
        FlightEventKind::NotifySuppressed,
        FlightEventKind::Subscribed,
        FlightEventKind::Unsubscribed,
        FlightEventKind::OneShotQuery,
        FlightEventKind::Barrier,
        FlightEventKind::ShardCrash,
        FlightEventKind::ShardRestart,
        FlightEventKind::MetricsQuery,
        FlightEventKind::TraceQuery,
        FlightEventKind::FlightDump,
        FlightEventKind::ConnOpened,
        FlightEventKind::ConnClosed,
        FlightEventKind::Overloaded,
        FlightEventKind::ConnRejected,
        FlightEventKind::StateHash,
        FlightEventKind::SubResumed,
        FlightEventKind::ReplayDivergence,
        FlightEventKind::CompactionRun,
        FlightEventKind::ScrubPass,
        FlightEventKind::SegmentQuarantined,
        FlightEventKind::DistribQuery,
    ];

    /// Stable snake_case name used in JSONL postmortems.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::PublishRouted => "publish_routed",
            FlightEventKind::ReadingApplied => "reading_applied",
            FlightEventKind::ReadingRejected => "reading_rejected",
            FlightEventKind::DeltaEmitted => "delta_emitted",
            FlightEventKind::DeltaApplied => "delta_applied",
            FlightEventKind::NotifySent => "notify_sent",
            FlightEventKind::NotifySuppressed => "notify_suppressed",
            FlightEventKind::Subscribed => "subscribed",
            FlightEventKind::Unsubscribed => "unsubscribed",
            FlightEventKind::OneShotQuery => "one_shot_query",
            FlightEventKind::Barrier => "barrier",
            FlightEventKind::ShardCrash => "shard_crash",
            FlightEventKind::ShardRestart => "shard_restart",
            FlightEventKind::MetricsQuery => "metrics_query",
            FlightEventKind::TraceQuery => "trace_query",
            FlightEventKind::FlightDump => "flight_dump",
            FlightEventKind::ConnOpened => "conn_opened",
            FlightEventKind::ConnClosed => "conn_closed",
            FlightEventKind::Overloaded => "overloaded",
            FlightEventKind::ConnRejected => "conn_rejected",
            FlightEventKind::StateHash => "state_hash",
            FlightEventKind::SubResumed => "sub_resumed",
            FlightEventKind::ReplayDivergence => "replay_divergence",
            FlightEventKind::CompactionRun => "compaction_run",
            FlightEventKind::ScrubPass => "scrub_pass",
            FlightEventKind::SegmentQuarantined => "segment_quarantined",
            FlightEventKind::DistribQuery => "distrib_query",
        }
    }

    fn code(self) -> u64 {
        FlightEventKind::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    fn from_code(code: u64) -> Option<FlightEventKind> {
        FlightEventKind::ALL.get(code as usize).copied()
    }
}

/// A decoded ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global event number, 1-based, monotonically increasing.
    pub seq: u64,
    /// Nanoseconds since the recorder's [`TraceClock`] epoch.
    pub at_ns: u64,
    pub kind: FlightEventKind,
    /// Trace id of the originating PUBLISH batch, or 0.
    pub trace_id: u64,
    /// Event-specific (see [`FlightEventKind`]).
    pub a: u64,
    /// Event-specific (see [`FlightEventKind`]).
    pub b: u64,
}

impl FlightEvent {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_ns\":{},\"event\":\"{}\",\"trace_id\":{},\"a\":{},\"b\":{}}}",
            self.seq,
            self.at_ns,
            self.kind.name(),
            self.trace_id,
            self.a,
            self.b
        )
    }
}

/// Slot sequence value meaning "a writer is mid-update".
const WRITING: u64 = u64::MAX;

#[derive(Debug)]
struct Slot {
    /// 0 = never written, `WRITING` = in flux, else the event's `seq`.
    seq: AtomicU64,
    at_ns: AtomicU64,
    kind: AtomicU64,
    trace_id: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Fixed-size lock-free ring of recent pipeline events.
///
/// Writers from any thread; readers (dumpers) from any thread; no
/// locks anywhere. Capacity is rounded up to a power of two. Overhead
/// per event is one `fetch_add` plus five relaxed stores and one
/// release store — cheap enough to leave on in production, which is
/// the point of a flight recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    clock: TraceClock,
    next: AtomicU64,
    mask: usize,
    slots: Vec<Slot>,
}

impl FlightRecorder {
    /// `capacity` is rounded up to the next power of two (min 8).
    pub fn new(clock: TraceClock, capacity: usize) -> FlightRecorder {
        let cap = capacity.max(8).next_power_of_two();
        FlightRecorder {
            clock,
            next: AtomicU64::new(0),
            mask: cap - 1,
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Total events ever recorded (not just those still in the ring).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// The clock events are stamped with (shared with the trace layer).
    pub fn clock(&self) -> &TraceClock {
        &self.clock
    }

    /// Record one event. Lock-free, allocation-free, any thread.
    pub fn record(&self, kind: FlightEventKind, trace_id: u64, a: u64, b: u64) {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let seq = n + 1; // 1-based so 0 means "empty slot"
        let Some(slot) = self.slots.get((n as usize) & self.mask) else {
            return;
        };
        slot.seq.store(WRITING, Ordering::Release);
        slot.at_ns.store(self.clock.now_ns(), Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Snapshot the ring: surviving events, oldest first. Slots being
    /// overwritten while we read are dropped (seqlock validation), so
    /// a dump taken under load may briefly hold fewer than `capacity`
    /// events.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 == WRITING {
                continue;
            }
            let at_ns = slot.at_ns.load(Ordering::Acquire);
            let kind = slot.kind.load(Ordering::Acquire);
            let trace_id = slot.trace_id.load(Ordering::Acquire);
            let a = slot.a.load(Ordering::Acquire);
            let b = slot.b.load(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // torn: a writer lapped us mid-read
            }
            let Some(kind) = FlightEventKind::from_code(kind) else {
                continue;
            };
            out.push(FlightEvent { seq: s1, at_ns, kind, trace_id, a, b });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// JSONL postmortem: one event per line, oldest first, trailing
    /// newline after the last line.
    pub fn dump_jsonl(&self) -> String {
        let events = self.events();
        let mut s = String::with_capacity(events.len() * 96);
        for e in &events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn kind_codes_round_trip() {
        for &k in &FlightEventKind::ALL {
            assert_eq!(FlightEventKind::from_code(k.code()), Some(k));
        }
        assert_eq!(FlightEventKind::from_code(9999), None);
    }

    #[test]
    fn ring_keeps_newest_events() {
        let rec = FlightRecorder::new(TraceClock::new(), 8);
        assert_eq!(rec.capacity(), 8);
        for i in 0..20u64 {
            rec.record(FlightEventKind::ReadingApplied, i, 0, i);
        }
        let events = rec.events();
        assert_eq!(events.len(), 8);
        assert_eq!(rec.recorded(), 20);
        // Oldest-first, and only the last 8 survive (seqs 13..=20).
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<u64>>());
        for e in &events {
            assert_eq!(e.kind, FlightEventKind::ReadingApplied);
            assert_eq!(e.trace_id, e.b);
        }
    }

    #[test]
    fn dump_is_one_json_line_per_event() {
        let rec = FlightRecorder::new(TraceClock::new(), 8);
        rec.record(FlightEventKind::ShardCrash, 0, 3, 0);
        rec.record(FlightEventKind::ShardRestart, 0, 3, 0);
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"shard_crash\""), "{}", lines[0]);
        assert!(lines[1].contains("\"event\":\"shard_restart\""), "{}", lines[1]);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        let rec = Arc::new(FlightRecorder::new(TraceClock::new(), 64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    rec.record(FlightEventKind::ReadingApplied, t, t, i);
                    if i % 97 == 0 {
                        // Concurrent dumps must not panic or return junk.
                        for e in rec.events() {
                            assert!(e.seq >= 1);
                            assert!(e.a < 4);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(rec.recorded(), 4000);
        let events = rec.events();
        assert_eq!(events.len(), 64);
        // All surviving events are from the newest window.
        assert!(events.iter().all(|e| e.seq > 4000 - 64 * 2));
    }
}
