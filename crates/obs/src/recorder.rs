//! The per-query recorder: span stack, counters, timers.

use crate::metrics::{Counter, CounterSet, Histogram, Timer};
use crate::profile::{ProfileSpan, QueryProfile, TimerSummary};
use std::time::Instant;

/// Handle returned by [`Recorder::enter`]; pass it back to
/// [`Recorder::exit`]. Exits must be well-nested (LIFO): the recorder
/// debug-asserts that the token being exited is the innermost open span.
#[derive(Debug, Clone, Copy)]
#[must_use = "a span that is never exited reports a zero duration"]
pub struct SpanToken(u32);

/// The disabled-recorder token. Also used as "no open span".
const NONE: u32 = u32::MAX;

/// Handle returned by [`Recorder::start`]; pass it back to
/// [`Recorder::stop`] to observe the elapsed time into the timer's
/// histogram. `None` inside when the recorder is disabled, so the hot
/// path never calls `Instant::now`.
#[derive(Debug, Clone, Copy)]
#[must_use = "a timer that is never stopped observes nothing"]
pub struct TimerToken(Option<Instant>);

#[derive(Debug)]
struct RawSpan {
    name: &'static str,
    parent: u32,
    started: Instant,
    duration_ns: u64,
    closed: bool,
}

#[derive(Debug)]
struct RecorderData {
    spans: Vec<RawSpan>,
    /// Index of the innermost open span, or `NONE` at the root level.
    open: u32,
    counters: CounterSet,
    timers: Vec<Histogram>,
}

/// Per-query observability recorder.
///
/// `Recorder::disabled()` is the default and is designed to vanish: the
/// struct is one niche-optimized pointer, every method starts with a
/// branch on `None`, and no method allocates or reads the clock. The
/// enabled recorder allocates once up front and appends to vectors.
#[derive(Debug, Default)]
pub struct Recorder {
    data: Option<Box<RecorderData>>,
}

impl Recorder {
    /// A recorder that records nothing and costs (almost) nothing.
    pub fn disabled() -> Recorder {
        Recorder { data: None }
    }

    /// A recorder that captures spans, counters and timers.
    pub fn enabled() -> Recorder {
        Recorder {
            data: Some(Box::new(RecorderData {
                spans: Vec::new(),
                open: NONE,
                counters: CounterSet::new(),
                timers: Timer::ALL.iter().map(|_| Histogram::new()).collect(),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.data.is_some()
    }

    /// Opens a named span nested under the currently open span.
    pub fn enter(&mut self, name: &'static str) -> SpanToken {
        match &mut self.data {
            None => SpanToken(NONE),
            Some(d) => {
                let idx = d.spans.len() as u32;
                d.spans.push(RawSpan {
                    name,
                    parent: d.open,
                    started: Instant::now(),
                    duration_ns: 0,
                    closed: false,
                });
                d.open = idx;
                SpanToken(idx)
            }
        }
    }

    /// Closes a span, recording its duration. Spans must close LIFO.
    pub fn exit(&mut self, token: SpanToken) {
        if let Some(d) = &mut self.data {
            debug_assert_eq!(d.open, token.0, "spans must be exited innermost-first");
            if token.0 == NONE {
                return;
            }
            let span = &mut d.spans[token.0 as usize];
            span.duration_ns = span.started.elapsed().as_nanos() as u64;
            span.closed = true;
            d.open = span.parent;
        }
    }

    /// Bumps a counter by `n`.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        if let Some(d) = &mut self.data {
            d.counters.add(counter, n);
        }
    }

    /// Merges a locally accumulated counter set (the pattern for
    /// closures that cannot borrow the recorder mutably).
    pub fn merge_counters(&mut self, set: &CounterSet) {
        if let Some(d) = &mut self.data {
            d.counters.merge(set);
        }
    }

    /// Starts timing one operation for `timer`'s histogram.
    #[inline]
    pub fn start(&mut self, _timer: Timer) -> TimerToken {
        TimerToken(self.data.as_ref().map(|_| Instant::now()))
    }

    /// Records the time elapsed since [`Recorder::start`].
    #[inline]
    pub fn stop(&mut self, timer: Timer, token: TimerToken) {
        if let (Some(d), Some(t0)) = (&mut self.data, token.0) {
            d.timers[timer.index()].observe(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Merges a locally accumulated histogram into `timer`'s slot.
    pub fn merge_timer(&mut self, timer: Timer, hist: &Histogram) {
        if let Some(d) = &mut self.data {
            d.timers[timer.index()].merge(hist);
        }
    }

    /// Freezes the recording into a [`QueryProfile`] (`None` when
    /// disabled). Any spans still open are force-closed at their current
    /// elapsed time so a profile is always well-formed.
    pub fn finish(self) -> Option<QueryProfile> {
        let mut d = *self.data?;
        for span in d.spans.iter_mut().filter(|s| !s.closed) {
            span.duration_ns = span.started.elapsed().as_nanos() as u64;
            span.closed = true;
        }

        // Assemble the forest bottom-up: children were pushed after (and
        // therefore sit at higher indices than) their parents.
        let mut built: Vec<Option<ProfileSpan>> = d
            .spans
            .iter()
            .map(|s| {
                Some(ProfileSpan { name: s.name, duration_ns: s.duration_ns, children: Vec::new() })
            })
            .collect();
        let mut roots = Vec::new();
        for i in (0..d.spans.len()).rev() {
            let mut node = built[i].take().expect("each span taken once");
            // Children were attached highest-index-first; restore entry order.
            node.children.reverse();
            let parent = d.spans[i].parent;
            if parent == NONE {
                roots.push(node);
            } else {
                let siblings =
                    &mut built[parent as usize].as_mut().expect("parent not yet taken").children;
                siblings.push(node);
            }
        }
        roots.reverse();

        let timers = Timer::ALL
            .iter()
            .zip(&d.timers)
            .filter(|(_, h)| h.count() > 0)
            .map(|(&t, h)| TimerSummary {
                name: t.name(),
                count: h.count(),
                total_ns: h.sum_ns(),
                mean_ns: h.mean_ns(),
                p50_ns: h.quantile_ns(0.5),
                p95_ns: h.quantile_ns(0.95),
                max_ns: h.max_ns(),
                buckets: h.nonzero_buckets(),
            })
            .collect();

        Some(QueryProfile { roots, counters: std::mem::take(&mut d.counters), timers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_pointer_sized_and_inert() {
        assert_eq!(
            std::mem::size_of::<Recorder>(),
            std::mem::size_of::<usize>(),
            "Option<Box<_>> must niche-optimize"
        );
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let s = rec.enter("phase");
        rec.add(Counter::PresenceEvaluations, 5);
        let t = rec.start(Timer::Presence);
        rec.stop(Timer::Presence, t);
        rec.exit(s);
        assert!(rec.finish().is_none());
    }

    #[test]
    fn span_tree_structure_follows_nesting() {
        let mut rec = Recorder::enabled();
        let root = rec.enter("root");
        let a = rec.enter("a");
        rec.exit(a);
        let b = rec.enter("b");
        let b1 = rec.enter("b1");
        rec.exit(b1);
        rec.exit(b);
        rec.exit(root);
        let p = rec.finish().unwrap();
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "root");
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(root.children[1].children[0].name, "b1");
    }

    #[test]
    fn child_durations_bounded_by_parent() {
        let mut rec = Recorder::enabled();
        let root = rec.enter("root");
        for _ in 0..3 {
            let c = rec.enter("child");
            std::hint::black_box((0..1000).sum::<u64>());
            rec.exit(c);
        }
        rec.exit(root);
        let p = rec.finish().unwrap();
        let root = &p.roots[0];
        let child_sum: u64 = root.children.iter().map(|c| c.duration_ns).sum();
        assert!(
            child_sum <= root.duration_ns,
            "children {child_sum} ns exceed parent {} ns",
            root.duration_ns
        );
    }

    #[test]
    fn unclosed_spans_are_force_closed() {
        let mut rec = Recorder::enabled();
        let _root = rec.enter("root");
        let _child = rec.enter("child");
        let p = rec.finish().unwrap();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].children.len(), 1);
    }

    #[test]
    fn counters_and_timers_survive_into_profile() {
        let mut rec = Recorder::enabled();
        rec.add(Counter::QueuePushes, 7);
        let mut local = CounterSet::new();
        local.add(Counter::QueuePushes, 3);
        rec.merge_counters(&local);
        let t = rec.start(Timer::UrDerive);
        rec.stop(Timer::UrDerive, t);
        let mut h = Histogram::new();
        h.observe(500);
        rec.merge_timer(Timer::UrDerive, &h);
        let p = rec.finish().unwrap();
        assert_eq!(p.counter("queue_pushes"), 10);
        let timer = p.timers.iter().find(|t| t.name == "ur_derive").unwrap();
        assert_eq!(timer.count, 2);
    }

    #[test]
    fn multiple_roots_form_a_forest() {
        let mut rec = Recorder::enabled();
        let a = rec.enter("first");
        rec.exit(a);
        let b = rec.enter("second");
        rec.exit(b);
        let p = rec.finish().unwrap();
        let names: Vec<_> = p.roots.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
