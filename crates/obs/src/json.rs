//! A minimal JSON value parser for validating telemetry snapshots.
//!
//! The workspace *emits* JSON by hand everywhere ([`QueryProfile::to_json`],
//! the metrics snapshot); this module is the matching read side so
//! `inflow top` and the test suites can reject malformed snapshots
//! instead of grepping substrings. It is deliberately small: full JSON
//! grammar, numbers surfaced as both `f64` and exact `u64`/`i64` when
//! integral (histogram bounds exceed 2^53), no serde, no streaming.
//!
//! [`QueryProfile::to_json`]: crate::QueryProfile::to_json

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Numbers keep the raw literal so integral values round-trip
    /// exactly through `as_u64`/`as_i64` (f64 loses precision > 2^53).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact unsigned integer, if the literal is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Exact signed integer, if the literal is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(m)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(v)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by `\uDC00..\uDFFF`.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c)
                        } else if (0xDC00..0xE000).contains(&cp) {
                            None
                        } else {
                            char::from_u32(cp)
                        };
                        match ch {
                            Some(c) => s.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| self.err("invalid utf-8 in string"))?;
                        s.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_before = self.digits()?;
        if digits_before == 0 {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits()? == 0 {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits()? == 0 {
                return Err(self.err("expected exponent digit"));
            }
        }
        let lit = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        Ok(Json::Num(lit.to_string()))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let mut n = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"s":"x\ny"}"#)
            .expect("valid json");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()), Some(3));
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).and_then(|a| a[1].as_f64()), Some(2.5));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_bool()), Some(true));
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("x\ny"));
    }

    #[test]
    fn big_integers_are_exact() {
        let v = Json::parse("{\"hi\":18446744073709551615}").expect("valid");
        assert_eq!(v.get("hi").and_then(|n| n.as_u64()), Some(u64::MAX));
        // And f64 would have mangled it:
        assert_ne!(v.get("hi").and_then(|n| n.as_f64()).map(|f| f as u64), Some(u64::MAX - 1));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"\\u00e9 \\ud83d\\ude00\"").expect("valid");
        assert_eq!(v.as_str(), Some("é 😀"));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    #[test]
    fn round_trips_profile_like_output() {
        let doc = r#"{"counters":{"presence_evaluations":12},"timers":[{"name":"presence","count":3,"buckets":[{"lo":256,"hi":511,"n":3}]}]}"#;
        let v = Json::parse(doc).expect("valid");
        let timers = v.get("timers").and_then(|t| t.as_arr()).expect("timers");
        assert_eq!(timers[0].get("name").and_then(|n| n.as_str()), Some("presence"));
    }
}
