//! Request-scoped trace context for the serving pipeline.
//!
//! A reading published to `inflow serve` crosses four threads before a
//! subscriber hears about it: the connection reader routes it, a shard
//! worker logs and applies it, the flow engine recomputes subscriptions,
//! and a writer thread pushes the notification. [`TraceChain`] is the
//! breadcrumb that travels with the reading: a trace id plus one
//! nanosecond timestamp per pipeline [`Hop`], all measured on a single
//! server-wide [`TraceClock`] so the differences between consecutive
//! hops are meaningful latency segments.
//!
//! The chain is a `Copy` value of fixed size (no allocation, no `Arc`),
//! so carrying it through channels costs a few machine words per
//! message. Consecutive stamped hops telescope: the named
//! [`TraceChain::segments`] sum exactly to
//! [`TraceChain::total_ns`] when the chain is complete.

use std::time::Instant;

/// One observation point in the serving pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hop {
    /// Connection reader decoded the PUBLISH frame and routed the
    /// reading to a shard queue.
    Router,
    /// Shard worker dequeued the reading.
    ShardDequeue,
    /// Shard WAL append (and fsync, when configured) completed — the
    /// reading is durable.
    WalAppended,
    /// Shard tracker applied the reading; row deltas are known.
    Applied,
    /// Flow engine dequeued the shard's delta batch.
    EngineDequeue,
    /// Engine finished recomputing affected subscription contributions.
    Recomputed,
    /// Notification frame was encoded and handed to the subscriber's
    /// writer queue.
    Notified,
}

/// Names of the latency segments between consecutive hops, in order:
/// `segment[i]` spans `Hop::ALL[i] → Hop::ALL[i + 1]`.
pub const SEGMENTS: [&str; 6] = ["queue", "wal", "apply", "engine_queue", "recompute", "notify"];

impl Hop {
    /// All hops in pipeline order.
    pub const ALL: [Hop; 7] = [
        Hop::Router,
        Hop::ShardDequeue,
        Hop::WalAppended,
        Hop::Applied,
        Hop::EngineDequeue,
        Hop::Recomputed,
        Hop::Notified,
    ];

    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Hop::Router => "router",
            Hop::ShardDequeue => "shard_dequeue",
            Hop::WalAppended => "wal_appended",
            Hop::Applied => "applied",
            Hop::EngineDequeue => "engine_dequeue",
            Hop::Recomputed => "recomputed",
            Hop::Notified => "notified",
        }
    }

    /// Wire code (also the pipeline position).
    pub fn code(self) -> u8 {
        self.index() as u8
    }

    /// Inverse of [`Hop::code`]; `None` for codes a newer peer might
    /// send that this build does not know.
    pub fn from_code(code: u8) -> Option<Hop> {
        Hop::ALL.get(code as usize).copied()
    }

    fn index(self) -> usize {
        match self {
            Hop::Router => 0,
            Hop::ShardDequeue => 1,
            Hop::WalAppended => 2,
            Hop::Applied => 3,
            Hop::EngineDequeue => 4,
            Hop::Recomputed => 5,
            Hop::Notified => 6,
        }
    }
}

/// Monotonic server-epoch clock shared by every pipeline stage.
///
/// All trace timestamps are nanoseconds since this clock's creation
/// (server start), so stamps taken on different threads are directly
/// comparable. Cloning shares the epoch.
#[derive(Debug, Clone)]
pub struct TraceClock {
    epoch: Instant,
}

impl Default for TraceClock {
    fn default() -> TraceClock {
        TraceClock::new()
    }
}

impl TraceClock {
    pub fn new() -> TraceClock {
        TraceClock { epoch: Instant::now() }
    }

    /// Nanoseconds since the server epoch, saturating at `u64::MAX`
    /// (~584 years of uptime).
    pub fn now_ns(&self) -> u64 {
        let d = self.epoch.elapsed();
        d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// A trace id plus per-hop timestamps, carried alongside a reading
/// through the serving pipeline.
///
/// `0` means "not stamped"; the clock starts strictly after epoch so a
/// real stamp is never 0 (and a 0 ns stamp would merely re-stamp).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceChain {
    /// Router-assigned id, unique per PUBLISH batch within one server
    /// process. `0` is reserved for "no trace".
    pub id: u64,
    at_ns: [u64; 7],
}

impl TraceChain {
    pub fn new(id: u64) -> TraceChain {
        TraceChain { id, at_ns: [0; 7] }
    }

    /// Record `at_ns` for `hop`. First stamp wins: a batch that fans
    /// into several deltas keeps the earliest time per stage.
    pub fn stamp(&mut self, hop: Hop, at_ns: u64) {
        if let Some(slot) = self.at_ns.get_mut(hop.index()) {
            if *slot == 0 {
                *slot = at_ns;
            }
        }
    }

    /// Timestamp of `hop`, if stamped.
    pub fn at(&self, hop: Hop) -> Option<u64> {
        match self.at_ns.get(hop.index()) {
            Some(&ns) if ns != 0 => Some(ns),
            _ => None,
        }
    }

    /// Stamped `(hop, at_ns)` pairs in pipeline order.
    pub fn hops(&self) -> impl Iterator<Item = (Hop, u64)> + '_ {
        Hop::ALL.iter().filter_map(move |&h| self.at(h).map(|ns| (h, ns)))
    }

    /// Number of stamped hops.
    pub fn hop_count(&self) -> usize {
        self.at_ns.iter().filter(|&&ns| ns != 0).count()
    }

    /// All seven hops stamped?
    pub fn is_complete(&self) -> bool {
        self.hop_count() == Hop::ALL.len()
    }

    /// Timestamps never decrease along the pipeline (over stamped hops).
    pub fn is_monotone(&self) -> bool {
        let mut prev = 0u64;
        for (_, ns) in self.hops() {
            if ns < prev {
                return false;
            }
            prev = ns;
        }
        true
    }

    /// Named latency segments between consecutive stamped hops.
    ///
    /// Only adjacent pipeline stages produce a segment; if an
    /// intermediate hop is missing (e.g. a reading re-emitted from WAL
    /// recovery) the gap yields nothing rather than a mislabeled span.
    /// For a complete chain the six segments telescope to exactly
    /// [`TraceChain::total_ns`].
    pub fn segments(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        for (i, name) in SEGMENTS.iter().enumerate() {
            let (a, b) = match (Hop::ALL.get(i), Hop::ALL.get(i + 1)) {
                (Some(&a), Some(&b)) => (a, b),
                _ => continue,
            };
            if let (Some(t0), Some(t1)) = (self.at(a), self.at(b)) {
                out.push((*name, t1.saturating_sub(t0)));
            }
        }
        out
    }

    /// End-to-end latency `router → notified`, if both ends stamped.
    pub fn total_ns(&self) -> Option<u64> {
        match (self.at(Hop::Router), self.at(Hop::Notified)) {
            (Some(t0), Some(t1)) => Some(t1.saturating_sub(t0)),
            _ => None,
        }
    }

    /// Merge another chain observed for the same trace id, keeping the
    /// earliest stamp per hop (used when several deltas of one batch
    /// converge on the engine).
    pub fn merge_earliest(&mut self, other: &TraceChain) {
        for (slot, &theirs) in self.at_ns.iter_mut().zip(other.at_ns.iter()) {
            if theirs != 0 && (*slot == 0 || theirs < *slot) {
                *slot = theirs;
            }
        }
    }

    /// Compact JSON object: id, hops with timestamps, segments, total.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"trace_id\":");
        s.push_str(&self.id.to_string());
        s.push_str(",\"hops\":{");
        let mut first = true;
        for (hop, ns) in self.hops() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push('"');
            s.push_str(hop.name());
            s.push_str("\":");
            s.push_str(&ns.to_string());
        }
        s.push_str("},\"segments\":{");
        let mut first = true;
        for (name, ns) in self.segments() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push('"');
            s.push_str(name);
            s.push_str("\":");
            s.push_str(&ns.to_string());
        }
        s.push_str("},\"total_ns\":");
        s.push_str(&self.total_ns().unwrap_or(0).to_string());
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_chain() -> TraceChain {
        let mut c = TraceChain::new(7);
        for (i, &h) in Hop::ALL.iter().enumerate() {
            c.stamp(h, 100 + (i as u64) * 10);
        }
        c
    }

    #[test]
    fn hop_codes_round_trip() {
        for &h in &Hop::ALL {
            assert_eq!(Hop::from_code(h.code()), Some(h));
        }
        assert_eq!(Hop::from_code(200), None);
    }

    #[test]
    fn segments_telescope_to_total() {
        let c = full_chain();
        assert!(c.is_complete());
        assert!(c.is_monotone());
        let segs = c.segments();
        assert_eq!(segs.len(), SEGMENTS.len());
        let sum: u64 = segs.iter().map(|&(_, ns)| ns).sum();
        assert_eq!(Some(sum), c.total_ns());
        assert_eq!(c.total_ns(), Some(60));
    }

    #[test]
    fn first_stamp_wins() {
        let mut c = TraceChain::new(1);
        c.stamp(Hop::Router, 50);
        c.stamp(Hop::Router, 40);
        assert_eq!(c.at(Hop::Router), Some(50));
    }

    #[test]
    fn gaps_produce_no_mislabeled_segment() {
        let mut c = TraceChain::new(2);
        c.stamp(Hop::Router, 10);
        c.stamp(Hop::Applied, 30); // shard hops missing
        c.stamp(Hop::EngineDequeue, 40);
        let segs = c.segments();
        // Only applied→engine_dequeue is between adjacent stages.
        assert_eq!(segs, vec![("engine_queue", 10)]);
        assert!(!c.is_complete());
        assert!(c.is_monotone());
        assert_eq!(c.total_ns(), None);
    }

    #[test]
    fn merge_keeps_earliest() {
        let mut a = TraceChain::new(3);
        a.stamp(Hop::Router, 100);
        a.stamp(Hop::Applied, 300);
        let mut b = TraceChain::new(3);
        b.stamp(Hop::Router, 90);
        b.stamp(Hop::WalAppended, 200);
        a.merge_earliest(&b);
        assert_eq!(a.at(Hop::Router), Some(90));
        assert_eq!(a.at(Hop::WalAppended), Some(200));
        assert_eq!(a.at(Hop::Applied), Some(300));
    }

    #[test]
    fn clock_is_monotone_nonzero() {
        let clk = TraceClock::new();
        let a = clk.now_ns();
        let b = clk.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn json_shape() {
        let c = full_chain();
        let j = c.to_json();
        assert!(j.starts_with("{\"trace_id\":7,"), "{j}");
        assert!(j.contains("\"router\":100"), "{j}");
        assert!(j.contains("\"queue\":10"), "{j}");
        assert!(j.contains("\"total_ns\":60"), "{j}");
    }
}
