//! The frozen query profile: span tree + counter/timer tables, with a
//! human-readable renderer and a hand-rolled JSON serializer (no serde —
//! the workspace must build offline).

use crate::metrics::CounterSet;
use std::fmt::Write as _;

/// One node of the recorded span tree.
#[derive(Debug, Clone)]
pub struct ProfileSpan {
    pub name: &'static str,
    pub duration_ns: u64,
    pub children: Vec<ProfileSpan>,
}

impl ProfileSpan {
    /// Depth-first search by span name.
    pub fn find(&self, name: &str) -> Option<&ProfileSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of direct children's durations (≤ `duration_ns` for a
    /// well-nested recording).
    pub fn child_duration_ns(&self) -> u64 {
        self.children.iter().map(|c| c.duration_ns).sum()
    }
}

/// Summary row for one [`crate::Timer`] histogram.
#[derive(Debug, Clone)]
pub struct TimerSummary {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub mean_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub max_ns: u64,
    /// Occupied histogram buckets as `(lo, hi, count)` with exact
    /// inclusive bounds in ns (see [`crate::Histogram::nonzero_buckets`]),
    /// so JSON consumers get the distribution, not just two quantiles.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Everything one profiled query recorded.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Top-level spans in entry order (usually exactly one per query).
    pub roots: Vec<ProfileSpan>,
    /// Final counter values.
    pub counters: CounterSet,
    /// Latency summaries for timers that observed at least one sample.
    pub timers: Vec<TimerSummary>,
}

/// `1_234_567` ns → `"1.235 ms"` — pick the unit that keeps 1–3 integer
/// digits.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl QueryProfile {
    /// Value of a counter by its stable name (0 for unknown names —
    /// callers probe optimistically).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(c, _)| c.name() == name).map(|(_, v)| v).unwrap_or(0)
    }

    /// Depth-first search across all roots.
    pub fn span(&self, name: &str) -> Option<&ProfileSpan> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// Human-readable phase tree plus counter and timer tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            render_span(&mut out, root, &mut Vec::new());
        }
        let nonzero: Vec<_> = self.counters.iter().filter(|&(_, v)| v > 0).collect();
        if !nonzero.is_empty() {
            out.push_str("counters:\n");
            let width = nonzero.iter().map(|(c, _)| c.name().len()).max().unwrap_or(0);
            for (c, v) in nonzero {
                let _ = writeln!(out, "  {:<width$}  {v}", c.name());
            }
        }
        if !self.timers.is_empty() {
            out.push_str("timers:\n");
            for t in &self.timers {
                let _ = writeln!(
                    out,
                    "  {}: n={} total={} mean={} p50={} p95={} max={}",
                    t.name,
                    t.count,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.mean_ns),
                    fmt_ns(t.p50_ns),
                    fmt_ns(t.p95_ns),
                    fmt_ns(t.max_ns),
                );
            }
        }
        out
    }

    /// Machine-readable JSON:
    /// `{"spans":[...],"counters":{...},"timers":[...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_json(&mut out, root);
        }
        out.push_str("],\"counters\":{");
        let mut first = true;
        for (c, v) in self.counters.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", c.name());
        }
        out.push_str("},\"timers\":[");
        for (i, t) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{},\"buckets\":[",
                t.name, t.count, t.total_ns, t.mean_ns, t.p50_ns, t.p95_ns, t.max_ns,
            );
            for (j, &(lo, hi, n)) in t.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"n\":{n}}}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn render_span(out: &mut String, span: &ProfileSpan, ancestors_last: &mut Vec<bool>) {
    for (i, &last) in ancestors_last.iter().enumerate() {
        let leading = i + 1 == ancestors_last.len();
        out.push_str(match (leading, last) {
            (true, true) => "└─ ",
            (true, false) => "├─ ",
            (false, true) => "   ",
            (false, false) => "│  ",
        });
    }
    let indent = ancestors_last.len() * 3;
    let pad = 40usize.saturating_sub(indent + span.name.len());
    let _ = writeln!(out, "{}{:pad$} {:>12}", span.name, "", fmt_ns(span.duration_ns));
    for (i, child) in span.children.iter().enumerate() {
        ancestors_last.push(i + 1 == span.children.len());
        render_span(out, child, ancestors_last);
        ancestors_last.pop();
    }
}

/// Span names are `&'static str` identifiers chosen by this workspace,
/// but escape anyway so the output is valid JSON no matter what.
fn span_json(out: &mut String, span: &ProfileSpan) {
    out.push_str("{\"name\":\"");
    for ch in span.name.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    let _ = write!(out, "\",\"duration_ns\":{},\"children\":[", span.duration_ns);
    for (i, child) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(out, child);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;

    fn sample() -> QueryProfile {
        let mut counters = CounterSet::new();
        counters.add(Counter::PresenceEvaluations, 42);
        counters.add(Counter::PoisPruned, 3);
        QueryProfile {
            roots: vec![ProfileSpan {
                name: "snapshot_join",
                duration_ns: 2_000_000,
                children: vec![
                    ProfileSpan {
                        name: "candidate_retrieval",
                        duration_ns: 300_000,
                        children: vec![],
                    },
                    ProfileSpan {
                        name: "join_descent",
                        duration_ns: 1_500_000,
                        children: vec![ProfileSpan {
                            name: "rank",
                            duration_ns: 10_000,
                            children: vec![],
                        }],
                    },
                ],
            }],
            counters,
            timers: vec![TimerSummary {
                name: "presence",
                count: 42,
                total_ns: 1_200_000,
                mean_ns: 28_571,
                p50_ns: 16_383,
                p95_ns: 65_535,
                max_ns: 90_000,
                buckets: vec![(8192, 16383, 30), (16384, 32767, 8), (65536, 131071, 4)],
            }],
        }
    }

    #[test]
    fn render_contains_tree_and_tables() {
        let text = sample().render();
        assert!(text.contains("snapshot_join"));
        assert!(text.contains("├─ candidate_retrieval"));
        assert!(text.contains("└─ join_descent"));
        assert!(text.contains("└─ rank"));
        assert!(text.contains("presence_evaluations"));
        assert!(text.contains("42"));
        assert!(text.contains("presence: n=42"));
        // Zero counters are suppressed.
        assert!(!text.contains("queue_pushes"));
    }

    #[test]
    fn json_shape_is_stable() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"spans\":["));
        assert!(json.contains("\"name\":\"snapshot_join\""));
        assert!(json.contains("\"duration_ns\":2000000"));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"presence_evaluations\":42"));
        assert!(json.contains("\"timers\":["));
        assert!(json.contains("\"p95_ns\":65535"));
        // Exact bucket bounds ride along with the quantile summary.
        assert!(json.contains("\"buckets\":[{\"lo\":8192,\"hi\":16383,\"n\":30}"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn find_and_counter_lookup() {
        let p = sample();
        assert_eq!(p.span("rank").unwrap().duration_ns, 10_000);
        assert!(p.span("missing").is_none());
        assert_eq!(p.counter("presence_evaluations"), 42);
        assert_eq!(p.counter("nope"), 0);
        let root = &p.roots[0];
        assert!(root.child_duration_ns() <= root.duration_ns);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut out = String::new();
        span_json(
            &mut out,
            &ProfileSpan { name: "we\"ird\\name", duration_ns: 1, children: vec![] },
        );
        assert!(out.contains("we\\\"ird\\\\name"));
    }
}
