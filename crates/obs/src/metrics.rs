//! Counters and latency histograms.
//!
//! The counter registry is a fixed enum rather than a string-keyed map:
//! hot paths pay one array index, names live in one place, and the
//! profile output is stable and exhaustively enumerable.

/// Everything the query stack counts.
///
/// Kept in one registry (not per-module ad-hoc fields) so the CLI, the
/// bench harness and the JSON output all agree on names. Counters that
/// only one algorithm family can bump simply stay zero for the other —
/// that asymmetry is itself informative (e.g. `pois_pruned` > 0 is the
/// join algorithm's whole reason to exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Objects whose tracking records overlap the query time(s).
    ObjectsConsidered,
    /// Uncertainty regions actually derived.
    UrsBuilt,
    /// Exact presence integrations performed (the dominant cost).
    PresenceEvaluations,
    /// Object–POI pairings rejected by the cheap MBR intersection test
    /// before any integration.
    MbrRejects,
    /// §4.3.2: join-list entries rejected because no per-segment small
    /// MBR (or derived snapshot MBR) intersects the POI entry.
    SmallMbrRejects,
    /// R-tree nodes expanded (R_P probes plus R_I × R_P join descent).
    RtreeNodesVisited,
    /// Entries pushed into the join priority queue.
    QueuePushes,
    /// Entries popped off the join priority queue.
    QueuePops,
    /// POIs whose exact flow was resolved (join only).
    ExactFlowsResolved,
    /// POIs never exactly resolved thanks to upper-bound early
    /// termination (join only).
    PoisPruned,
    /// Membership probes issued by the adaptive grid integrator
    /// (`inflow_geometry::area`) — grid cells × samples.
    GridProbes,
    /// Objects considered whose snapshot/interval uncertainty region came
    /// out empty (degraded data: the object contributes no flow).
    EmptyUrs,
    /// Objects considered for which no uncertainty region could be
    /// derived at all (no covering tracking records).
    MissingUrs,
    /// Anomalies detected by the sanitization gate feeding this dataset.
    SanitizeDetected,
    /// Anomalies repaired in place by the sanitization gate.
    SanitizeRepaired,
    /// Anomalous records dropped by the sanitization gate.
    SanitizeRejected,
    /// Anomalous records moved to quarantine by the sanitization gate.
    SanitizeQuarantined,
    /// Previously quarantined records re-admitted by an offline readmit
    /// pass (e.g. after an unknown device was registered).
    SanitizeReadmitted,
    /// WAL records replayed on top of the newest valid snapshot during
    /// crash recovery of the durable ingestion store.
    RecoveryWalReplayed,
    /// Bytes of torn/corrupt WAL tail truncated during crash recovery.
    RecoveryTruncatedBytes,
    /// Snapshot files rejected during recovery (bad checksum, torn
    /// write, or missing commit marker).
    RecoverySnapshotsRejected,
    /// Replayed WAL readings the tracker rejected (deterministically, the
    /// same way the live run rejected them).
    RecoveryReplayRejected,
    /// Readings routed to shard ingestion queues by the serving layer.
    ServeReadingsSharded,
    /// Readings a shard worker applied to its tracker (durably logged and
    /// accepted; excludes buffered, dropped-late and rejected readings).
    ServeReadingsApplied,
    /// Readings a shard worker's tracker rejected (strict-mode
    /// out-of-order); the reading stays in the shard's WAL.
    ServeReadingsRejected,
    /// Row-delta batches shard workers emitted to the flow engine.
    ServeDeltasEmitted,
    /// Per-object row replacements carried across all delta batches.
    ServeDeltaObjects,
    /// Per-object presence recomputations the flow engine performed to
    /// maintain materialized subscription results incrementally.
    ServeRecomputes,
    /// Subscription updates pushed to watchers.
    ServeNotifications,
    /// Subscription refreshes whose result change stayed within the
    /// subscriber's ε threshold (no notification sent).
    ServeNotificationsSuppressed,
    /// Continuous top-k subscriptions registered over the protocol.
    ServeSubscriptions,
    /// One-shot snapshot/interval queries answered by the server.
    ServeOneShotQueries,
    /// Shard workers restarted after a crash (state recovered from the
    /// shard's ingestion store).
    ServeShardRestarts,
    /// Delta batches dropped because their rows violated the OTT
    /// invariants (should be zero: trackers only emit valid rows).
    ServeDeltaRowsInvalid,
    /// `METRICS` snapshot requests answered by the server.
    ServeMetricsQueries,
    /// `TRACE` snapshot requests answered by the server.
    ServeTraceQueries,
    /// Flight-recorder dumps served over the protocol (`FLIGHT`).
    ServeFlightDumps,
    /// Notification trace chains completed end-to-end (router →
    /// notified) and folded into the per-stage histograms.
    ServeTracesCompleted,
    /// `PUBLISH` batches refused with an `OVERLOADED` backpressure frame
    /// because a shard ingestion queue exceeded its bound.
    ServeOverloads,
    /// Connections refused at accept time because the server was at its
    /// concurrent-connection bound (`OVERLOADED` frame, then close).
    ServeConnsRejected,
    /// `STATE_HASH` barrier-digest requests answered by the server (the
    /// record/replay harness's per-barrier comparison point).
    ServeStateHashes,
    /// Subscriptions re-registered with a sequence-numbered resume
    /// section after a client reconnect.
    ServeResumedSubscriptions,
    /// Density-grid snapshot queries evaluated.
    DensityQueries,
    /// Inverse visitor queries (likely-visitors / also-visited) evaluated.
    VisitorQueries,
    /// Poisson-binomial count-distribution queries evaluated.
    DistribQueries,
    /// Duration-threshold long-visit queries evaluated.
    LongVisitQueries,
    /// Snapshot-flow (`--t`) subscriptions registered.
    ServeSnapshotSubscriptions,
    /// Interval-flow (`--ts --te`) subscriptions registered.
    ServeIntervalSubscriptions,
    /// Count-distribution subscriptions registered.
    ServeDistribSubscriptions,
    /// Long-visit subscriptions registered.
    ServeLongvisitSubscriptions,
    /// One-shot DISTRIB protocol requests answered (full per-POI
    /// distribution detail).
    ServeDistribQueries,
    /// Compaction passes that changed the segment manifest (sealed or
    /// merged at least one segment).
    StoreCompactions,
    /// Immutable segments sealed from the hot WAL tail.
    SegmentsSealed,
    /// Input segments consumed by compaction merges.
    SegmentsMerged,
    /// Background scrub passes completed over the segment tier.
    ScrubPasses,
    /// Segment files whose bytes a scrub pass (or a read-time check)
    /// found damaged — checksum, length, decode, or missing-file faults.
    ScrubCorruptions,
    /// Segments moved into quarantine (excluded from answers until
    /// repaired).
    SegmentsQuarantined,
    /// Queries answered from an assembled history with quarantined rows
    /// excluded — correct but `DataQuality`-degraded answers.
    QuarantineDegradedAnswers,
}

impl Counter {
    /// All counters, in display order.
    pub const ALL: [Counter; 58] = [
        Counter::ObjectsConsidered,
        Counter::UrsBuilt,
        Counter::PresenceEvaluations,
        Counter::MbrRejects,
        Counter::SmallMbrRejects,
        Counter::RtreeNodesVisited,
        Counter::QueuePushes,
        Counter::QueuePops,
        Counter::ExactFlowsResolved,
        Counter::PoisPruned,
        Counter::GridProbes,
        Counter::EmptyUrs,
        Counter::MissingUrs,
        Counter::SanitizeDetected,
        Counter::SanitizeRepaired,
        Counter::SanitizeRejected,
        Counter::SanitizeQuarantined,
        Counter::SanitizeReadmitted,
        Counter::RecoveryWalReplayed,
        Counter::RecoveryTruncatedBytes,
        Counter::RecoverySnapshotsRejected,
        Counter::RecoveryReplayRejected,
        Counter::ServeReadingsSharded,
        Counter::ServeReadingsApplied,
        Counter::ServeReadingsRejected,
        Counter::ServeDeltasEmitted,
        Counter::ServeDeltaObjects,
        Counter::ServeRecomputes,
        Counter::ServeNotifications,
        Counter::ServeNotificationsSuppressed,
        Counter::ServeSubscriptions,
        Counter::ServeOneShotQueries,
        Counter::ServeShardRestarts,
        Counter::ServeDeltaRowsInvalid,
        Counter::ServeMetricsQueries,
        Counter::ServeTraceQueries,
        Counter::ServeFlightDumps,
        Counter::ServeTracesCompleted,
        Counter::ServeOverloads,
        Counter::ServeConnsRejected,
        Counter::ServeStateHashes,
        Counter::ServeResumedSubscriptions,
        Counter::DensityQueries,
        Counter::VisitorQueries,
        Counter::DistribQueries,
        Counter::LongVisitQueries,
        Counter::ServeSnapshotSubscriptions,
        Counter::ServeIntervalSubscriptions,
        Counter::ServeDistribSubscriptions,
        Counter::ServeLongvisitSubscriptions,
        Counter::ServeDistribQueries,
        Counter::StoreCompactions,
        Counter::SegmentsSealed,
        Counter::SegmentsMerged,
        Counter::ScrubPasses,
        Counter::ScrubCorruptions,
        Counter::SegmentsQuarantined,
        Counter::QuarantineDegradedAnswers,
    ];

    /// Stable snake_case name used in rendered and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ObjectsConsidered => "objects_considered",
            Counter::UrsBuilt => "urs_built",
            Counter::PresenceEvaluations => "presence_evaluations",
            Counter::MbrRejects => "mbr_rejects",
            Counter::SmallMbrRejects => "small_mbr_rejects",
            Counter::RtreeNodesVisited => "rtree_nodes_visited",
            Counter::QueuePushes => "queue_pushes",
            Counter::QueuePops => "queue_pops",
            Counter::ExactFlowsResolved => "exact_flows_resolved",
            Counter::PoisPruned => "pois_pruned",
            Counter::GridProbes => "grid_probes",
            Counter::EmptyUrs => "empty_urs",
            Counter::MissingUrs => "missing_urs",
            Counter::SanitizeDetected => "sanitize_detected",
            Counter::SanitizeRepaired => "sanitize_repaired",
            Counter::SanitizeRejected => "sanitize_rejected",
            Counter::SanitizeQuarantined => "sanitize_quarantined",
            Counter::SanitizeReadmitted => "sanitize_readmitted",
            Counter::RecoveryWalReplayed => "recovery_wal_replayed",
            Counter::RecoveryTruncatedBytes => "recovery_truncated_bytes",
            Counter::RecoverySnapshotsRejected => "recovery_snapshots_rejected",
            Counter::RecoveryReplayRejected => "recovery_replay_rejected",
            Counter::ServeReadingsSharded => "serve_readings_sharded",
            Counter::ServeReadingsApplied => "serve_readings_applied",
            Counter::ServeReadingsRejected => "serve_readings_rejected",
            Counter::ServeDeltasEmitted => "serve_deltas_emitted",
            Counter::ServeDeltaObjects => "serve_delta_objects",
            Counter::ServeRecomputes => "serve_recomputes",
            Counter::ServeNotifications => "serve_notifications",
            Counter::ServeNotificationsSuppressed => "serve_notifications_suppressed",
            Counter::ServeSubscriptions => "serve_subscriptions",
            Counter::ServeOneShotQueries => "serve_one_shot_queries",
            Counter::ServeShardRestarts => "serve_shard_restarts",
            Counter::ServeDeltaRowsInvalid => "serve_delta_rows_invalid",
            Counter::ServeMetricsQueries => "serve_metrics_queries",
            Counter::ServeTraceQueries => "serve_trace_queries",
            Counter::ServeFlightDumps => "serve_flight_dumps",
            Counter::ServeTracesCompleted => "serve_traces_completed",
            Counter::ServeOverloads => "serve_overloads",
            Counter::ServeConnsRejected => "serve_conns_rejected",
            Counter::ServeStateHashes => "serve_state_hashes",
            Counter::ServeResumedSubscriptions => "serve_resumed_subscriptions",
            Counter::DensityQueries => "density_queries",
            Counter::VisitorQueries => "visitor_queries",
            Counter::DistribQueries => "distrib_queries",
            Counter::LongVisitQueries => "longvisit_queries",
            Counter::ServeSnapshotSubscriptions => "serve_snapshot_subscriptions",
            Counter::ServeIntervalSubscriptions => "serve_interval_subscriptions",
            Counter::ServeDistribSubscriptions => "serve_distrib_subscriptions",
            Counter::ServeLongvisitSubscriptions => "serve_longvisit_subscriptions",
            Counter::ServeDistribQueries => "serve_distrib_queries",
            Counter::StoreCompactions => "store_compactions",
            Counter::SegmentsSealed => "segments_sealed",
            Counter::SegmentsMerged => "segments_merged",
            Counter::ScrubPasses => "scrub_passes",
            Counter::ScrubCorruptions => "scrub_corruptions",
            Counter::SegmentsQuarantined => "segments_quarantined",
            Counter::QuarantineDegradedAnswers => "quarantine_degraded_answers",
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).expect("counter in ALL")
    }
}

/// A fixed-size bag of counter values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSet {
    values: [u64; Counter::ALL.len()],
}

impl Default for CounterSet {
    fn default() -> CounterSet {
        CounterSet { values: [0; Counter::ALL.len()] }
    }
}

impl CounterSet {
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    pub fn add(&mut self, counter: Counter, n: u64) {
        self.values[counter.index()] += n;
    }

    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    pub fn merge(&mut self, other: &CounterSet) {
        for (dst, src) in self.values.iter_mut().zip(&other.values) {
            *dst += src;
        }
    }

    /// `(counter, value)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    pub fn is_all_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

/// Named per-operation latency histograms.
///
/// Like [`Counter`], a fixed registry: each variant owns one histogram
/// slot in the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Timer {
    /// One `UrEngine::presence` integration.
    Presence,
    /// One snapshot/interval uncertainty-region derivation.
    UrDerive,
    /// One per-object incremental recompute in the flow-monitoring
    /// engine (delta applied → subscription contributions refreshed).
    ServeRecompute,
    /// One subscription notification fan-out (rank + encode + enqueue to
    /// every watcher).
    ServeNotify,
}

impl Timer {
    pub const ALL: [Timer; 4] =
        [Timer::Presence, Timer::UrDerive, Timer::ServeRecompute, Timer::ServeNotify];

    /// Stable snake_case name used in rendered and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Timer::Presence => "presence",
            Timer::UrDerive => "ur_derive",
            Timer::ServeRecompute => "serve_recompute",
            Timer::ServeNotify => "serve_notify",
        }
    }

    pub(crate) fn index(self) -> usize {
        Timer::ALL.iter().position(|&t| t == self).expect("timer in ALL")
    }
}

const BUCKETS: usize = 44;

/// Log₂-bucketed histogram of unsigned values.
///
/// Bucket `i` holds observations in `[2^i, 2^(i+1))` (bucket 0 also
/// takes 0); the top bucket absorbs everything from `2^43` up. The
/// histogram itself is **unit-neutral** — the unit belongs to whatever
/// the caller observes into it. Latency callers observe nanoseconds
/// and read through the `*_ns` aliases; value callers (queue depths,
/// batch sizes) use the unsuffixed accessors. 44 buckets cover ~4.8
/// hours of nanoseconds — effectively unbounded for per-operation
/// latencies. Fixed-size and allocation-free so closures on hot paths
/// can own one locally and merge it into the recorder afterwards.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { count: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    pub fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (unit-neutral).
    pub fn sum(&self) -> u64 {
        self.sum_ns
    }

    /// Mean observed value (unit-neutral).
    pub fn mean(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest observed value (unit-neutral; 0 when empty).
    pub fn minimum(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest observed value (unit-neutral).
    pub fn maximum(&self) -> u64 {
        self.max_ns
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum()
    }

    pub fn mean_ns(&self) -> u64 {
        self.mean()
    }

    pub fn min_ns(&self) -> u64 {
        self.minimum()
    }

    pub fn max_ns(&self) -> u64 {
        self.maximum()
    }

    /// Quantile estimate (`q` in `[0, 1]`): upper edge of the bucket
    /// containing the q-th observation, clamped to the observed max.
    /// Log₂ buckets bound the relative error by 2×, which is plenty for
    /// "is presence integration microseconds or milliseconds" questions.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.quantile(q)
    }

    /// Inclusive `(lo, hi)` value bounds of bucket `i`. Bucket 0 is
    /// `[0, 1]`; the top bucket's `hi` is `u64::MAX` (open-ended).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i + 1 >= BUCKETS { u64::MAX } else { (1u64 << (i + 1)) - 1 };
        (lo, hi)
    }

    /// Occupied buckets as `(lo, hi, count)` triples, ascending — the
    /// exact-bounds form the metrics snapshot and `QueryProfile::to_json`
    /// expose so consumers can rebuild the distribution, not just read
    /// pre-chewed quantiles.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_snake_case() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{n}");
        }
    }

    #[test]
    fn counter_set_add_get_merge() {
        let mut a = CounterSet::new();
        assert!(a.is_all_zero());
        a.add(Counter::PresenceEvaluations, 3);
        a.add(Counter::PresenceEvaluations, 2);
        let mut b = CounterSet::new();
        b.add(Counter::PresenceEvaluations, 10);
        b.add(Counter::QueuePops, 1);
        a.merge(&b);
        assert_eq!(a.get(Counter::PresenceEvaluations), 15);
        assert_eq!(a.get(Counter::QueuePops), 1);
        assert_eq!(a.get(Counter::PoisPruned), 0);
        assert!(!a.is_all_zero());
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.observe(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 101_500);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 100_000);
        // Median falls in the bucket containing 400 ([256, 512)).
        let p50 = h.quantile_ns(0.5);
        assert!((256..=511).contains(&p50), "p50 {p50}");
        // The tail quantile is clamped to the observed max.
        assert_eq!(h.quantile_ns(1.0), 100_000);
    }

    #[test]
    fn histogram_merge_matches_combined_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for ns in [10u64, 20, 30] {
            a.observe(ns);
            c.observe(ns);
        }
        for ns in [1_000u64, 2_000] {
            b.observe(ns);
            c.observe(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum_ns(), c.sum_ns());
        assert_eq!(a.min_ns(), c.min_ns());
        assert_eq!(a.max_ns(), c.max_ns());
        assert_eq!(a.quantile_ns(0.9), c.quantile_ns(0.9));
    }

    #[test]
    fn nonzero_buckets_expose_exact_bounds() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 300, 300, 1u64 << 43] {
            h.observe(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0, 1, 2));
        assert_eq!(buckets[1], (256, 511, 2));
        // Top bucket is open-ended.
        assert_eq!(buckets[2].1, u64::MAX);
        assert_eq!(buckets[2].2, 1);
        let total: u64 = buckets.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, h.count());
        // Unit-neutral accessors agree with the ns-suffixed aliases.
        assert_eq!(h.mean(), h.mean_ns());
        assert_eq!(h.quantile(0.5), h.quantile_ns(0.5));
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), u64::MAX);
    }
}
