//! Zero-dependency observability for the flow-query stack.
//!
//! The paper's evaluation (§5) compares the iterative and join
//! algorithms purely by end-to-end latency, but the join algorithms win
//! through *internal* behavior — upper-bound pruning, §4.3.2 small-MBR
//! short-circuits, avoided presence integrations. This crate makes that
//! behavior visible without pulling in `tracing`/`metrics` (the
//! workspace must build offline):
//!
//! * [`Recorder`] — a per-query recorder handed out by the analytics
//!   façade. Disabled by default and free when disabled: it is a
//!   single niche-optimized `Option<Box<_>>`, every record call is one
//!   branch on `None`, and nothing allocates.
//! * Hierarchical timed **spans** ([`Recorder::enter`]/[`Recorder::exit`])
//!   for algorithm phases (candidate retrieval, R-tree join descent,
//!   priority-queue draining, ranking…).
//! * A fixed **counter registry** ([`Counter`]) — R-tree nodes visited,
//!   POIs pruned by upper bound, small-MBR rejects, grid cells
//!   integrated — cheap enough to sit on hot paths.
//! * Log₂-bucketed latency **histograms** ([`Histogram`], [`Timer`]) for
//!   sub-phase operations executed thousands of times per query
//!   (presence integration, UR derivation).
//! * [`QueryProfile`] — the frozen result: a span tree plus counter and
//!   timer tables, renderable as a human phase tree ([`QueryProfile::render`])
//!   or machine JSON ([`QueryProfile::to_json`]).
//!
//! The intended pattern mirrors how the query layer uses it:
//!
//! ```
//! use inflow_obs::{Counter, Recorder, Timer};
//!
//! let mut rec = Recorder::enabled();
//! let root = rec.enter("snapshot_join");
//! let descent = rec.enter("join_descent");
//! rec.add(Counter::RtreeNodesVisited, 17);
//! let t = rec.start(Timer::Presence);
//! // ... integrate presence ...
//! rec.stop(Timer::Presence, t);
//! rec.exit(descent);
//! rec.exit(root);
//! let profile = rec.finish().expect("enabled recorder yields a profile");
//! assert_eq!(profile.counter("rtree_nodes_visited"), 17);
//! println!("{}", profile.render());
//! ```

//! Three serving-side additions extend the same philosophy to the
//! continuous pipeline (see `DESIGN.md` § Observability):
//!
//! * [`TraceChain`]/[`TraceClock`] — request-scoped trace context: one
//!   timestamp per pipeline [`Hop`], carried with a reading from router
//!   to notification, decomposing end-to-end latency into named
//!   segments.
//! * [`FlightRecorder`] — an always-on lock-free ring of recent
//!   pipeline [`FlightEvent`]s, dumped as JSONL on panic, shard crash,
//!   or protocol request.
//! * [`Json`] — a minimal JSON parser so CLIs and tests can *validate*
//!   the hand-emitted telemetry snapshots instead of grepping them.

mod flight;
mod json;
mod metrics;
mod profile;
mod recorder;
mod trace;

pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use json::{Json, JsonError};
pub use metrics::{Counter, CounterSet, Histogram, Timer};
pub use profile::{ProfileSpan, QueryProfile, TimerSummary};
pub use recorder::{Recorder, SpanToken, TimerToken};
pub use trace::{Hop, TraceChain, TraceClock, SEGMENTS};
