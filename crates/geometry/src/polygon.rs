//! Simple polygons: POI extents, room footprints, and obstacle outlines.

use crate::mbr::Mbr;
use crate::point::{Point, Vec2};
use crate::segment::Segment;
use crate::EPS;

/// A simple (non-self-intersecting) polygon with at least three vertices.
///
/// Vertices are stored in counter-clockwise order regardless of the order
/// they were supplied in; construction rejects degenerate (zero-area) vertex
/// lists. The polygon is closed implicitly: the last vertex connects back to
/// the first.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    mbr: Mbr,
    area: f64,
}

/// Errors raised when constructing a [`Polygon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// The vertices are collinear or coincident (zero area).
    DegenerateArea,
    /// A vertex coordinate was NaN or infinite.
    NonFiniteVertex,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::DegenerateArea => write!(f, "polygon has (near-)zero area"),
            PolygonError::NonFiniteVertex => write!(f, "polygon vertex is NaN or infinite"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Builds a polygon from a vertex list given in either winding order.
    pub fn new(mut vertices: Vec<Point>) -> Result<Polygon, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(PolygonError::NonFiniteVertex);
        }
        let signed = signed_area(&vertices);
        if signed.abs() <= EPS {
            return Err(PolygonError::DegenerateArea);
        }
        if signed < 0.0 {
            vertices.reverse();
        }
        let mbr = Mbr::from_points(&vertices);
        let area = signed.abs();
        Ok(Polygon { vertices, mbr, area })
    }

    /// Builds an axis-aligned rectangle from two opposite corners.
    pub fn rectangle(a: Point, b: Point) -> Polygon {
        let m = Mbr::new(a, b);
        assert!(m.width() > EPS && m.height() > EPS, "degenerate rectangle: {a} .. {b}");
        Polygon::new(vec![m.lo, Point::new(m.hi.x, m.lo.y), m.hi, Point::new(m.lo.x, m.hi.y)])
            .expect("rectangle is a valid polygon")
    }

    /// A regular `n`-gon approximating a circle; useful for tests and
    /// visual debugging.
    pub fn regular(center: Point, radius: f64, n: usize) -> Polygon {
        assert!(n >= 3, "regular polygon needs n >= 3");
        let verts = (0..n)
            .map(|i| {
                let ang = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::new(center.x + radius * ang.cos(), center.y + radius * ang.sin())
            })
            .collect();
        Polygon::new(verts).expect("regular polygon is valid")
    }

    /// The vertices in counter-clockwise order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Exact polygon area (shoelace formula, cached at construction).
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Tight bounding rectangle (cached at construction).
    pub fn mbr(&self) -> Mbr {
        self.mbr
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        let a6 = 6.0 * signed_area(&self.vertices);
        Point::new(cx / a6, cy / a6)
    }

    /// Iterates over the directed boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Point-in-polygon test (boundary points count as inside).
    ///
    /// Standard even-odd ray casting with an explicit boundary check so the
    /// predicate is well-behaved for points exactly on edges — important when
    /// POIs tile a room and share walls.
    pub fn contains(&self, p: Point) -> bool {
        if !self.mbr.contains(p) {
            return false;
        }
        // Boundary check first.
        for e in self.edges() {
            if e.distance_to_point(p) <= EPS {
                return true;
            }
        }
        self.raycast(p)
    }

    /// Fast point-in-polygon test without the epsilon boundary pass.
    ///
    /// Boundary points may be classified either way; use this on hot paths
    /// where the boundary is measure-zero (area integration, point
    /// location), and [`Polygon::contains`] where boundary semantics
    /// matter.
    pub fn contains_fast(&self, p: Point) -> bool {
        self.mbr.contains(p) && self.raycast(p)
    }

    fn raycast(&self, p: Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let (vi, vj) = (self.vertices[i], self.vertices[j]);
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_int = vi.x + (p.y - vi.y) / (vj.y - vi.y) * (vj.x - vi.x);
                if p.x < x_int {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Whether the polygon is convex (all turns in the same direction).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign = 0.0f64;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cr = (b - a).cross(c - b);
            if cr.abs() <= EPS {
                continue;
            }
            if sign == 0.0 {
                sign = cr.signum();
            } else if cr.signum() != sign {
                return false;
            }
        }
        true
    }

    /// The polygon translated by `delta`.
    pub fn translated(&self, delta: Vec2) -> Polygon {
        Polygon::new(self.vertices.iter().map(|&p| p + delta).collect())
            .expect("translation preserves validity")
    }

    /// Clips this polygon against a *convex* clip polygon
    /// (Sutherland–Hodgman). Returns `None` when the intersection is empty
    /// or degenerate.
    ///
    /// Exact polygon–polygon intersection for the common rectangular-POI ∩
    /// rectangular-room case, and ground truth for integrator tests.
    pub fn clip_convex(&self, clip: &Polygon) -> Option<Polygon> {
        debug_assert!(clip.is_convex(), "clip polygon must be convex");
        let mut output: Vec<Point> = self.vertices.clone();
        let n = clip.vertices.len();
        for i in 0..n {
            if output.is_empty() {
                return None;
            }
            let a = clip.vertices[i];
            let b = clip.vertices[(i + 1) % n];
            let edge_dir = b - a;
            let inside = |p: Point| edge_dir.cross(p - a) >= -EPS;
            let input = std::mem::take(&mut output);
            let m = input.len();
            for j in 0..m {
                let cur = input[j];
                let next = input[(j + 1) % m];
                let cur_in = inside(cur);
                let next_in = inside(next);
                if cur_in {
                    output.push(cur);
                }
                if cur_in != next_in {
                    // The edge crosses the clip line; compute the crossing.
                    let denom = edge_dir.cross(next - cur);
                    if denom.abs() > EPS {
                        let t = edge_dir.cross(a - cur) / denom;
                        output.push(cur.lerp(next, t.clamp(0.0, 1.0)));
                    }
                }
            }
        }
        Polygon::new(output).ok()
    }

    /// Exact area of the intersection with a *convex* polygon.
    pub fn intersection_area_convex(&self, clip: &Polygon) -> f64 {
        self.clip_convex(clip).map_or(0.0, |p| p.area())
    }
}

/// Shoelace signed area: positive for counter-clockwise vertex order.
fn signed_area(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    let mut sum = 0.0;
    for i in 0..n {
        let p = vertices[i];
        let q = vertices[(i + 1) % n];
        sum += p.x * q.y - q.x * p.y;
    }
    sum / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(2.0, 2.0))
    }

    #[test]
    fn construction_validations() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap_err(),
            PolygonError::TooFewVertices
        );
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)])
                .unwrap_err(),
            PolygonError::DegenerateArea
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(f64::NAN, 0.0),
                Point::new(0.0, 1.0)
            ])
            .unwrap_err(),
            PolygonError::NonFiniteVertex
        );
    }

    #[test]
    fn winding_is_normalized_to_ccw() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(signed_area(cw.vertices()) > 0.0);
        assert!((cw.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rectangle_area_and_mbr() {
        let s = square();
        assert_eq!(s.area(), 4.0);
        assert_eq!(s.mbr(), Mbr::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
        assert_eq!(s.perimeter(), 8.0);
        assert_eq!(s.centroid(), Point::new(1.0, 1.0));
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let s = square();
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(s.contains(Point::new(0.0, 0.0))); // corner
        assert!(s.contains(Point::new(2.0, 1.0))); // edge
        assert!(!s.contains(Point::new(2.01, 1.0)));
        assert!(!s.contains(Point::new(-0.01, -0.01)));
    }

    #[test]
    fn contains_concave_polygon() {
        // L-shape: the notch must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        assert!(!l.is_convex());
        assert!((l.area() - 5.0).abs() < 1e-12);
        assert!(l.contains(Point::new(0.5, 2.0)));
        assert!(l.contains(Point::new(2.0, 0.5)));
        assert!(!l.contains(Point::new(2.0, 2.0))); // inside the notch
    }

    #[test]
    fn regular_polygon_approaches_circle_area() {
        let p = Polygon::regular(Point::new(5.0, 5.0), 2.0, 720);
        let circle_area = std::f64::consts::PI * 4.0;
        assert!((p.area() - circle_area).abs() / circle_area < 1e-4);
        assert!(p.is_convex());
    }

    #[test]
    fn clip_overlapping_rectangles() {
        let a = square();
        let b = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let clipped = a.clip_convex(&b).unwrap();
        assert!((clipped.area() - 1.0).abs() < 1e-12);
        assert_eq!(a.intersection_area_convex(&b), clipped.area());
    }

    #[test]
    fn clip_disjoint_is_none() {
        let a = square();
        let b = Polygon::rectangle(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.clip_convex(&b).is_none());
        assert_eq!(a.intersection_area_convex(&b), 0.0);
    }

    #[test]
    fn clip_contained_returns_inner() {
        let outer = Polygon::rectangle(Point::new(-5.0, -5.0), Point::new(5.0, 5.0));
        let s = square();
        let clipped = s.clip_convex(&outer).unwrap();
        assert!((clipped.area() - s.area()).abs() < 1e-12);
    }

    #[test]
    fn clip_concave_subject_against_convex_clip() {
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        let clip = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(3.0, 0.5));
        let area = l.intersection_area_convex(&clip);
        assert!((area - 1.5).abs() < 1e-9, "got {area}");
    }

    #[test]
    fn translation_moves_everything() {
        let s = square().translated(Vec2::new(10.0, -1.0));
        assert_eq!(s.area(), 4.0);
        assert!(s.contains(Point::new(11.0, 0.0)));
        assert!(!s.contains(Point::new(1.0, 1.0)));
    }
}
