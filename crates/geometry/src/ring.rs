//! Annular rings around device detection ranges.

use crate::circle::Circle;
use crate::mbr::Mbr;
use crate::point::Point;
use crate::EPS;

/// The paper's `Ring(dev, ρ)`: the annulus whose inner circle is the
/// device's detection circle and whose outer circle extends the inner
/// radius by `ρ` (Section 3.1.2, footnote 1).
///
/// The inner disk is *excluded*: an object still inside the detection range
/// would be generating readings, so an undetected object must be strictly
/// outside it. A non-positive extension `ρ` yields an empty ring, which can
/// occur for inconsistent or extremely tight timing data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ring {
    /// The device's detection circle (inner boundary, excluded).
    pub inner: Circle,
    /// Radial extension beyond the detection radius (`V_max · Δt`).
    pub extension: f64,
}

impl Ring {
    /// Creates the ring around `inner` extended outward by `extension`.
    pub fn new(inner: Circle, extension: f64) -> Ring {
        Ring { inner, extension }
    }

    /// The outer bounding circle.
    pub fn outer(&self) -> Circle {
        Circle::new(self.inner.center, self.inner.radius + self.extension.max(0.0))
    }

    /// Whether the ring contains no points.
    pub fn is_empty(&self) -> bool {
        self.extension <= EPS
    }

    /// Membership: strictly outside the inner circle, inside or on the
    /// outer circle.
    pub fn contains(&self, p: Point) -> bool {
        if self.is_empty() {
            return false;
        }
        let d2 = self.inner.center.distance_sq(p);
        let r_in = self.inner.radius;
        let r_out = r_in + self.extension;
        d2 > r_in * r_in - EPS && d2 <= r_out * r_out + EPS
    }

    /// Exact annulus area.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let r_in = self.inner.radius;
        let r_out = r_in + self.extension;
        std::f64::consts::PI * (r_out * r_out - r_in * r_in)
    }

    /// Bounding rectangle (that of the outer circle).
    pub fn mbr(&self) -> Mbr {
        if self.is_empty() {
            Mbr::EMPTY
        } else {
            self.outer().mbr()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn ring() -> Ring {
        Ring::new(Circle::new(Point::new(0.0, 0.0), 1.0), 2.0)
    }

    #[test]
    fn membership_excludes_inner_disk() {
        let r = ring();
        assert!(!r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(0.5, 0.0)));
        assert!(r.contains(Point::new(2.0, 0.0)));
        assert!(r.contains(Point::new(3.0, 0.0))); // outer boundary
        assert!(!r.contains(Point::new(3.1, 0.0)));
    }

    #[test]
    fn area_is_annulus_area() {
        let r = ring();
        assert!((r.area() - PI * (9.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_ring() {
        let r = Ring::new(Circle::new(Point::new(0.0, 0.0), 1.0), 0.0);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0.0);
        assert!(!r.contains(Point::new(1.0, 0.0)));
        assert!(r.mbr().is_empty());

        let neg = Ring::new(Circle::new(Point::new(0.0, 0.0), 1.0), -0.5);
        assert!(neg.is_empty());
    }

    #[test]
    fn mbr_bounds_outer_circle() {
        let r = ring();
        let m = r.mbr();
        assert_eq!(m.lo, Point::new(-3.0, -3.0));
        assert_eq!(m.hi, Point::new(3.0, 3.0));
    }
}
