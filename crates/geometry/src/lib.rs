//! 2D computational geometry substrate for symbolic indoor tracking analytics.
//!
//! This crate provides the geometric machinery required by the EDBT 2016
//! paper *Finding Frequently Visited Indoor POIs Using Symbolic Indoor
//! Tracking Data*:
//!
//! * primitive types — [`Point`], [`Vec2`], [`Segment`], [`Mbr`];
//! * detection-range shapes — [`Circle`], annular [`Ring`]s, and the
//!   Pfoser–Jensen [`ExtendedEllipse`] bounding an object's location between
//!   two consecutive proximity detections;
//! * [`Polygon`]s modelling POI extents and room footprints, with exact area
//!   and point-containment tests;
//! * a composable [`Region`] abstraction (intersection / union / difference)
//!   used to express uncertainty regions, together with a deterministic
//!   adaptive-grid integrator ([`area_in_polygon`]) that measures
//!   `area(region ∩ polygon)` — the quantity at the heart of the paper's
//!   *object presence* definition (Definition 1);
//! * exact circle–polygon intersection area ([`circle_polygon_area`]) used
//!   both as a fast path and to validate the grid integrator.
//!
//! All coordinates are `f64` metres. The crate is dependency-free.

pub mod area;
pub mod circle;
pub mod ellipse;
pub mod mbr;
pub mod point;
pub mod polygon;
pub mod region;
pub mod ring;
pub mod segment;

pub use area::{
    area_in_polygon, area_in_window, area_of_region, integration_probes, GridResolution,
};
pub use circle::{circle_circle_intersection_area, circle_polygon_area, Circle};
pub use ellipse::ExtendedEllipse;
pub use mbr::Mbr;
pub use point::{Point, Vec2};
pub use polygon::Polygon;
pub use region::{
    BoxedRegion, EmptyRegion, HalfPlane, Region, RegionDifference, RegionIntersection, RegionUnion,
};
pub use ring::Ring;
pub use segment::Segment;

/// Geometric tolerance used by predicates throughout the crate.
///
/// Coordinates are metres, so `1e-9` is a nanometre — far below any
/// physically meaningful distance in an indoor space.
pub const EPS: f64 = 1e-9;
