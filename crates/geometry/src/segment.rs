//! Line segments and their predicates.

use crate::mbr::Mbr;
use crate::point::{Point, Vec2};
use crate::EPS;

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    /// Creates the segment from `a` to `b`.
    pub const fn new(a: Point, b: Point) -> Segment {
        Segment { a, b }
    }

    /// Euclidean length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// The direction vector `b - a` (not normalized).
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Tight bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        Mbr::new(self.a, self.b)
    }

    /// The closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq <= EPS * EPS {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Whether the two segments share at least one point.
    ///
    /// Uses exact orientation tests with an epsilon guard; collinear
    /// overlapping segments are reported as intersecting.
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(a: Point, b: Point, c: Point) -> bool {
            // c is known collinear with ab; check it lies within the box.
            c.x >= a.x.min(b.x) - EPS
                && c.x <= a.x.max(b.x) + EPS
                && c.y >= a.y.min(b.y) - EPS
                && c.y <= a.y.max(b.y) + EPS
        }
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p3, p4, p1);
        let d2 = orient(p3, p4, p2);
        let d3 = orient(p1, p2, p3);
        let d4 = orient(p1, p2, p4);
        if ((d1 > EPS && d2 < -EPS) || (d1 < -EPS && d2 > EPS))
            && ((d3 > EPS && d4 < -EPS) || (d3 < -EPS && d4 > EPS))
        {
            return true;
        }
        (d1.abs() <= EPS && on_segment(p3, p4, p1))
            || (d2.abs() <= EPS && on_segment(p3, p4, p2))
            || (d3.abs() <= EPS && on_segment(p1, p2, p3))
            || (d4.abs() <= EPS && on_segment(p1, p2, p4))
    }

    /// The proper intersection point of the two segments' supporting lines,
    /// if it lies within both segments. Returns `None` for parallel or
    /// non-crossing segments (including collinear overlap, which has no
    /// unique intersection point).
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        if denom.abs() <= EPS {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert!((s.length() - 5.0).abs() < 1e-12);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point::new(5.0, 3.0)), Point::new(5.0, 0.0));
        assert_eq!(s.closest_point(Point::new(-4.0, 3.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point::new(14.0, 3.0)), Point::new(10.0, 0.0));
        assert!((s.distance_to_point(Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(0.0, 0.0, 2.0, 2.0);
        let b = seg(0.0, 2.0, 2.0, 0.0);
        assert!(a.intersects(&b));
        let p = a.intersection_point(&b).unwrap();
        assert!(p.distance(Point::new(1.0, 1.0)) < 1e-12);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection_point(&b).is_none());
    }

    #[test]
    fn touching_at_endpoint_intersects() {
        let a = seg(0.0, 0.0, 1.0, 1.0);
        let b = seg(1.0, 1.0, 2.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn collinear_overlap_detected() {
        let a = seg(0.0, 0.0, 2.0, 0.0);
        let b = seg(1.0, 0.0, 3.0, 0.0);
        assert!(a.intersects(&b));
        // No unique crossing point for collinear overlap.
        assert!(a.intersection_point(&b).is_none());
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
    }
}
