//! Points and vectors in the Euclidean plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A location in the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement in the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`; avoids the square root when
    /// only comparisons are needed.
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: returns `self` when `t == 0` and `other` when
    /// `t == 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Converts the point to the vector from the origin.
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// True when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product). Positive when
    /// `other` lies counter-clockwise of `self`.
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or `None` for a (near-)zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// The vector rotated 90° counter-clockwise.
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle of the vector in radians, in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, -2.0));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Vec2::new(3.0, 1.0);
        let p = v.perp();
        assert!(v.dot(p).abs() < 1e-12);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let u = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 1.0);
        let v = Vec2::new(2.0, 3.0);
        assert_eq!(a + v, Point::new(3.0, 4.0));
        assert_eq!((a + v) - v, a);
        assert_eq!(v * 2.0, Vec2::new(4.0, 6.0));
        assert_eq!(v / 2.0, Vec2::new(1.0, 1.5));
        assert_eq!(-v, Vec2::new(-2.0, -3.0));
    }
}
