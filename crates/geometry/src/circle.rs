//! Circles (proximity-detection ranges) and exact circle intersection areas.

use crate::mbr::Mbr;
use crate::point::{Point, Vec2};
use crate::polygon::Polygon;
use crate::EPS;

/// A closed disk: the detection range of a proximity-detection device
/// (RFID reader, Bluetooth radio) in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. The radius must be non-negative and finite.
    pub fn new(center: Point, radius: f64) -> Circle {
        debug_assert!(radius >= 0.0 && radius.is_finite(), "invalid radius {radius}");
        Circle { center, radius }
    }

    /// Whether `p` lies inside or on the circle.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius + EPS
    }

    /// Distance from `p` to the disk boundary measured from outside:
    /// zero for points inside the disk.
    ///
    /// This is the `max(0, |p − c| − r)` term of the extended-ellipse
    /// membership test.
    pub fn boundary_distance(&self, p: Point) -> f64 {
        (self.center.distance(p) - self.radius).max(0.0)
    }

    /// Exact disk area.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Tight bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        let r = Vec2::new(self.radius, self.radius);
        Mbr::from_bounds(self.center - r, self.center + r)
    }

    /// Whether the two disks share at least one point.
    pub fn intersects(&self, other: &Circle) -> bool {
        let rr = self.radius + other.radius;
        self.center.distance_sq(other.center) <= rr * rr + EPS
    }
}

/// Exact area of the intersection of two disks (the classic lens formula).
pub fn circle_circle_intersection_area(c1: &Circle, c2: &Circle) -> f64 {
    let d = c1.center.distance(c2.center);
    let (r1, r2) = (c1.radius, c2.radius);
    if d >= r1 + r2 {
        return 0.0;
    }
    if d <= (r1 - r2).abs() {
        let r = r1.min(r2);
        return std::f64::consts::PI * r * r;
    }
    let a1 = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0).acos();
    let a2 = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0).acos();
    let k = (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2);
    r1 * r1 * a1 + r2 * r2 * a2 - 0.5 * k.max(0.0).sqrt()
}

/// Exact area of the intersection of a disk and a simple polygon.
///
/// Decomposes the polygon into signed triangles fanned from the circle
/// centre; each triangle's intersection with the disk has a closed form
/// combining straight (triangle) and circular-sector pieces. The result is
/// orientation-independent.
///
/// This routine serves as the analytic ground truth for validating the
/// adaptive-grid integrator and as a fast path when an uncertainty region
/// degenerates to a single disk.
pub fn circle_polygon_area(circle: &Circle, polygon: &Polygon) -> f64 {
    if circle.radius <= EPS {
        return 0.0;
    }
    let o = circle.center;
    let r = circle.radius;
    let verts = polygon.vertices();
    let mut total = 0.0;
    for i in 0..verts.len() {
        let p1 = verts[i] - o;
        let p2 = verts[(i + 1) % verts.len()] - o;
        total += triangle_disk_area(p1, p2, r);
    }
    total.abs()
}

/// Signed area of `triangle(origin, p1, p2) ∩ disk(origin, r)`.
///
/// `p1` and `p2` are given relative to the disk centre. The sign follows the
/// orientation of `(p1, p2)` as seen from the origin.
fn triangle_disk_area(p1: Vec2, p2: Vec2, r: f64) -> f64 {
    let tri = |a: Vec2, b: Vec2| 0.5 * a.cross(b);
    let arc = |a: Vec2, b: Vec2| 0.5 * r * r * a.cross(b).atan2(a.dot(b));

    let in1 = p1.norm_sq() <= r * r;
    let in2 = p2.norm_sq() <= r * r;
    if in1 && in2 {
        return tri(p1, p2);
    }

    // Segment p(t) = p1 + t·d, t ∈ [0, 1]; solve |p(t)|² = r².
    let d = p2 - p1;
    let a = d.norm_sq();
    if a <= EPS * EPS {
        // Degenerate edge: zero-width triangle.
        return 0.0;
    }
    let b = 2.0 * p1.dot(d);
    let c = p1.norm_sq() - r * r;
    let disc = b * b - 4.0 * a * c;

    if in1 {
        // Exits the disk at the larger root.
        let t = (-b + disc.max(0.0).sqrt()) / (2.0 * a);
        let q = p1 + d * t.clamp(0.0, 1.0);
        return tri(p1, q) + arc(q, p2);
    }
    if in2 {
        // Enters the disk at the smaller root.
        let t = (-b - disc.max(0.0).sqrt()) / (2.0 * a);
        let q = p1 + d * t.clamp(0.0, 1.0);
        return arc(p1, q) + tri(q, p2);
    }

    // Both endpoints outside: the chord may still pass through the disk.
    if disc > 0.0 {
        let sq = disc.sqrt();
        let t1 = (-b - sq) / (2.0 * a);
        let t2 = (-b + sq) / (2.0 * a);
        if t1 > 0.0 && t2 < 1.0 && t1 < t2 {
            let q1 = p1 + d * t1;
            let q2 = p1 + d * t2;
            return arc(p1, q1) + tri(q1, q2) + arc(q2, p2);
        }
    }
    arc(p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn contains_and_boundary_distance() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(c.contains(Point::new(2.0, 0.0)));
        assert!(!c.contains(Point::new(2.1, 0.0)));
        assert_eq!(c.boundary_distance(Point::new(1.0, 0.0)), 0.0);
        assert!((c.boundary_distance(Point::new(5.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lens_area_limit_cases() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Disjoint.
        let b = Circle::new(Point::new(3.0, 0.0), 1.0);
        assert_eq!(circle_circle_intersection_area(&a, &b), 0.0);
        // Contained.
        let c = Circle::new(Point::new(0.1, 0.0), 0.5);
        assert!((circle_circle_intersection_area(&a, &c) - PI * 0.25).abs() < 1e-12);
        // Identical.
        assert!((circle_circle_intersection_area(&a, &a) - PI).abs() < 1e-12);
    }

    #[test]
    fn lens_area_half_overlap_is_symmetric() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(1.0, 0.0), 1.0);
        let area = circle_circle_intersection_area(&a, &b);
        let expected = 2.0 * (PI / 3.0 - (3.0f64).sqrt() / 4.0); // known value for d = r
        assert!((area - expected).abs() < 1e-12);
        assert_eq!(area, circle_circle_intersection_area(&b, &a));
    }

    #[test]
    fn polygon_inside_disk_gives_polygon_area() {
        let c = Circle::new(Point::new(0.5, 0.5), 10.0);
        let area = circle_polygon_area(&c, &unit_square());
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disk_inside_polygon_gives_disk_area() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.25);
        let area = circle_polygon_area(&c, &unit_square());
        assert!((area - PI * 0.0625).abs() < 1e-12);
    }

    #[test]
    fn disjoint_disk_and_polygon_give_zero() {
        let c = Circle::new(Point::new(10.0, 10.0), 1.0);
        assert!(circle_polygon_area(&c, &unit_square()).abs() < 1e-12);
    }

    #[test]
    fn quarter_disk_at_square_corner() {
        // Circle centred exactly on the square's corner: exactly one quarter
        // of the (small) disk lies inside.
        let c = Circle::new(Point::new(0.0, 0.0), 0.5);
        let area = circle_polygon_area(&c, &unit_square());
        assert!((area - PI * 0.25 * 0.25).abs() < 1e-9, "got {area}");
    }

    #[test]
    fn half_disk_on_square_edge() {
        let c = Circle::new(Point::new(0.5, 0.0), 0.25);
        let area = circle_polygon_area(&c, &unit_square());
        assert!((area - PI * 0.0625 / 2.0).abs() < 1e-9, "got {area}");
    }

    #[test]
    fn orientation_independent() {
        let c = Circle::new(Point::new(0.3, 0.4), 0.6);
        let ccw = unit_square();
        let cw = Polygon::new(ccw.vertices().iter().rev().copied().collect()).unwrap();
        let a1 = circle_polygon_area(&c, &ccw);
        let a2 = circle_polygon_area(&c, &cw);
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn chord_through_polygon_without_vertices_inside() {
        // Thin horizontal strip crossed by a large disk: both strip corners on
        // each vertical edge are outside the disk but the chord passes through.
        let strip = Polygon::rectangle(Point::new(-10.0, -0.1), Point::new(10.0, 0.1));
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let area = circle_polygon_area(&c, &strip);
        // Nearly a 2 × 0.2 rectangle (chord length ≈ 2r for small height).
        assert!(area > 0.35 && area < 0.4, "got {area}");
    }

    #[test]
    fn zero_radius_circle_has_zero_intersection() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.0);
        assert_eq!(circle_polygon_area(&c, &unit_square()), 0.0);
    }
}
