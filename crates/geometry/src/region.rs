//! Composable point-set regions.
//!
//! Uncertainty regions in the paper are intersections and unions of circles,
//! rings, and extended ellipses, further constrained by indoor topology. No
//! closed-form area exists for these composites, so regions are modelled as
//! *predicates with a bounding box*: a [`Region`] answers membership queries
//! and exposes an MBR, and the integrator in [`crate::area`] measures
//! intersection areas numerically.

use crate::circle::Circle;
use crate::ellipse::ExtendedEllipse;
use crate::mbr::Mbr;
use crate::point::{Point, Vec2};
use crate::polygon::Polygon;
use crate::ring::Ring;

/// A (possibly unbounded-in-shape, but MBR-bounded) point set in the plane.
///
/// Implementations must guarantee that every point with `contains(p) == true`
/// lies within `mbr()`; the integrator and the index structures rely on it.
pub trait Region {
    /// Whether `p` belongs to the region.
    fn contains(&self, p: Point) -> bool;

    /// A rectangle containing the whole region (need not be tight).
    fn mbr(&self) -> Mbr;

    /// Cheap emptiness check; `true` means certainly empty, `false` means
    /// possibly non-empty.
    fn is_empty_hint(&self) -> bool {
        self.mbr().is_empty()
    }
}

/// A heap-allocated, thread-safe region — the common currency of the
/// uncertainty-analysis code.
pub type BoxedRegion = Box<dyn Region + Send + Sync>;

impl Region for Circle {
    fn contains(&self, p: Point) -> bool {
        Circle::contains(self, p)
    }
    fn mbr(&self) -> Mbr {
        Circle::mbr(self)
    }
}

impl Region for Ring {
    fn contains(&self, p: Point) -> bool {
        Ring::contains(self, p)
    }
    fn mbr(&self) -> Mbr {
        Ring::mbr(self)
    }
    fn is_empty_hint(&self) -> bool {
        self.is_empty()
    }
}

impl Region for ExtendedEllipse {
    fn contains(&self, p: Point) -> bool {
        ExtendedEllipse::contains(self, p)
    }
    fn mbr(&self) -> Mbr {
        ExtendedEllipse::mbr(self)
    }
    fn is_empty_hint(&self) -> bool {
        self.is_empty()
    }
}

impl Region for Polygon {
    fn contains(&self, p: Point) -> bool {
        Polygon::contains(self, p)
    }
    fn mbr(&self) -> Mbr {
        Polygon::mbr(self)
    }
}

impl Region for Mbr {
    fn contains(&self, p: Point) -> bool {
        Mbr::contains(self, p)
    }
    fn mbr(&self) -> Mbr {
        *self
    }
}

impl<R: Region + ?Sized> Region for Box<R> {
    fn contains(&self, p: Point) -> bool {
        (**self).contains(p)
    }
    fn mbr(&self) -> Mbr {
        (**self).mbr()
    }
    fn is_empty_hint(&self) -> bool {
        (**self).is_empty_hint()
    }
}

impl<R: Region + ?Sized> Region for &R {
    fn contains(&self, p: Point) -> bool {
        (**self).contains(p)
    }
    fn mbr(&self) -> Mbr {
        (**self).mbr()
    }
    fn is_empty_hint(&self) -> bool {
        (**self).is_empty_hint()
    }
}

/// The region containing no points.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyRegion;

impl Region for EmptyRegion {
    fn contains(&self, _: Point) -> bool {
        false
    }
    fn mbr(&self) -> Mbr {
        Mbr::EMPTY
    }
    fn is_empty_hint(&self) -> bool {
        true
    }
}

/// The closed half-plane on the left of the directed line `a → b`
/// (including the line itself). Unbounded, so its MBR is the whole plane —
/// use only inside intersections.
#[derive(Debug, Clone, Copy)]
pub struct HalfPlane {
    pub a: Point,
    pub b: Point,
}

impl HalfPlane {
    /// The half-plane to the left of the line through `a` and `b`.
    pub fn left_of(a: Point, b: Point) -> HalfPlane {
        HalfPlane { a, b }
    }
}

impl Region for HalfPlane {
    fn contains(&self, p: Point) -> bool {
        (self.b - self.a).cross(p - self.a) >= -crate::EPS
    }
    fn mbr(&self) -> Mbr {
        let inf = f64::INFINITY;
        Mbr::from_bounds(Point::new(-inf, -inf), Point::new(inf, inf))
    }
    fn is_empty_hint(&self) -> bool {
        false
    }
}

/// Intersection of several regions: membership in all of them. The MBR is
/// the intersection of the member MBRs.
pub struct RegionIntersection {
    parts: Vec<BoxedRegion>,
    mbr: Mbr,
}

impl RegionIntersection {
    /// Builds the intersection of `parts`. An empty list is the (MBR-less)
    /// universal region, which is almost never intended — callers should
    /// supply at least one part.
    pub fn new(parts: Vec<BoxedRegion>) -> RegionIntersection {
        let mbr =
            parts.iter().map(|r| r.mbr()).reduce(|a, b| a.intersection(&b)).unwrap_or(Mbr::EMPTY);
        RegionIntersection { parts, mbr }
    }

    /// Convenience constructor for the common two-part case
    /// (e.g. `Ring ∩ Ring` in the inactive snapshot UR).
    pub fn of(
        a: impl Region + Send + Sync + 'static,
        b: impl Region + Send + Sync + 'static,
    ) -> RegionIntersection {
        RegionIntersection::new(vec![Box::new(a), Box::new(b)])
    }
}

impl Region for RegionIntersection {
    fn contains(&self, p: Point) -> bool {
        self.mbr.contains(p) && self.parts.iter().all(|r| r.contains(p))
    }
    fn mbr(&self) -> Mbr {
        self.mbr
    }
    fn is_empty_hint(&self) -> bool {
        self.mbr.is_empty() || self.parts.iter().any(|r| r.is_empty_hint())
    }
}

/// Union of several regions: membership in at least one. The MBR is the
/// union of the member MBRs.
///
/// Interval uncertainty regions are unions of up to hundreds of segments
/// (disks and ellipses along a trajectory), and the integrator probes
/// membership thousands of times per presence computation, so each part's
/// MBR is cached and checked before the (potentially expensive,
/// topology-aware) part predicate runs.
pub struct RegionUnion {
    parts: Vec<(Mbr, BoxedRegion)>,
    mbr: Mbr,
}

impl RegionUnion {
    /// Builds the union of `parts`; empty parts are harmless.
    pub fn new(parts: Vec<BoxedRegion>) -> RegionUnion {
        let parts: Vec<(Mbr, BoxedRegion)> = parts.into_iter().map(|r| (r.mbr(), r)).collect();
        let mbr = parts.iter().fold(Mbr::EMPTY, |m, (pm, _)| m.union(pm));
        RegionUnion { parts, mbr }
    }

    /// The member regions.
    pub fn parts(&self) -> impl Iterator<Item = &BoxedRegion> + '_ {
        self.parts.iter().map(|(_, r)| r)
    }
}

impl Region for RegionUnion {
    fn contains(&self, p: Point) -> bool {
        self.mbr.contains(p) && self.parts.iter().any(|(pm, r)| pm.contains(p) && r.contains(p))
    }
    fn mbr(&self) -> Mbr {
        self.mbr
    }
    fn is_empty_hint(&self) -> bool {
        self.parts.iter().all(|(_, r)| r.is_empty_hint())
    }
}

/// Set difference `base \ subtracted`.
pub struct RegionDifference {
    base: BoxedRegion,
    subtracted: BoxedRegion,
}

impl RegionDifference {
    /// Builds `base \ subtracted`.
    pub fn new(base: BoxedRegion, subtracted: BoxedRegion) -> RegionDifference {
        RegionDifference { base, subtracted }
    }
}

impl Region for RegionDifference {
    fn contains(&self, p: Point) -> bool {
        self.base.contains(p) && !self.subtracted.contains(p)
    }
    fn mbr(&self) -> Mbr {
        self.base.mbr()
    }
    fn is_empty_hint(&self) -> bool {
        self.base.is_empty_hint()
    }
}

/// A region transformed by translation; handy for tests and for reusing
/// canonical shapes.
pub struct TranslatedRegion<R> {
    pub inner: R,
    pub delta: Vec2,
}

impl<R: Region> Region for TranslatedRegion<R> {
    fn contains(&self, p: Point) -> bool {
        self.inner.contains(p - self.delta)
    }
    fn mbr(&self) -> Mbr {
        let m = self.inner.mbr();
        if m.is_empty() {
            m
        } else {
            Mbr::from_bounds(m.lo + self.delta, m.hi + self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn intersection_of_overlapping_disks() {
        let i = RegionIntersection::of(disk(0.0, 0.0, 2.0), disk(2.0, 0.0, 2.0));
        assert!(i.contains(Point::new(1.0, 0.0)));
        assert!(!i.contains(Point::new(-1.0, 0.0)));
        assert!(!i.contains(Point::new(3.5, 0.0)));
        assert!(!i.is_empty_hint());
    }

    #[test]
    fn intersection_of_disjoint_disks_is_empty_by_mbr() {
        let i = RegionIntersection::of(disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 1.0));
        assert!(i.is_empty_hint());
        assert!(!i.contains(Point::new(5.0, 0.0)));
    }

    #[test]
    fn union_membership_and_mbr() {
        let u =
            RegionUnion::new(vec![Box::new(disk(0.0, 0.0, 1.0)), Box::new(disk(10.0, 0.0, 1.0))]);
        assert!(u.contains(Point::new(0.5, 0.0)));
        assert!(u.contains(Point::new(10.5, 0.0)));
        assert!(!u.contains(Point::new(5.0, 0.0)));
        assert!(u.mbr().contains(Point::new(11.0, 0.0)));
    }

    #[test]
    fn difference_subtracts() {
        let d = RegionDifference::new(Box::new(disk(0.0, 0.0, 2.0)), Box::new(disk(0.0, 0.0, 1.0)));
        assert!(!d.contains(Point::new(0.0, 0.0)));
        assert!(d.contains(Point::new(1.5, 0.0)));
        assert!(!d.contains(Point::new(2.5, 0.0)));
    }

    #[test]
    fn half_plane_sides() {
        let h = HalfPlane::left_of(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!(h.contains(Point::new(0.0, 1.0)));
        assert!(h.contains(Point::new(5.0, 0.0))); // on the line
        assert!(!h.contains(Point::new(0.0, -1.0)));
    }

    #[test]
    fn empty_region_contains_nothing() {
        assert!(!EmptyRegion.contains(Point::new(0.0, 0.0)));
        assert!(EmptyRegion.is_empty_hint());
    }

    #[test]
    fn translated_region_moves_membership() {
        let t = TranslatedRegion { inner: disk(0.0, 0.0, 1.0), delta: Vec2::new(5.0, 0.0) };
        assert!(t.contains(Point::new(5.0, 0.0)));
        assert!(!t.contains(Point::new(0.0, 0.0)));
        assert!(t.mbr().contains(Point::new(6.0, 0.0)));
    }

    #[test]
    fn mbr_invariant_holds_for_composites() {
        let u = RegionUnion::new(vec![
            Box::new(disk(1.0, 1.0, 0.5)),
            Box::new(Ring::new(disk(4.0, 1.0, 0.5), 1.0)),
        ]);
        let m = u.mbr();
        for i in 0..200 {
            for j in 0..60 {
                let p = Point::new(i as f64 * 0.05 - 1.0, j as f64 * 0.1 - 1.0);
                if u.contains(p) {
                    assert!(m.contains(p));
                }
            }
        }
    }
}
