//! The Pfoser–Jensen extended ellipse bounding an object between two
//! consecutive proximity detections.

use crate::circle::Circle;
use crate::mbr::Mbr;
use crate::point::{Point, Vec2};
use crate::EPS;

/// The paper's `Θ(dev_i, dev_j, t1, t2)` (Section 3.1.3): the region an
/// object can occupy between leaving device `i`'s detection range at `t1`
/// and entering device `j`'s range at `t2`, moving at most at speed
/// `V_max`.
///
/// Membership test: a point `q` is feasible iff
///
/// ```text
/// max(0, |q − c_i| − r_i) + max(0, |q − c_j| − r_j) ≤ V_max · (t2 − t1)
/// ```
///
/// i.e. the classical two-focus ellipse generalized to *circular* foci — the
/// union over all boundary exit/entry point pairs of the ordinary ellipses
/// with those foci. When both detection circles coincide the region
/// degenerates to a disk around that device.
///
/// The paper represents the inter-reading uncertainty region as the extended
/// ellipse *excluding* the two detection disks (the object would have been
/// detected inside them), but keeps `Θ` as the complete ellipse region for
/// the algorithms' MBR computations. This type exposes both membership
/// variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedEllipse {
    /// Detection circle of the device that last saw the object.
    pub from: Circle,
    /// Detection circle of the device that next saw the object.
    pub to: Circle,
    /// Maximum travel distance `V_max · (t2 − t1)` between the detections.
    pub budget: f64,
}

impl ExtendedEllipse {
    /// Creates the extended ellipse for the given device circles and travel
    /// budget (`V_max · Δt`).
    pub fn new(from: Circle, to: Circle, budget: f64) -> ExtendedEllipse {
        ExtendedEllipse { from, to, budget }
    }

    /// Gap between the two detection-circle boundaries: the minimum distance
    /// an object must travel from one range to the other.
    pub fn boundary_gap(&self) -> f64 {
        (self.from.center.distance(self.to.center) - self.from.radius - self.to.radius).max(0.0)
    }

    /// Whether the region is empty — the travel budget cannot even bridge
    /// the gap between the two detection ranges. Inconsistent (noisy) data
    /// can produce this; the query algorithms treat it as an empty UR.
    pub fn is_empty(&self) -> bool {
        self.budget < -EPS || self.boundary_gap() > self.budget + EPS
    }

    /// Membership in the complete ellipse region `Θ` (detection disks
    /// included).
    pub fn contains(&self, q: Point) -> bool {
        if self.budget < -EPS {
            return false;
        }
        self.from.boundary_distance(q) + self.to.boundary_distance(q) <= self.budget + EPS
    }

    /// Membership in the inter-reading uncertainty region: the ellipse
    /// *excluding* both detection disks (Figure 3's shaded construction).
    pub fn contains_excluding_ranges(&self, q: Point) -> bool {
        self.contains(q) && !self.from.contains(q) && !self.to.contains(q)
    }

    /// A tight bounding rectangle.
    ///
    /// Every feasible point `q` satisfies
    /// `|q − c_i| + |q − c_j| ≤ budget + r_i + r_j`, i.e. lies within the
    /// classical ellipse with foci at the device centres and distance sum
    /// `s = budget + r_i + r_j`. The returned MBR is the exact axis-aligned
    /// box of that ellipse — a superset of `Θ`, which is what the index
    /// structures need.
    pub fn mbr(&self) -> Mbr {
        if self.is_empty() {
            return Mbr::EMPTY;
        }
        let s = self.budget + self.from.radius + self.to.radius;
        let f1 = self.from.center;
        let f2 = self.to.center;
        let c = f1.distance(f2) / 2.0; // focal half-distance
        let a = s / 2.0; // semi-major axis
        if a <= c + EPS {
            // Degenerate: the feasible set collapses to (nearly) the focal
            // segment; bound it with a hair of slack.
            return Mbr::new(f1, f2).expanded(EPS.sqrt());
        }
        let b = (a * a - c * c).sqrt(); // semi-minor axis
        let center = f1.midpoint(f2);
        let dir = (f2 - f1).normalized().unwrap_or(Vec2::new(1.0, 0.0));
        let (cos_t, sin_t) = (dir.x, dir.y);
        // Half-extents of a rotated ellipse's axis-aligned bounding box.
        let ex = ((a * cos_t).powi(2) + (b * sin_t).powi(2)).sqrt();
        let ey = ((a * sin_t).powi(2) + (b * cos_t).powi(2)).sqrt();
        Mbr::from_bounds(
            Point::new(center.x - ex, center.y - ey),
            Point::new(center.x + ex, center.y + ey),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    #[test]
    fn point_foci_reduce_to_classic_ellipse() {
        // Zero-radius foci at (±1, 0), distance sum 4 => semi-major 2,
        // semi-minor sqrt(3).
        let e = ExtendedEllipse::new(circle(-1.0, 0.0, 0.0), circle(1.0, 0.0, 0.0), 4.0);
        assert!(e.contains(Point::new(2.0, 0.0)));
        assert!(e.contains(Point::new(0.0, 3.0f64.sqrt())));
        assert!(!e.contains(Point::new(2.01, 0.0)));
        assert!(!e.contains(Point::new(0.0, 1.74)));
        let m = e.mbr();
        assert!((m.hi.x - 2.0).abs() < 1e-9);
        assert!((m.hi.y - 3.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn circular_foci_extend_the_ellipse() {
        let e = ExtendedEllipse::new(circle(-1.0, 0.0, 0.5), circle(1.0, 0.0, 0.5), 4.0);
        // A point on the major axis at distance: boundary distances are
        // (x - (-1) - 0.5) + (x - 1 - 0.5) for x > 1.5.
        assert!(e.contains(Point::new(2.5, 0.0))); // 3.0 + 1.0 = 4.0 budget
        assert!(!e.contains(Point::new(2.6, 0.0)));
        // Inside either detection disk the boundary distance is zero.
        assert!(e.contains(Point::new(-1.0, 0.0)));
    }

    #[test]
    fn exclusion_variant_removes_detection_disks() {
        let e = ExtendedEllipse::new(circle(-1.0, 0.0, 0.5), circle(1.0, 0.0, 0.5), 4.0);
        assert!(e.contains(Point::new(-1.0, 0.0)));
        assert!(!e.contains_excluding_ranges(Point::new(-1.0, 0.0)));
        assert!(e.contains_excluding_ranges(Point::new(0.0, 0.5)));
    }

    #[test]
    fn infeasible_budget_is_empty() {
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 1.0), circle(10.0, 0.0, 1.0), 2.0);
        assert!(e.is_empty());
        assert!(e.mbr().is_empty());
        // Membership inside a detection disk still holds geometrically, but
        // the region is flagged empty and skipped by callers.
        assert!(e.boundary_gap() > e.budget);
    }

    #[test]
    fn exact_budget_bridges_the_gap() {
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 1.0), circle(10.0, 0.0, 1.0), 8.0);
        assert!(!e.is_empty());
        // Only the straight line between the circles is feasible.
        assert!(e.contains(Point::new(5.0, 0.0)));
        assert!(!e.contains(Point::new(5.0, 1.0)));
    }

    #[test]
    fn same_device_degenerates_to_disk() {
        // Object left and re-entered the same reader: feasible set is the
        // disk of radius r + budget/2 around the device.
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 1.0), circle(0.0, 0.0, 1.0), 2.0);
        assert!(e.contains(Point::new(2.0, 0.0))); // boundary distance 1+1=2
        assert!(!e.contains(Point::new(2.1, 0.0)));
        let m = e.mbr();
        assert!(m.contains(Point::new(2.0, 0.0)));
    }

    #[test]
    fn mbr_contains_all_member_points_sampled() {
        let e = ExtendedEllipse::new(circle(2.0, 3.0, 0.8), circle(7.0, 5.0, 1.2), 6.0);
        let m = e.mbr();
        // Dense sampling of the bounding box of a generous super-region.
        let sup = m.expanded(1.0);
        let steps = 80;
        for i in 0..=steps {
            for j in 0..=steps {
                let p = Point::new(
                    sup.lo.x + sup.width() * i as f64 / steps as f64,
                    sup.lo.y + sup.height() * j as f64 / steps as f64,
                );
                if e.contains(p) {
                    assert!(m.contains(p), "member point {p} outside mbr");
                }
            }
        }
    }

    #[test]
    fn negative_budget_is_empty_and_contains_nothing() {
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 1.0), circle(1.0, 0.0, 1.0), -0.5);
        assert!(e.is_empty());
        assert!(!e.contains(Point::new(0.0, 0.0)));
        assert!(e.mbr().is_empty());
    }

    #[test]
    fn zero_budget_with_overlapping_ranges_is_their_union_region() {
        // Touching circles, zero travel budget: only points inside either
        // detection disk are feasible (both boundary distances zero only
        // when inside both... inside either makes one term zero; the other
        // must also be zero, so the intersection).
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 1.0), circle(1.0, 0.0, 1.0), 0.0);
        assert!(!e.is_empty());
        // A point in the lens of both circles is feasible.
        assert!(e.contains(Point::new(0.5, 0.0)));
        // Inside only the first circle: distance to the second is positive.
        assert!(!e.contains(Point::new(-0.5, 0.0)));
    }

    #[test]
    fn mbr_is_tight_on_the_major_axis() {
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 1.0), circle(6.0, 0.0, 1.0), 8.0);
        let m = e.mbr();
        // Distance-sum bound s = 8 + 2 = 10, foci distance 6 → semi-major 5
        // around centre (3, 0): x ∈ [-2, 8].
        assert!((m.lo.x - (-2.0)).abs() < 1e-9, "{m:?}");
        assert!((m.hi.x - 8.0).abs() < 1e-9, "{m:?}");
        // Extreme major-axis points are genuinely members.
        assert!(e.contains(Point::new(-2.0, 0.0)));
        assert!(e.contains(Point::new(8.0, 0.0)));
    }

    #[test]
    fn rotated_ellipse_mbr_still_bounds() {
        // Budget 5.0 exceeds the worst-case boundary-distance sum along
        // the focal segment (4.5, at either focus centre), so every
        // segment point is genuinely a member.
        let e = ExtendedEllipse::new(circle(0.0, 0.0, 0.5), circle(3.0, 4.0, 0.5), 5.0);
        let m = e.mbr();
        for i in 0..100 {
            let t = i as f64 / 99.0;
            // Walk the focal segment, certainly inside.
            let p = Point::new(3.0 * t, 4.0 * t);
            assert!(e.contains(p));
            assert!(m.contains(p));
        }
    }
}
