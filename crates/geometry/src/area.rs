//! Deterministic adaptive-grid area integration.
//!
//! The paper's presence measure (Definition 1) needs
//! `area(UR(o) ∩ p)` where `UR(o)` is a composite of circles, rings, and
//! extended ellipses clipped by indoor topology — no closed form exists.
//! This module integrates the membership indicator on a regular grid over
//! the intersection of bounding boxes, super-sampling cells that straddle a
//! boundary. The scheme is fully deterministic (identical inputs give
//! identical areas), which keeps query results reproducible and lets the
//! top-k algorithms compare flows exactly.

use crate::mbr::Mbr;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::region::Region;
use std::cell::Cell;

thread_local! {
    static PROBES: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic per-thread count of membership probes issued by the grid
/// integrator (corner lattice + cell centres + super-samples).
///
/// Observability hook: profilers snapshot it before and after a query
/// and report the delta as "grid probes" — the number of point-in-region
/// tests the query's presence integrations cost. Wraps on overflow
/// (never in practice).
pub fn integration_probes() -> u64 {
    PROBES.with(|c| c.get())
}

/// Grid resolution parameters for the integrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridResolution {
    /// Number of cells per axis of the base grid.
    pub base: usize,
    /// Sub-samples per axis inside boundary cells.
    pub supersample: usize,
}

impl GridResolution {
    /// Creates a resolution; both parameters must be at least 1.
    pub fn new(base: usize, supersample: usize) -> GridResolution {
        assert!(base >= 1 && supersample >= 1, "resolution parameters must be >= 1");
        GridResolution { base, supersample }
    }

    /// A coarse resolution for quick estimates (32×32, 2×2 refinement).
    pub const COARSE: GridResolution = GridResolution { base: 32, supersample: 2 };
    /// The default resolution (64×64 base, 4×4 refinement in boundary
    /// cells); < 1% relative error on circle–polygon benchmarks.
    pub const DEFAULT: GridResolution = GridResolution { base: 64, supersample: 4 };
    /// A fine resolution for validation runs (160×160, 6×6 refinement).
    pub const FINE: GridResolution = GridResolution { base: 160, supersample: 6 };
}

impl Default for GridResolution {
    fn default() -> Self {
        GridResolution::DEFAULT
    }
}

/// Area of `region ∩ polygon`.
///
/// Integrates over `region.mbr() ∩ polygon.mbr()`. Cells whose four corners
/// and centre agree on membership are counted whole; straddling cells are
/// super-sampled. Returns `0.0` for empty intersections.
pub fn area_in_polygon(
    region: &(impl Region + ?Sized),
    polygon: &Polygon,
    res: GridResolution,
) -> f64 {
    let window = region.mbr().intersection(&polygon.mbr());
    // The polygon test is far cheaper than a composite (possibly
    // topology-constrained) region test, so it goes first.
    integrate(&|p| polygon.contains_fast(p) && region.contains(p), window, res)
}

/// Area of the region itself, integrated over its own MBR.
pub fn area_of_region(region: &(impl Region + ?Sized), res: GridResolution) -> f64 {
    integrate(&|p| region.contains(p), region.mbr(), res)
}

/// Area of `region` restricted to an explicit window rectangle.
pub fn area_in_window(region: &(impl Region + ?Sized), window: Mbr, res: GridResolution) -> f64 {
    let window = region.mbr().intersection(&window);
    integrate(&|p| region.contains(p), window, res)
}

fn integrate(inside: &dyn Fn(Point) -> bool, window: Mbr, res: GridResolution) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let w = window.width();
    let h = window.height();
    if w <= 0.0 || h <= 0.0 {
        return 0.0;
    }
    let n = res.base;
    let dx = w / n as f64;
    let dy = h / n as f64;
    let cell_area = dx * dy;

    // Corner membership is shared between neighbouring cells; precompute the
    // (n+1)×(n+1) lattice once so each corner is evaluated a single time.
    let mut corners = vec![false; (n + 1) * (n + 1)];
    for j in 0..=n {
        let y = window.lo.y + dy * j as f64;
        for i in 0..=n {
            let x = window.lo.x + dx * i as f64;
            corners[j * (n + 1) + i] = inside(Point::new(x, y));
        }
    }

    let mut probes = ((n + 1) * (n + 1)) as u64;

    let s = res.supersample;
    let sub_area = cell_area / (s * s) as f64;
    let mut total = 0.0;
    for j in 0..n {
        let y0 = window.lo.y + dy * j as f64;
        for i in 0..n {
            let x0 = window.lo.x + dx * i as f64;
            let c00 = corners[j * (n + 1) + i];
            let c10 = corners[j * (n + 1) + i + 1];
            let c01 = corners[(j + 1) * (n + 1) + i];
            let c11 = corners[(j + 1) * (n + 1) + i + 1];
            probes += 1;
            let center = inside(Point::new(x0 + 0.5 * dx, y0 + 0.5 * dy));
            let all_in = c00 && c10 && c01 && c11 && center;
            let all_out = !c00 && !c10 && !c01 && !c11 && !center;
            if all_in {
                total += cell_area;
            } else if all_out {
                // Uniformly empty cell — but a thin feature could still pass
                // through; the base resolution is chosen so features of
                // interest span multiple cells.
            } else {
                // Boundary cell: super-sample at sub-cell centres.
                probes += (s * s) as u64;
                let mut hits = 0usize;
                for sj in 0..s {
                    let y = y0 + dy * (sj as f64 + 0.5) / s as f64;
                    for si in 0..s {
                        let x = x0 + dx * (si as f64 + 0.5) / s as f64;
                        if inside(Point::new(x, y)) {
                            hits += 1;
                        }
                    }
                }
                total += hits as f64 * sub_area;
            }
        }
    }
    PROBES.with(|c| c.set(c.get().wrapping_add(probes)));
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circle::{circle_polygon_area, Circle};
    use crate::ellipse::ExtendedEllipse;
    use crate::region::{RegionIntersection, RegionUnion};
    use crate::ring::Ring;
    use std::f64::consts::PI;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn rectangle_in_rectangle_is_exact() {
        let outer = square(0.0, 0.0, 4.0, 4.0);
        let inner = square(1.0, 1.0, 3.0, 2.0);
        let a = area_in_polygon(&inner, &outer, GridResolution::DEFAULT);
        assert!((a - 2.0).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn circle_in_polygon_matches_exact_formula() {
        let poly = square(0.0, 0.0, 3.0, 3.0);
        for (cx, cy, r) in [
            (1.5, 1.5, 1.0), // fully inside
            (0.0, 1.5, 1.0), // half in
            (0.0, 0.0, 1.0), // quarter in
            (1.5, 1.5, 5.0), // polygon fully inside circle
            (2.8, 2.8, 0.5), // corner overlap
        ] {
            let c = Circle::new(Point::new(cx, cy), r);
            let exact = circle_polygon_area(&c, &poly);
            let approx = area_in_polygon(&c, &poly, GridResolution::DEFAULT);
            let tol = (0.01 * exact).max(5e-3);
            assert!(
                (approx - exact).abs() < tol,
                "circle ({cx},{cy},{r}): approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn finer_grids_reduce_error() {
        let poly = square(0.0, 0.0, 3.0, 3.0);
        let c = Circle::new(Point::new(0.7, 1.1), 1.3);
        let exact = circle_polygon_area(&c, &poly);
        let coarse = (area_in_polygon(&c, &poly, GridResolution::COARSE) - exact).abs();
        let fine = (area_in_polygon(&c, &poly, GridResolution::FINE) - exact).abs();
        assert!(fine <= coarse, "fine {fine} should not exceed coarse {coarse}");
        assert!(fine / exact < 1e-3);
    }

    #[test]
    fn ring_area_against_analytic() {
        let ring = Ring::new(Circle::new(Point::new(0.0, 0.0), 1.0), 1.0);
        let a = area_of_region(&ring, GridResolution::FINE);
        assert!((a - ring.area()).abs() / ring.area() < 5e-3, "got {a}");
    }

    #[test]
    fn ring_polygon_intersection_respects_hole() {
        // A polygon entirely inside the ring's inner disk intersects nothing.
        let ring = Ring::new(Circle::new(Point::new(0.0, 0.0), 2.0), 1.0);
        let hole_poly = square(-0.5, -0.5, 0.5, 0.5);
        let a = area_in_polygon(&ring, &hole_poly, GridResolution::DEFAULT);
        assert!(a.abs() < 1e-9, "got {a}");
    }

    #[test]
    fn intersection_region_integrates() {
        // Two unit disks at distance 1: lens area has a closed form.
        let c1 = Circle::new(Point::new(0.0, 0.0), 1.0);
        let c2 = Circle::new(Point::new(1.0, 0.0), 1.0);
        let lens = RegionIntersection::of(c1, c2);
        let exact = crate::circle::circle_circle_intersection_area(&c1, &c2);
        let approx = area_of_region(&lens, GridResolution::FINE);
        assert!((approx - exact).abs() / exact < 5e-3, "approx {approx} exact {exact}");
    }

    #[test]
    fn union_region_integrates_with_overlap_counted_once() {
        let c1 = Circle::new(Point::new(0.0, 0.0), 1.0);
        let c2 = Circle::new(Point::new(1.0, 0.0), 1.0);
        let u = RegionUnion::new(vec![Box::new(c1), Box::new(c2)]);
        let exact = 2.0 * PI - crate::circle::circle_circle_intersection_area(&c1, &c2);
        let approx = area_of_region(&u, GridResolution::FINE);
        assert!((approx - exact).abs() / exact < 5e-3, "approx {approx} exact {exact}");
    }

    #[test]
    fn ellipse_area_sanity() {
        // Point foci => classic ellipse, area = π·a·b.
        let e = ExtendedEllipse::new(
            Circle::new(Point::new(-1.0, 0.0), 0.0),
            Circle::new(Point::new(1.0, 0.0), 0.0),
            4.0,
        );
        let a = 2.0; // semi-major
        let b = 3.0f64.sqrt(); // semi-minor
        let exact = PI * a * b;
        let approx = area_of_region(&e, GridResolution::FINE);
        assert!((approx - exact).abs() / exact < 5e-3, "approx {approx} exact {exact}");
    }

    #[test]
    fn empty_window_returns_zero() {
        let c = Circle::new(Point::new(10.0, 10.0), 1.0);
        let poly = square(0.0, 0.0, 1.0, 1.0);
        assert_eq!(area_in_polygon(&c, &poly, GridResolution::DEFAULT), 0.0);
    }

    #[test]
    fn window_restriction() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let right_half = Mbr::new(Point::new(0.0, -2.0), Point::new(2.0, 2.0));
        let a = area_in_window(&c, right_half, GridResolution::FINE);
        assert!((a - PI / 2.0).abs() / (PI / 2.0) < 5e-3, "got {a}");
    }

    #[test]
    fn determinism() {
        let c = Circle::new(Point::new(0.3, 0.7), 1.1);
        let poly = square(0.0, 0.0, 2.0, 2.0);
        let a1 = area_in_polygon(&c, &poly, GridResolution::DEFAULT);
        let a2 = area_in_polygon(&c, &poly, GridResolution::DEFAULT);
        assert_eq!(a1, a2);
    }
}
