//! Minimum bounding rectangles (axis-aligned).

use crate::point::Point;

/// An axis-aligned minimum bounding rectangle.
///
/// `Mbr` is the workhorse of the index structures: every region exposes one,
/// the R-trees store them, and the join algorithms prune with them. An `Mbr`
/// may be *empty* (`lo > hi` on some axis), which all operations treat as the
/// neutral element for union and the absorbing element for intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    pub lo: Point,
    pub hi: Point,
}

impl Mbr {
    /// The canonical empty MBR.
    pub const EMPTY: Mbr = Mbr {
        lo: Point::new(f64::INFINITY, f64::INFINITY),
        hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Builds an MBR from two corner points given in any order.
    pub fn new(a: Point, b: Point) -> Mbr {
        Mbr {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Builds an MBR from explicit bounds. Callers must ensure `lo <= hi`
    /// component-wise unless an empty MBR is intended.
    pub const fn from_bounds(lo: Point, hi: Point) -> Mbr {
        Mbr { lo, hi }
    }

    /// The tightest MBR enclosing all `points`; empty for an empty slice.
    pub fn from_points(points: &[Point]) -> Mbr {
        points.iter().fold(Mbr::EMPTY, |m, &p| m.extended(p))
    }

    /// Whether this MBR contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Width along the x axis (zero for empty MBRs).
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Height along the y axis (zero for empty MBRs).
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Area of the rectangle (zero for empty MBRs).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half of the perimeter; a common R-tree split heuristic metric.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point. Meaningless for empty MBRs.
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// Whether the two rectangles share at least one point (closed-set
    /// semantics: touching boundaries intersect).
    pub fn intersects(&self, other: &Mbr) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The intersection rectangle (empty when disjoint).
    pub fn intersection(&self, other: &Mbr) -> Mbr {
        let m = Mbr {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        };
        if m.is_empty() {
            Mbr::EMPTY
        } else {
            m
        }
    }

    /// The smallest MBR containing both rectangles.
    pub fn union(&self, other: &Mbr) -> Mbr {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Mbr {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// The smallest MBR containing both `self` and `p`.
    pub fn extended(&self, p: Point) -> Mbr {
        if self.is_empty() {
            return Mbr { lo: p, hi: p };
        }
        Mbr {
            lo: Point::new(self.lo.x.min(p.x), self.lo.y.min(p.y)),
            hi: Point::new(self.hi.x.max(p.x), self.hi.y.max(p.y)),
        }
    }

    /// The rectangle grown by `margin` on every side.
    ///
    /// The join algorithms use this to extend a device's detection-range MBR
    /// by the maximum distance an object can have moved (Algorithm 2,
    /// lines 6–7). A negative margin shrinks the rectangle and may empty it.
    pub fn expanded(&self, margin: f64) -> Mbr {
        if self.is_empty() {
            return Mbr::EMPTY;
        }
        let m = Mbr {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        };
        if m.is_empty() {
            Mbr::EMPTY
        } else {
            m
        }
    }

    /// Growth in area needed to include `other`; the classic R-tree
    /// insertion heuristic.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance from `p` to any point of the rectangle (0 inside).
    pub fn min_distance(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(x0: f64, y0: f64, x1: f64, y1: f64) -> Mbr {
        Mbr::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn empty_behaves_as_neutral_element() {
        let a = mbr(0.0, 0.0, 2.0, 2.0);
        assert!(Mbr::EMPTY.is_empty());
        assert_eq!(Mbr::EMPTY.union(&a), a);
        assert_eq!(a.union(&Mbr::EMPTY), a);
        assert!(a.intersection(&Mbr::EMPTY).is_empty());
        assert!(!a.intersects(&Mbr::EMPTY));
        assert_eq!(Mbr::EMPTY.area(), 0.0);
    }

    #[test]
    fn new_normalizes_corner_order() {
        let a = Mbr::new(Point::new(2.0, 3.0), Point::new(-1.0, 1.0));
        assert_eq!(a, mbr(-1.0, 1.0, 2.0, 3.0));
    }

    #[test]
    fn intersection_and_union() {
        let a = mbr(0.0, 0.0, 4.0, 4.0);
        let b = mbr(2.0, 2.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), mbr(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.union(&b), mbr(0.0, 0.0, 6.0, 6.0));

        let c = mbr(5.0, 5.0, 7.0, 7.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn touching_boundaries_intersect() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn expanded_grows_each_side() {
        let a = mbr(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.expanded(0.5), mbr(0.5, 0.5, 2.5, 2.5));
        assert!(a.expanded(-1.0).is_empty());
    }

    #[test]
    fn containment() {
        let a = mbr(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains(Point::new(0.0, 0.0)));
        assert!(a.contains(Point::new(4.0, 4.0)));
        assert!(!a.contains(Point::new(4.1, 0.0)));
        assert!(a.contains_mbr(&mbr(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_mbr(&mbr(1.0, 1.0, 5.0, 2.0)));
        assert!(a.contains_mbr(&Mbr::EMPTY));
    }

    #[test]
    fn min_distance_cases() {
        let a = mbr(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_distance(Point::new(1.0, 1.0)), 0.0);
        assert!((a.min_distance(Point::new(5.0, 2.0)) - 3.0).abs() < 1e-12);
        assert!((a.min_distance(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.5), Point::new(3.0, 2.0)];
        let m = Mbr::from_points(&pts);
        for p in pts {
            assert!(m.contains(p));
        }
        assert_eq!(m, mbr(-2.0, 0.5, 3.0, 5.0));
    }

    #[test]
    fn enlargement_metric() {
        let a = mbr(0.0, 0.0, 2.0, 2.0);
        let b = mbr(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.enlargement(&b), 4.0);
        assert_eq!(b.enlargement(&a), 0.0);
    }

    #[test]
    fn union_and_intersection_are_commutative() {
        let a = mbr(0.0, 0.0, 3.0, 3.0);
        let b = mbr(1.0, -1.0, 2.0, 5.0);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn margin_and_center() {
        let a = mbr(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), Point::new(2.0, 1.0));
        assert_eq!(Mbr::EMPTY.margin(), 0.0);
    }

    #[test]
    fn expanded_empty_stays_empty() {
        assert!(Mbr::EMPTY.expanded(5.0).is_empty());
    }
}
