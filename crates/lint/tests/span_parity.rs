//! Span-parity property test: the AST layer (`ast::parse_fns`) and the
//! token-stream indexer (`items::index_fns`) are two independent walks
//! over the same token stream, and every interprocedural rule assumes
//! they agree. This test runs both over every file in the *real*
//! workspace and compares them function-by-function on every shared
//! field. A disagreement here means one of the two parsers mis-tracks
//! brace depth or signature extent on live code — exactly the kind of
//! drift that silently truncates call graphs.

use std::path::Path;

use inflow_lint::{ast, collect_sources};

#[test]
fn ast_and_items_agree_on_every_workspace_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = collect_sources(&root).expect("collecting workspace sources");
    assert!(files.len() > 50, "workspace walk looks truncated: {} files", files.len());

    let mut total_fns = 0usize;
    for file in &files {
        let from_ast = ast::parse_fns(&file.toks);
        assert_eq!(
            from_ast.len(),
            file.fns.len(),
            "{}: ast sees {} fns, items sees {}\nast: {:?}\nitems: {:?}",
            file.rel,
            from_ast.len(),
            file.fns.len(),
            from_ast.iter().map(|f| (&f.name, f.line)).collect::<Vec<_>>(),
            file.fns.iter().map(|f| (&f.name, f.line)).collect::<Vec<_>>(),
        );
        for (a, i) in from_ast.iter().zip(&file.fns) {
            let ctx = format!("{}:{} fn {}", file.rel, i.line, i.name);
            assert_eq!(a.name, i.name, "{ctx}: name");
            assert_eq!(a.impl_type, i.impl_type, "{ctx}: impl type");
            assert_eq!(a.line, i.line, "{ctx}: line");
            assert_eq!(a.in_test, i.in_test, "{ctx}: in_test");
            assert_eq!(a.sig, i.sig, "{ctx}: signature token span");
            assert_eq!(a.body, i.body, "{ctx}: body token span");
        }
        total_fns += from_ast.len();
    }
    assert!(total_fns > 500, "only {total_fns} fns parsed — parser regression?");
}
