//! IL002 multi-hop helpers: the panic lives at the bottom of the chain.

pub fn fold_all(rows: &[u64]) -> u64 {
    pick_first(rows)
}

fn pick_first(rows: &[u64]) -> u64 {
    *rows.first().unwrap()
}
