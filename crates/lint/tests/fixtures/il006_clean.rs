//! IL006 clean twin: both paths acquire `names` before `stats`, so the
//! acquisition-order graph is acyclic.

pub struct Registry {
    names: std::sync::Mutex<Vec<String>>,
    stats: std::sync::Mutex<Vec<u64>>,
}

pub fn record(r: &Registry) {
    let g = r.names.lock();
    bump(r);
}

fn bump(r: &Registry) {
    let g = r.stats.lock();
    g.push(1);
}

pub fn report(r: &Registry) {
    let g = r.names.lock();
    count(r);
}

fn count(r: &Registry) {
    let g = r.stats.lock();
    g.push(0);
}
