//! IL002 multi-hop root: a public store entry point whose panic is two
//! calls away, in another crate's helper file.

pub fn rollup(rows: &[u64]) -> u64 {
    fold_all(rows)
}
