//! IL009 clean twin: the recompute path is pure — it reads its own
//! state, computes, and hands output to a channel the writers drain.

pub struct Engine {
    totals: Vec<u64>,
    out: std::sync::mpsc::Sender<u64>,
}

impl Engine {
    pub fn apply_delta(&mut self, delta: u64) {
        let next = self.fold(delta);
        self.totals.push(next);
        let _ = self.out.send(next);
    }

    fn fold(&self, delta: u64) -> u64 {
        let mut acc = delta;
        for t in &self.totals {
            acc = acc.wrapping_add(*t);
        }
        acc
    }
}
