//! IL001 fixture: NaN-unsafe float ordering via `partial_cmp`.

pub fn sort_flows(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}
