//! IL004 fixture: a re-spelled format magic and a raw LE parse outside
//! the framing module.

pub const HEADER: &[u8; 8] = b"IFWAL001";

pub fn parse_len(b: [u8; 4]) -> u32 {
    u32::from_le_bytes(b)
}
