//! IL007 clean twin: encoder and decoder agree with the declared
//! `ranked` layout field-for-field.

pub fn encode_ranked(ranked: &[(PoiId, f64)]) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + ranked.len() * 12);
    b.extend_from_slice(&(ranked.len() as u32).to_le_bytes());
    for &(p, f) in ranked {
        b.extend_from_slice(&p.0.to_le_bytes());
        b.extend_from_slice(&f.to_le_bytes());
    }
    b
}

pub fn decode_ranked(payload: &[u8]) -> io::Result<Vec<(PoiId, f64)>> {
    let mut c = cursor(payload);
    let n = c.count("entry count", 12).map_err(decode_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let p = PoiId(c.u32("poi").map_err(decode_err)?);
        let f = c.finite_f64("flow").map_err(decode_err)?;
        out.push((p, f));
    }
    c.done().map_err(decode_err)?;
    Ok(out)
}
