// IL005 service fixture: `handle_ping` answers a protocol verb without
// recording anything; the other handlers record into the metrics
// registry directly (`observe_*`) or through a helper.
pub struct Metrics;
impl Metrics {
    pub fn observe_request(&self) {}
}
pub fn handle_ping(out: &mut Vec<u8>) {
    out.push(1);
}
pub fn handle_metrics(m: &Metrics, out: &mut Vec<u8>) {
    m.observe_request();
    out.push(2);
}
fn count_request(m: &Metrics) {
    m.observe_request();
}
pub fn handle_trace(m: &Metrics, out: &mut Vec<u8>) {
    count_request(m);
    out.push(3);
}
