//! IL008 clean twin: the count goes through the validating accessor, so
//! the allocation is bounded by the payload that actually arrived.

pub fn decode_batch(c: &mut Cursor) -> Result<Batch, StoreError> {
    let n = c.count("record count", 8)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(c.u64("record")?);
    }
    Ok(Batch { records })
}
