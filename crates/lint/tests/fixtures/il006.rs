//! IL006 violation: two code paths acquire the same pair of locks in
//! opposite orders, with one acquisition hidden behind a call.

pub struct Registry {
    names: std::sync::Mutex<Vec<String>>,
    stats: std::sync::Mutex<Vec<u64>>,
}

pub fn record(r: &Registry) {
    let g = r.names.lock();
    bump(r);
}

fn bump(r: &Registry) {
    let g = r.stats.lock();
    g.push(1);
}

pub fn report(r: &Registry) {
    let g = r.stats.lock();
    label(r);
}

fn label(r: &Registry) {
    let g = r.names.lock();
    g.push(String::new());
}
