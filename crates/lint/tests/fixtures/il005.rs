//! IL005 fixture: a public query entry point that records nothing.

pub struct FlowAnalytics;

pub fn unmeasured_topk(fa: &FlowAnalytics, k: usize) -> usize {
    let _ = fa;
    k
}
