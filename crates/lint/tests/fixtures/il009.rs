//! IL009 violation: the per-delta recompute path acquires a lock,
//! reaches blocking I/O through a helper, and recurses.

pub struct Engine {
    cache: std::sync::Mutex<Vec<u64>>,
    sink: std::net::TcpStream,
}

impl Engine {
    pub fn apply_delta(&mut self, delta: u64) {
        let g = self.cache.lock();
        self.spill(delta);
        self.walk(delta);
    }

    fn spill(&mut self, delta: u64) {
        self.sink.write_all(&delta.to_le_bytes());
    }

    fn walk(&mut self, delta: u64) {
        if delta > 0 {
            self.walk(delta - 1);
        }
    }
}
