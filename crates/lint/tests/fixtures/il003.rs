//! IL003 fixture: mutex guard held across blocking I/O.

use std::io::Write;
use std::sync::Mutex;

pub fn broadcast(m: &Mutex<Vec<u8>>, w: &mut std::net::TcpStream) -> std::io::Result<()> {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    w.write_all(&guard)
}
