//! IL003 multi-hop root: a server handler that holds a guard while the
//! I/O happens two calls away in another file.

pub fn flush(s: &Shared) {
    let g = s.state.lock();
    relay(&g);
}
