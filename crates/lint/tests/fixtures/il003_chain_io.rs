//! IL003 multi-hop helpers: the blocking write at the end of the chain.

pub fn relay(data: &[u8]) {
    disk(data);
}

fn disk(data: &[u8]) {
    let mut out = std::io::stdout();
    out.write_all(data);
}
