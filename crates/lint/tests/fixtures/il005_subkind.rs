//! IL005 fixture, subscription-kind telemetry: `Ghost` has no
//! `ServeGhostSubscriptions` counter anywhere in the crate, while
//! `Snapshot` and `Interval` are covered by the Counter variants below.

pub enum SubKind {
    Snapshot { t: f64 },
    Interval { ts: f64, te: f64 },
    Ghost { t: f64 },
}

pub enum Counter {
    ServeSnapshotSubscriptions,
    ServeIntervalSubscriptions,
}

pub fn kind_counter(kind: &SubKind) -> Counter {
    match kind {
        SubKind::Snapshot { .. } | SubKind::Ghost { .. } => Counter::ServeSnapshotSubscriptions,
        SubKind::Interval { .. } => Counter::ServeIntervalSubscriptions,
    }
}
