//! IL002 fixture: panic sources in a serving path.

pub fn first_reading(payload: &[u8]) -> u8 {
    payload[0]
}

pub fn decode(v: Option<u32>) -> u32 {
    v.unwrap()
}
