//! IL008 violation: wire-derived lengths used in unchecked arithmetic —
//! a cast in the read statement and a tainted allocation.

pub fn decode_batch(c: &mut Cursor) -> Result<Batch, StoreError> {
    let n = c.u32("record count")? as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(c.u64("record")?);
    }
    Ok(Batch { records })
}
