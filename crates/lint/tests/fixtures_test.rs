//! End-to-end fixture tests for the `inflow-lint` binary.
//!
//! Each lint ID gets a violation file under `tests/fixtures/`; the tests
//! copy it into a synthetic workspace laid out so the path-scoped rules
//! apply (`crates/service/src/…` for IL002, a `server.rs` for IL003,
//! `crates/core/src/…` for IL005), run the real binary against it, and
//! assert the exact diagnostics, the exit code, allowlist suppression
//! and the JSON output shape.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

/// A throwaway workspace root, deleted on drop.
struct TempRepo {
    root: PathBuf,
}

impl TempRepo {
    fn new(tag: &str) -> TempRepo {
        let root =
            std::env::temp_dir().join(format!("inflow-lint-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("creating temp repo");
        TempRepo { root }
    }

    fn write(&self, rel: &str, contents: &str) -> &Self {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().expect("rel path has a parent")).expect("mkdir");
        fs::write(p, contents).expect("writing fixture");
        self
    }
}

impl Drop for TempRepo {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

struct Run {
    code: i32,
    stdout: String,
    stderr: String,
}

fn lint(root: &Path, extra: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_inflow-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawning inflow-lint");
    Run {
        code: out.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

#[test]
fn il001_partial_cmp_is_diagnosed() {
    let repo = TempRepo::new("il001");
    repo.write("crates/core/src/il001.rs", &fixture("il001.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/core/src/il001.rs:4: IL001: NaN-unsafe float ordering via `partial_cmp`"
        ),
        "missing IL001 diagnostic:\n{}",
        r.stdout
    );
    assert!(r.stdout.contains("fix: use f64::total_cmp"), "missing hint:\n{}", r.stdout);
    assert!(r
        .stdout
        .contains("inflow-lint: 1 finding(s), 0 suppressed, 0 baselined, 1 files scanned"));
}

#[test]
fn il002_panics_in_serving_path_are_diagnosed() {
    let repo = TempRepo::new("il002");
    repo.write("crates/service/src/il002.rs", &fixture("il002.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/service/src/il002.rs:4: IL002: unchecked indexing can panic on out-of-bounds"
        ),
        "missing indexing diagnostic:\n{}",
        r.stdout
    );
    assert!(
        r.stdout.contains(
            "crates/service/src/il002.rs:8: IL002: possible panic: `.unwrap()` in a durable/serving path"
        ),
        "missing unwrap diagnostic:\n{}",
        r.stdout
    );
    assert!(r.stdout.contains("inflow-lint: 2 finding(s),"));
}

#[test]
fn il002_does_not_apply_outside_its_scope() {
    let repo = TempRepo::new("il002-scope");
    // The same panicky code in a batch-analytics crate is fine: IL002 is
    // scoped to the serving layer and the durable store.
    repo.write("crates/core/src/il002.rs", &fixture("il002.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
    assert!(r.stdout.contains("inflow-lint: 0 finding(s),"));
}

#[test]
fn il003_guard_across_io_is_diagnosed() {
    let repo = TempRepo::new("il003");
    repo.write("crates/service/src/server.rs", &fixture("il003.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/service/src/server.rs:11: IL003: blocking I/O `write_all()` while mutex guard `guard` is live"
        ),
        "missing IL003 diagnostic:\n{}",
        r.stdout
    );
}

#[test]
fn il004_magic_and_raw_parse_are_diagnosed() {
    let repo = TempRepo::new("il004");
    repo.write("crates/core/src/il004.rs", &fixture("il004.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/core/src/il004.rs:4: IL004: format magic literal duplicated outside its const definition"
        ),
        "missing magic diagnostic:\n{}",
        r.stdout
    );
    assert!(
        r.stdout.contains(
            "crates/core/src/il004.rs:7: IL004: raw little-endian parse outside the framing module"
        ),
        "missing from_le_bytes diagnostic:\n{}",
        r.stdout
    );
}

#[test]
fn il005_unmeasured_entry_point_is_diagnosed() {
    let repo = TempRepo::new("il005");
    repo.write("crates/core/src/il005.rs", &fixture("il005.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/core/src/il005.rs:5: IL005: query entry point `unmeasured_topk` records no span or counter"
        ),
        "missing IL005 diagnostic:\n{}",
        r.stdout
    );
}

#[test]
fn il005_recording_through_a_callee_passes() {
    let repo = TempRepo::new("il005-ok");
    repo.write(
        "crates/core/src/il005_ok.rs",
        "pub struct FlowAnalytics;\n\
         impl FlowAnalytics {\n\
             fn recorder(&self) -> u32 { 0 }\n\
         }\n\
         fn observed(fa: &FlowAnalytics) -> u32 {\n\
             fa.recorder()\n\
         }\n\
         pub fn measured_topk(fa: &FlowAnalytics) -> u32 {\n\
             observed(fa)\n\
         }\n",
    );
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn il005_unrecorded_service_handler_is_diagnosed() {
    let repo = TempRepo::new("il005-service");
    repo.write("crates/service/src/il005_service.rs", &fixture("il005_service.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/service/src/il005_service.rs:8: IL005: protocol handler `handle_ping` records nothing into ServiceMetrics"
        ),
        "missing IL005 service diagnostic:\n{}",
        r.stdout
    );
    // handle_metrics records directly, handle_trace through a helper:
    // exactly one finding.
    assert!(r.stdout.contains("inflow-lint: 1 finding(s),"), "stdout:\n{}", r.stdout);
}

#[test]
fn il005_subkind_without_counter_is_diagnosed() {
    let repo = TempRepo::new("il005-subkind");
    repo.write("crates/service/src/il005_subkind.rs", &fixture("il005_subkind.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/service/src/il005_subkind.rs:8: IL005: subscription kind `Ghost` has no \
             per-kind counter `ServeGhostSubscriptions` referenced in the service crate"
        ),
        "missing IL005 subkind diagnostic:\n{}",
        r.stdout
    );
    // Snapshot and Interval are covered: exactly one finding.
    assert!(r.stdout.contains("inflow-lint: 1 finding(s),"), "stdout:\n{}", r.stdout);
}

#[test]
fn il005_subkind_counter_casing_is_free() {
    // `LongVisit` is covered by `ServeLongvisitSubscriptions`: the
    // variant-to-counter match is case-insensitive, mirroring the
    // workspace's snake_case-derived counter names.
    let repo = TempRepo::new("il005-subkind-ok");
    repo.write(
        "crates/service/src/kinds.rs",
        "pub enum SubKind {\n\
             LongVisit { ts: f64, te: f64, d: f64 },\n\
         }\n\
         pub enum Counter {\n\
             ServeLongvisitSubscriptions,\n\
         }\n\
         pub fn kind_counter(_kind: &SubKind) -> Counter {\n\
             Counter::ServeLongvisitSubscriptions\n\
         }\n",
    );
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn il005_handlers_outside_service_crate_are_exempt() {
    let repo = TempRepo::new("il005-service-scope");
    repo.write("crates/core/src/il005_service.rs", &fixture("il005_service.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn allowlist_suppresses_and_reports() {
    let repo = TempRepo::new("allow");
    repo.write("crates/core/src/il001.rs", &fixture("il001.rs"));
    repo.write(
        "lint.allow",
        "IL001 crates/core/src/il001.rs:4 reason=\"fixture: demonstrates suppression\"\n",
    );
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}\nstderr:\n{}", r.stdout, r.stderr);
    assert!(r
        .stdout
        .contains("inflow-lint: 0 finding(s), 1 suppressed, 0 baselined, 1 files scanned"));
}

#[test]
fn allowlist_wrong_line_does_not_suppress() {
    let repo = TempRepo::new("allow-line");
    repo.write("crates/core/src/il001.rs", &fixture("il001.rs"));
    repo.write("lint.allow", "IL001 crates/core/src/il001.rs:99 reason=\"stale pin\"\n");
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("unused lint.allow entry"), "stderr:\n{}", r.stderr);
}

#[test]
fn malformed_allowlist_is_a_hard_error() {
    let repo = TempRepo::new("allow-bad");
    repo.write("crates/core/src/clean.rs", "pub fn ok() {}\n");
    repo.write("lint.allow", "IL001 some/path.rs\n"); // no reason
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 2, "stderr:\n{}", r.stderr);
    assert!(r.stderr.contains("reason"), "stderr:\n{}", r.stderr);
}

#[test]
fn unused_allowlist_entry_warns_but_passes() {
    let repo = TempRepo::new("allow-unused");
    repo.write("crates/core/src/clean.rs", "pub fn ok() {}\n");
    repo.write("lint.allow", "IL001 crates/core/src/gone.rs reason=\"file was deleted\"\n");
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
    assert!(r.stderr.contains("unused lint.allow entry"), "stderr:\n{}", r.stderr);
}

#[test]
fn json_output_carries_the_finding() {
    let repo = TempRepo::new("json");
    repo.write("crates/core/src/il001.rs", &fixture("il001.rs"));
    let r = lint(&repo.root, &["--json"]);
    assert_eq!(r.code, 1);
    for needle in [
        "{\"schema\":2,\"findings\":[",
        "\"lint\":\"IL001\"",
        "\"path\":\"crates/core/src/il001.rs\"",
        "\"line\":4",
        "\"suppressed\":0",
        "\"files\":1}",
    ] {
        assert!(r.stdout.contains(needle), "missing {needle} in:\n{}", r.stdout);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let repo = TempRepo::new("clean");
    repo.write("crates/core/src/clean.rs", "pub fn ok() -> u32 { 1 }\n");
    repo.write("src/main.rs", "fn main() {}\n");
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
    assert!(r
        .stdout
        .contains("inflow-lint: 0 finding(s), 0 suppressed, 0 baselined, 2 files scanned"));
}

#[test]
fn il002_multi_hop_chain_is_witnessed() {
    let repo = TempRepo::new("il002-chain");
    repo.write("crates/tracking/src/store/depth.rs", &fixture("il002_chain_root.rs"));
    repo.write("crates/core/src/fold.rs", &fixture("il002_chain_helpers.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/core/src/fold.rs:8: IL002: possible panic: `.unwrap()` reachable from a \
             durable/serving path via rollup -> fold_all -> pick_first \
             (rooted at crates/tracking/src/store/depth.rs:4)"
        ),
        "missing multi-hop IL002 chain:\n{}",
        r.stdout
    );
}

#[test]
fn il003_multi_hop_chain_is_witnessed() {
    let repo = TempRepo::new("il003-chain");
    repo.write("crates/service/src/server.rs", &fixture("il003_chain_server.rs"));
    repo.write("crates/service/src/relay.rs", &fixture("il003_chain_io.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "crates/service/src/server.rs:6: IL003: blocking I/O `write_all()` reachable \
             while mutex guard `state` is live, via flush -> relay -> disk"
        ),
        "missing multi-hop IL003 chain:\n{}",
        r.stdout
    );
}

#[test]
fn il006_lock_order_cycle_is_diagnosed() {
    let repo = TempRepo::new("il006");
    repo.write("crates/service/src/locks.rs", &fixture("il006.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stdout.contains("IL006: lock-order cycle"), "missing IL006:\n{}", r.stdout);
    // Both opposing edges are witnessed, each with its cross-call chain.
    assert!(
        r.stdout.contains("via record -> bump") && r.stdout.contains("via report -> label"),
        "missing per-edge witnesses:\n{}",
        r.stdout
    );
}

#[test]
fn il006_consistent_lock_order_passes() {
    let repo = TempRepo::new("il006-ok");
    repo.write("crates/service/src/locks.rs", &fixture("il006_clean.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn il007_desynced_decoder_names_the_field() {
    let repo = TempRepo::new("il007");
    repo.write("crates/service/src/protocol.rs", &fixture("il007_desync.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "IL007: codec pair `ranked`: decoder reads `flow` as U32 where the layout \
             declares field `flow` as F64"
        ),
        "missing IL007 field diagnostic:\n{}",
        r.stdout
    );
}

#[test]
fn il007_symmetric_pair_passes() {
    let repo = TempRepo::new("il007-ok");
    repo.write("crates/service/src/protocol.rs", &fixture("il007_clean.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn il008_unchecked_wire_cast_is_diagnosed() {
    let repo = TempRepo::new("il008");
    repo.write("crates/tracking/src/store/decode.rs", &fixture("il008.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains(
            "IL008: unchecked arithmetic/cast on wire-derived `record count` in the same \
             statement as the raw read"
        ),
        "missing IL008 diagnostic:\n{}",
        r.stdout
    );
    assert!(r.stdout.contains("fix: read counts via Cursor::count"), "missing hint:\n{}", r.stdout);
}

#[test]
fn il008_count_accessor_passes() {
    let repo = TempRepo::new("il008-ok");
    repo.write("crates/tracking/src/store/decode.rs", &fixture("il008_clean.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn il009_impure_delta_loop_is_diagnosed() {
    let repo = TempRepo::new("il009");
    repo.write("crates/service/src/engine.rs", &fixture("il009.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(
        r.stdout.contains("IL009: delta-loop impurity: lock acquisition reachable"),
        "missing lock impurity:\n{}",
        r.stdout
    );
    assert!(
        r.stdout.contains("IL009: delta-loop impurity: blocking I/O reachable")
            && r.stdout.contains("Engine::spill"),
        "missing I/O impurity with chain:\n{}",
        r.stdout
    );
    assert!(
        r.stdout.contains("IL009: delta-loop impurity: recursion cycle")
            && r.stdout.contains("Engine::walk"),
        "missing recursion cycle:\n{}",
        r.stdout
    );
}

#[test]
fn il009_pure_delta_loop_passes() {
    let repo = TempRepo::new("il009-ok");
    repo.write("crates/service/src/engine.rs", &fixture("il009_clean.rs"));
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}

#[test]
fn baseline_suppresses_known_findings() {
    let repo = TempRepo::new("baseline");
    repo.write("crates/core/src/il001.rs", &fixture("il001.rs"));
    let first = lint(&repo.root, &["--json"]);
    assert_eq!(first.code, 1);
    repo.write("lint-baseline.json", &first.stdout);
    let second = lint(&repo.root, &["--baseline"]);
    // --baseline requires a file argument.
    assert_eq!(second.code, 2, "stderr:\n{}", second.stderr);
    let p = repo.root.join("lint-baseline.json");
    let third = lint(&repo.root, &["--baseline", p.to_str().unwrap()]);
    assert_eq!(third.code, 0, "stdout:\n{}\nstderr:\n{}", third.stdout, third.stderr);
    assert!(
        third
            .stdout
            .contains("inflow-lint: 0 finding(s), 0 suppressed, 1 baselined, 1 files scanned"),
        "stdout:\n{}",
        third.stdout
    );
}

#[test]
fn baseline_does_not_mask_new_findings() {
    let repo = TempRepo::new("baseline-new");
    repo.write("crates/core/src/il001.rs", &fixture("il001.rs"));
    let first = lint(&repo.root, &["--json"]);
    repo.write("lint-baseline.json", &first.stdout);
    // A new violation in a second file is NOT in the baseline.
    repo.write("crates/core/src/il004.rs", &fixture("il004.rs"));
    let p = repo.root.join("lint-baseline.json");
    let r = lint(&repo.root, &["--baseline", p.to_str().unwrap()]);
    assert_eq!(r.code, 1, "stdout:\n{}", r.stdout);
    assert!(r.stdout.contains("IL004"), "new finding masked:\n{}", r.stdout);
    assert!(!r.stdout.contains("IL001:"), "baselined finding re-reported:\n{}", r.stdout);
}

#[test]
fn strict_unused_turns_stale_entries_into_errors() {
    let repo = TempRepo::new("strict-unused");
    repo.write("crates/core/src/clean.rs", "pub fn ok() {}\n");
    repo.write("lint.allow", "IL001 crates/core/src/gone.rs reason=\"file was deleted\"\n");
    let r = lint(&repo.root, &["--strict-unused"]);
    assert_eq!(r.code, 1, "stdout:\n{}\nstderr:\n{}", r.stdout, r.stderr);
    assert!(
        r.stderr.contains("error: unused lint.allow entry"),
        "stale entry not escalated:\n{}",
        r.stderr
    );
}

#[test]
fn test_code_is_exempt_from_the_catalog() {
    let repo = TempRepo::new("test-exempt");
    repo.write(
        "crates/service/src/exempt.rs",
        "#[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn uses_unwrap() {\n\
                 let v: Option<u32> = Some(1);\n\
                 assert_eq!(v.unwrap(), 1);\n\
             }\n\
         }\n",
    );
    let r = lint(&repo.root, &[]);
    assert_eq!(r.code, 0, "stdout:\n{}", r.stdout);
}
