//! A lightweight AST over the token stream: items parsed by recursive
//! descent, and per-`fn` *facts* — call sites with the set of mutex
//! guards live at each one, lock-acquisition sites, blocking-I/O sites
//! and panic sites. This is the substrate the interprocedural rules
//! (IL006–IL009, and the deepened IL002/IL003) walk via
//! [`crate::callgraph`].
//!
//! [`parse_fns`] is deliberately an *independent* implementation of the
//! `fn` indexing that [`crate::items`] does with a linear scan and an
//! impl stack: this one descends brace trees recursively. The two must
//! agree on every workspace file — `tests/span_parity.rs` holds them to
//! that — so a parser bug shows up as a disagreement, not a silently
//! wrong call graph.

use crate::lexer::{Tok, TokKind};
use crate::rules::stmt_start;

/// One `fn` item as seen by the recursive-descent parser. Field meanings
/// match [`crate::items::FnItem`] exactly (that is the point).
#[derive(Debug, Clone)]
pub struct AstFn {
    pub name: String,
    /// Name of the enclosing `impl` target type, if any.
    pub impl_type: Option<String>,
    pub line: u32,
    pub in_test: bool,
    /// Token range `[fn_idx, body_open)`.
    pub sig: (usize, usize),
    /// Token range `(open_brace, close_brace)` exclusive of both braces.
    pub body: Option<(usize, usize)>,
}

/// Parses all `fn` items (top-level, impl methods, nested) by recursive
/// descent over the brace tree.
pub fn parse_fns(toks: &[Tok]) -> Vec<AstFn> {
    let mut out = Vec::new();
    walk(toks, 0, toks.len(), None, &mut out);
    out
}

fn walk(toks: &[Tok], mut i: usize, end: usize, impl_ty: Option<&str>, out: &mut Vec<AstFn>) {
    while i < end {
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((ty, open)) = impl_header(toks, i, end) {
                if let Some(close) = matching_brace_in(toks, open, end) {
                    walk(toks, open + 1, close, Some(&ty), out);
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            if let Some(item) = fn_item(toks, i, end, impl_ty) {
                let after = match item.body {
                    Some((open, close)) => {
                        out.push(item.clone());
                        // Nested fns keep the enclosing impl context, the
                        // same resolution `items.rs`'s depth-keyed impl
                        // stack produces.
                        walk(toks, open, close, impl_ty, out);
                        close + 1
                    }
                    None => {
                        let next = item.sig.1 + 1;
                        out.push(item);
                        next
                    }
                };
                i = after;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            if let Some(close) = matching_brace_in(toks, i, end) {
                walk(toks, i + 1, close, impl_ty, out);
                i = close + 1;
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
}

/// From an `impl` token: the implemented-on type name (`Type` for
/// `impl Trait for Type`) and the index of the body's `{`.
fn impl_header(toks: &[Tok], impl_idx: usize, end: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i64;
    let mut after_for = false;
    let mut first: Option<String> = None;
    let mut for_name: Option<String> = None;
    while j < end {
        let t = &toks[j];
        if t.is_punct("{") && angle == 0 {
            let name = for_name.or(first)?;
            return Some((name, j));
        }
        if t.is_punct(";") && angle == 0 {
            return None;
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Ident, "for") if angle == 0 => after_for = true,
            (TokKind::Ident, "where") if angle == 0 => {}
            (TokKind::Ident, name) if angle == 0 => {
                if after_for {
                    if for_name.is_none() {
                        for_name = Some(name.to_string());
                    }
                } else if first.is_none() {
                    first = Some(name.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn fn_item(toks: &[Tok], fn_idx: usize, end: usize, impl_ty: Option<&str>) -> Option<AstFn> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Signature runs to the body `{` at zero paren/bracket nesting, or to
    // a `;` (bodyless trait declaration) at zero angle nesting too. The
    // `>` of `->` is guarded so return types don't unbalance the count.
    let mut j = fn_idx + 2;
    let mut nest = 0i64;
    let mut angle = 0i64;
    while j < end {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => nest += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => nest -= 1,
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") if !(j > 0 && toks[j - 1].is_punct("-")) => {
                angle = (angle - 1).max(0);
            }
            (TokKind::Punct, "{") if nest == 0 => break,
            (TokKind::Punct, ";") if nest == 0 && angle == 0 => {
                return Some(AstFn {
                    name: name_tok.text.clone(),
                    impl_type: impl_ty.map(str::to_string),
                    line: name_tok.line,
                    in_test: name_tok.in_test,
                    sig: (fn_idx, j),
                    body: None,
                });
            }
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return None;
    }
    let close = matching_brace_in(toks, j, end)?;
    Some(AstFn {
        name: name_tok.text.clone(),
        impl_type: impl_ty.map(str::to_string),
        line: name_tok.line,
        in_test: name_tok.in_test,
        sig: (fn_idx, j),
        body: Some((j + 1, close)),
    })
}

/// Index of the `}` matching the `{` at `open`, searched within `end`.
fn matching_brace_in(toks: &[Tok], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---- per-fn facts --------------------------------------------------------

/// How a call names its target, for symbol resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// Bare `free(..)`.
    Free,
    /// `module::free(..)` with a lowercase qualifier — the qualifier
    /// lets resolution prefer free fns defined in `module.rs`, which
    /// keeps `frame::write_frame(..)` from aliasing every `write_frame`
    /// in the workspace.
    Qualified(String),
    /// `recv.method(..)`; the receiver is the identifier right before
    /// the dot (`self`, a local, a field), or `None` for a chain.
    Method(Option<String>),
    /// `Type::assoc(..)` with an uppercase qualifier.
    Assoc(String),
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub callee: Callee,
    pub line: u32,
    /// Lock identities live (guards not yet dropped) at the call.
    pub held: Vec<String>,
}

/// A lock acquisition: `x.lock()` or `lock_or_recover(&x)`. The identity
/// is the final identifier of the receiver/argument path — `self.shared
/// .shards.lock()` and `lock_or_recover(&shared.shards)` both acquire
/// `shards`.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub id: String,
    pub line: u32,
    /// Lock identities already held when this one is acquired.
    pub held: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct Site {
    pub what: String,
    pub line: u32,
    pub held: Vec<String>,
}

/// Everything the interprocedural rules need to know about one body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub io: Vec<Site>,
    pub panics: Vec<Site>,
}

/// Call-position identifiers that are control flow, not calls.
const NON_CALL_KEYWORDS: [&str; 8] = ["if", "while", "match", "for", "return", "loop", "in", "fn"];

/// Blocking socket/file calls by method name (see IL003) plus the
/// `std::fs` free functions; used both for the file-local IL003 and the
/// reachability rules.
pub(crate) fn is_io_call(name: &str, callee: &Callee) -> bool {
    if crate::rules::IL003_IO_CALLS.contains(&name) {
        return true;
    }
    match callee {
        Callee::Assoc(q) => {
            (q == "File" && matches!(name, "open" | "create" | "create_new" | "options"))
                || (q == "TcpStream" && name == "connect")
                || (q == "TcpListener" && name == "bind")
        }
        // Any `fs::…` free function touches the filesystem.
        Callee::Qualified(q) => q == "fs",
        _ => false,
    }
}

#[derive(Debug)]
struct Guard {
    /// `None` for an un-bound temporary (dies at the statement's `;`).
    name: Option<String>,
    lock_id: String,
    depth: usize,
}

/// Extracts [`FnFacts`] from a body token range, tracking guard liveness
/// with the same model the file-local IL003 uses: `let`-bound guards
/// live to the end of their block or an explicit `drop(name)`,
/// temporaries die at the statement's `;`.
pub fn extract_facts(toks: &[Tok], body: (usize, usize)) -> FnFacts {
    let (lo, hi) = body;
    let hi = hi.min(toks.len());
    let mut facts = FnFacts::default();
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            guards.retain(|g| !(g.name.is_none() && g.depth == depth));
            i += 1;
            continue;
        }
        if t.in_test || t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let held = || guards.iter().map(|g| g.lock_id.clone()).collect::<Vec<_>>();
        let prev_dot = i > lo && toks[i - 1].is_punct(".");
        let next_paren = matches!(toks.get(i + 1), Some(n) if n.is_punct("("));

        // Lock acquisitions come first: they are not ordinary calls.
        let acquires =
            next_paren && (t.text == "lock_or_recover" || (t.text == "lock" && prev_dot));
        if acquires {
            let id = if t.text == "lock" {
                receiver_of(toks, lo, i)
            } else {
                last_ident_in_args(toks, i + 1, hi)
            };
            let id = id.unwrap_or_else(|| "<expr>".into());
            facts.locks.push(LockSite { id: id.clone(), line: t.line, held: held() });
            let start = stmt_start(toks, i).max(lo);
            let name = if toks[start].is_ident("let") {
                toks[start + 1..]
                    .iter()
                    .take_while(|n| !n.is_punct("="))
                    .find(|n| n.kind == TokKind::Ident && n.text != "mut")
                    .map(|n| n.text.clone())
            } else {
                None
            };
            guards.push(Guard { name, lock_id: id, depth });
            i += 1;
            continue;
        }
        if t.text == "drop" && next_paren {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                }
            }
            i += 1;
            continue;
        }

        // Panic sites (the IL002 patterns, position-independent).
        if t.text == "unwrap" && prev_dot && next_paren {
            facts.panics.push(Site { what: "`.unwrap()`".into(), line: t.line, held: held() });
            i += 1;
            continue;
        }
        if t.text == "expect"
            && prev_dot
            && next_paren
            && matches!(toks.get(i + 2), Some(n) if n.kind == TokKind::Str)
        {
            facts.panics.push(Site { what: "`.expect(..)`".into(), line: t.line, held: held() });
            i += 1;
            continue;
        }
        if crate::rules::IL002_PANIC_MACROS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
        {
            facts.panics.push(Site {
                what: format!("`{}!(..)`", t.text),
                line: t.line,
                held: held(),
            });
            i += 1;
            continue;
        }

        // Ordinary calls: `name(` that is not a definition or keyword.
        if next_paren
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && !(i > lo && toks[i - 1].is_ident("fn"))
        {
            let callee = if prev_dot {
                let recv = (i >= lo + 2)
                    .then(|| &toks[i - 2])
                    .filter(|r| r.kind == TokKind::Ident)
                    .map(|r| r.text.clone());
                Callee::Method(recv)
            } else if i >= lo + 2 && toks[i - 1].is_punct(":") && toks[i - 2].is_punct(":") {
                match (i >= lo + 3).then(|| &toks[i - 3]) {
                    Some(q) if q.kind == TokKind::Ident => {
                        if q.text.chars().next().is_some_and(char::is_uppercase) {
                            Callee::Assoc(q.text.clone())
                        } else {
                            Callee::Qualified(q.text.clone())
                        }
                    }
                    _ => Callee::Free,
                }
            } else {
                Callee::Free
            };
            if is_io_call(&t.text, &callee) {
                facts.io.push(Site { what: format!("{}()", t.text), line: t.line, held: held() });
            }
            facts.calls.push(CallSite { name: t.text.clone(), callee, line: t.line, held: held() });
        }
        i += 1;
    }
    facts
}

/// The final identifier of the dotted receiver path ending just before
/// the method-call dot at `dot_like` (the index of the method name):
/// `a.b.c.lock()` → `c`.
fn receiver_of(toks: &[Tok], lo: usize, method_idx: usize) -> Option<String> {
    (method_idx >= lo + 2)
        .then(|| &toks[method_idx - 2])
        .filter(|r| r.kind == TokKind::Ident)
        .map(|r| r.text.clone())
}

/// The last identifier inside the parenthesized argument list opening at
/// `open` — `lock_or_recover(&self.metrics.counters)` → `counters`.
fn last_ident_in_args(toks: &[Tok], open: usize, hi: usize) -> Option<String> {
    let mut nest = 0i64;
    let mut last: Option<String> = None;
    for t in toks.iter().take(hi).skip(open) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") => nest += 1,
            (TokKind::Punct, ")") => {
                nest -= 1;
                if nest == 0 {
                    return last;
                }
            }
            (TokKind::Ident, name) => last = Some(name.to_string()),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_free_and_impl_fns() {
        let toks = lex("
            pub fn free(a: u32) -> Vec<(u32, f64)> { a; inner() }
            impl<'a> Facade<'a> {
                pub fn method(&self) -> f64 { 0.0 }
            }
            impl Ord for Item { fn cmp(&self, o: &Self) -> Ordering { todo() } }
            trait T { fn decl(&self); }
        ");
        let fns = parse_fns(&toks);
        let by = |n: &str| fns.iter().find(|f| f.name == n).expect("parsed");
        assert!(by("free").impl_type.is_none());
        assert_eq!(by("method").impl_type.as_deref(), Some("Facade"));
        assert_eq!(by("cmp").impl_type.as_deref(), Some("Item"));
        assert!(by("decl").body.is_none());
    }

    #[test]
    fn facts_track_guards_across_calls() {
        let toks = lex("
            fn f(&self) {
                let guard = self.shards.lock();
                helper(&guard);
                drop(guard);
                bare();
            }
        ");
        let body = parse_fns(&toks)[0].body.expect("body");
        let facts = extract_facts(&toks, body);
        assert_eq!(facts.locks.len(), 1);
        assert_eq!(facts.locks[0].id, "shards");
        let helper = facts.calls.iter().find(|c| c.name == "helper").expect("helper call");
        assert_eq!(helper.held, vec!["shards".to_string()]);
        let bare = facts.calls.iter().find(|c| c.name == "bare").expect("bare call");
        assert!(bare.held.is_empty());
    }

    #[test]
    fn lock_or_recover_identity_is_the_last_path_ident() {
        let toks = lex("fn f() { let g = lock_or_recover(&self.metrics.counters); }");
        let body = parse_fns(&toks)[0].body.expect("body");
        let facts = extract_facts(&toks, body);
        assert_eq!(facts.locks[0].id, "counters");
    }

    #[test]
    fn panic_and_io_sites_capture_held_locks() {
        let toks = lex("
            fn f(&self) {
                let g = q.lock();
                stream.write_all(b).unwrap();
            }
        ");
        let body = parse_fns(&toks)[0].body.expect("body");
        let facts = extract_facts(&toks, body);
        assert_eq!(facts.io.len(), 1);
        assert_eq!(facts.io[0].held, vec!["q".to_string()]);
        assert_eq!(facts.panics.len(), 1);
    }

    #[test]
    fn callee_classification() {
        let toks = lex("fn f() { free(); m::free2(); Type::assoc(); recv.method(); }");
        let body = parse_fns(&toks)[0].body.expect("body");
        let facts = extract_facts(&toks, body);
        let by = |n: &str| &facts.calls.iter().find(|c| c.name == n).expect("call").callee;
        assert_eq!(by("free"), &Callee::Free);
        assert_eq!(by("free2"), &Callee::Qualified("m".into()));
        assert_eq!(by("assoc"), &Callee::Assoc("Type".into()));
        assert_eq!(by("method"), &Callee::Method(Some("recv".into())));
    }
}
