//! A comment-, string- and raw-string-aware Rust tokenizer with test-scope
//! tracking.
//!
//! This is deliberately *not* a parser: the project lints key on token
//! patterns (`partial_cmp` outside a `fn` definition, `.unwrap()`, a magic
//! byte-string literal outside its `const`), so a flat token stream with
//! accurate line numbers and an `in_test` flag per token is all the
//! structure they need. What the lexer must get exactly right is what a
//! regex cannot: comments (including nested block comments), cooked and
//! raw strings (`r#"…"#`), byte strings, char literals vs. lifetimes —
//! otherwise a lint name mentioned in a doc comment or an error message
//! would count as a violation.
//!
//! Test scope: tokens under `#[cfg(test)]` / `#[test]` items or inside
//! `mod tests { … }` are flagged `in_test` and exempt from every lint —
//! the invariants guard production paths, and tests legitimately
//! `unwrap()` and forge corrupt magics.

/// Token categories. String/char literals carry their *content* (quotes
/// and prefixes stripped) so rules can inspect it; numbers keep their
/// spelling; punctuation is one token per character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Str,
    Char,
    Num,
    Punct,
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` scope or a `mod tests` block.
    pub in_test: bool,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }
}

/// Tokenizes `src` and marks test scopes. Never fails: unterminated
/// constructs consume to end-of-input (the lint then sees fewer tokens,
/// which for a checker that only *reports* is the safe direction).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut toks = tokenize(src);
    mark_test_scopes(&mut toks);
    toks
}

fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line and (nested) block comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Identifiers, keywords, and string-literal prefixes (r, b, br).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            let is_raw_prefix = matches!(text.as_str(), "r" | "br");
            if is_raw_prefix && matches!(next, Some('"') | Some('#')) {
                if let Some((content, ni, nl)) = lex_raw_string(&chars, i, line) {
                    toks.push(Tok { kind: TokKind::Str, text: content, line, in_test: false });
                    i = ni;
                    line = nl;
                    continue;
                }
            }
            if text == "b" && next == Some('"') {
                let (content, ni, nl) = lex_cooked_string(&chars, i, line);
                toks.push(Tok { kind: TokKind::Str, text: content, line, in_test: false });
                i = ni;
                line = nl;
                continue;
            }
            if text == "b" && next == Some('\'') {
                let (ni, nl) = skip_char_literal(&chars, i, line);
                toks.push(Tok { kind: TokKind::Char, text: String::new(), line, in_test: false });
                i = ni;
                line = nl;
                continue;
            }
            toks.push(Tok { kind: TokKind::Ident, text, line, in_test: false });
            continue;
        }
        if c == '"' {
            let (content, ni, nl) = lex_cooked_string(&chars, i, line);
            toks.push(Tok { kind: TokKind::Str, text: content, line, in_test: false });
            i = ni;
            line = nl;
            continue;
        }
        if c == '\'' {
            // `'x'` / `'\n'` are char literals, `'a` in `<'a>` a lifetime.
            let is_char = matches!(chars.get(i + 1), Some('\\'))
                || matches!(chars.get(i + 2), Some('\''))
                || !matches!(chars.get(i + 1), Some(ch) if ch.is_alphanumeric() || *ch == '_');
            if is_char {
                let (ni, nl) = skip_char_literal(&chars, i, line);
                toks.push(Tok { kind: TokKind::Char, text: String::new(), line, in_test: false });
                i = ni;
                line = nl;
            } else {
                let start = i + 1;
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Lifetime, text, line, in_test: false });
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < n {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    // `1e-3` / `0x1p-2`: sign glued to an exponent marker.
                    i += 1;
                    if matches!(chars.get(i), Some('+') | Some('-'))
                        && matches!(d, 'e' | 'E' | 'p' | 'P')
                        && !chars[start..i].iter().collect::<String>().starts_with("0x")
                    {
                        i += 1;
                    }
                } else if d == '.'
                    && !seen_dot
                    && matches!(chars.get(i + 1), Some(ch) if ch.is_ascii_digit())
                {
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok { kind: TokKind::Num, text, line, in_test: false });
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, in_test: false });
        i += 1;
    }
    toks
}

/// From the opening `"` (index `i`), returns (content, index past the
/// closing quote, updated line).
fn lex_cooked_string(chars: &[char], i: usize, mut line: u32) -> (String, usize, u32) {
    let mut j = i + 1;
    let mut content = String::new();
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                if let Some(&esc) = chars.get(j + 1) {
                    content.push(esc);
                    if esc == '\n' {
                        line += 1;
                    }
                }
                j += 2;
            }
            '"' => return (content, j + 1, line),
            ch => {
                if ch == '\n' {
                    line += 1;
                }
                content.push(ch);
                j += 1;
            }
        }
    }
    (content, j, line)
}

/// From the first `#` or `"` after an `r`/`br` prefix. Returns `None` if
/// this isn't actually a raw string (e.g. `r#foo` raw identifiers).
fn lex_raw_string(chars: &[char], i: usize, mut line: u32) -> Option<(String, usize, u32)> {
    let mut j = i;
    let mut hashes = 0usize;
    while matches!(chars.get(j), Some('#')) {
        hashes += 1;
        j += 1;
    }
    if !matches!(chars.get(j), Some('"')) {
        return None;
    }
    j += 1;
    let start = j;
    while j < chars.len() {
        if chars[j] == '\n' {
            line += 1;
        }
        if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes && matches!(chars.get(j + 1 + k), Some('#')) {
                k += 1;
            }
            if k == hashes {
                let content: String = chars[start..j].iter().collect();
                return Some((content, j + 1 + hashes, line));
            }
        }
        j += 1;
    }
    Some((chars[start..].iter().collect(), j, line))
}

/// From the opening `'` (or the `'` after a `b` prefix — pass the index
/// of the quote's preceding position accordingly). Returns index past the
/// closing quote.
fn skip_char_literal(chars: &[char], i: usize, line: u32) -> (usize, u32) {
    // `i` may point at a `b` prefix; find the quote.
    let mut j = if chars[i] == '\'' { i + 1 } else { i + 2 };
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return (j + 1, line),
            _ => j += 1,
        }
    }
    (j, line)
}

/// Marks tokens inside test-only scopes: items annotated `#[cfg(test)]` /
/// `#[test]` (attribute, header and braced body) and `mod tests { … }` /
/// `mod test { … }` blocks.
fn mark_test_scopes(toks: &mut [Tok]) {
    let mut depth = 0usize;
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending = false;
    let mut group = 0i64; // paren/bracket nesting, for `;` cancellation
    let mut i = 0usize;
    while i < toks.len() {
        // Attributes: `#[ … ]`. `cfg(test)`, `test`, `cfg(all(test, …))`
        // arm the pending flag; `cfg(not(test))` does not.
        if toks[i].is_punct("#")
            && i + 1 < toks.len()
            && (toks[i + 1].is_punct("[")
                || (toks[i + 1].is_punct("!") && i + 2 < toks.len() && toks[i + 2].is_punct("[")))
        {
            let open = if toks[i + 1].is_punct("[") { i + 1 } else { i + 2 };
            let mut j = open;
            let mut bd = 0i64;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    bd += 1;
                } else if toks[j].is_punct("]") {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                } else if toks[j].is_ident("test") {
                    has_test = true;
                } else if toks[j].is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                pending = true;
            }
            let flag = !test_stack.is_empty() || pending;
            let end = j.min(toks.len() - 1);
            for t in &mut toks[i..=end] {
                t.in_test = flag;
            }
            i = end + 1;
            continue;
        }
        if toks[i].is_ident("mod")
            && matches!(toks.get(i + 1), Some(t) if t.is_ident("tests") || t.is_ident("test"))
        {
            pending = true;
        }
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if pending {
                    test_stack.push(depth);
                    pending = false;
                }
            }
            (TokKind::Punct, "}") => {
                if test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => group += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => group -= 1,
            (TokKind::Punct, ";") if group <= 0 => pending = false,
            _ => {}
        }
        toks[i].in_test = !test_stack.is_empty() || pending;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, bool)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text, t.in_test))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_idents() {
        let src = r##"
            // partial_cmp in a line comment
            /* unwrap() in a /* nested */ block comment */
            let a = "partial_cmp in a string";
            let b = r#"unwrap in a raw "string""#;
            let c = b"IFWAL001";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.iter().any(|(t, _)| t == "real_ident"));
        assert!(!ids.iter().any(|(t, _)| t == "partial_cmp" || t == "unwrap"));
        let strs: Vec<String> =
            lex(src).into_iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text).collect();
        assert!(strs.iter().any(|s| s == "IFWAL001"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn cfg_test_scopes_are_marked() {
        let src = "
            fn prod() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn prod2() { z.unwrap(); }
        ";
        let ids = idents(src);
        let unwraps: Vec<bool> =
            ids.iter().filter(|(t, _)| t == "unwrap").map(|&(_, f)| f).collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn test_attr_covers_the_following_fn_only() {
        let src = "
            #[test]
            fn a_test() { x.unwrap(); }
            fn prod() { y.unwrap(); }
        ";
        let ids = idents(src);
        let unwraps: Vec<bool> =
            ids.iter().filter(|(t, _)| t == "unwrap").map(|&(_, f)| f).collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_scope() {
        let src = "
            #[cfg(not(test))]
            fn prod() { x.unwrap(); }
        ";
        let ids = idents(src);
        assert!(ids.iter().any(|(t, f)| t == "unwrap" && !f));
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let toks = lex("let a = &b[0..8];");
        let nums: Vec<String> =
            toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.clone()).collect();
        assert_eq!(nums, vec!["0", "8"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb */\nlet x = \"s\ns\";\nmarker();";
        let toks = lex(src);
        let marker = toks.iter().find(|t| t.is_ident("marker")).expect("marker lexed");
        assert_eq!(marker.line, 5);
    }
}
