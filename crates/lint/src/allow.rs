//! The `lint.allow` baseline: itemized suppressions with mandatory
//! reasons.
//!
//! Format, one entry per line (`#` comments and blank lines ignored):
//!
//! ```text
//! IL002 crates/tracking/src/store/frame.rs reason="designated bounds-checked accessor module"
//! IL002 crates/service/src/shard.rs:185 reason="crash-by-design on store failure"
//! ```
//!
//! A path without `:line` suppresses the lint for the whole file. The
//! reason string is mandatory and must be non-empty — an allowlist entry
//! is a reviewed decision, not an escape hatch. Entries that suppress
//! nothing are reported so the baseline shrinks as findings are fixed.

use crate::rules::Finding;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub lint: String,
    pub path: String,
    pub line: Option<u32>,
    pub reason: String,
    /// Source line in the allowlist file, for unused-entry reporting.
    pub at: usize,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parses allowlist text; malformed lines are hard errors so a typo
    /// cannot silently un-suppress (or over-suppress) anything.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let at = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (lint, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("lint.allow:{at}: expected `ILnnn path reason=\"..\"`"))?;
            if lint.len() != 5
                || !lint.starts_with("IL")
                || !lint[2..].bytes().all(|b| b.is_ascii_digit())
            {
                return Err(format!("lint.allow:{at}: bad lint id `{lint}` (expected ILnnn)"));
            }
            let rest = rest.trim_start();
            let (spec, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("lint.allow:{at}: missing reason=\"..\" after path"))?;
            let reason = rest
                .trim()
                .strip_prefix("reason=\"")
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| format!("lint.allow:{at}: reason must be reason=\"..\""))?;
            if reason.trim().is_empty() {
                return Err(format!("lint.allow:{at}: empty reason — say why this is safe"));
            }
            let (path, line_no) = match spec.rsplit_once(':') {
                Some((p, n)) => match n.parse::<u32>() {
                    Ok(v) => (p.to_string(), Some(v)),
                    Err(_) => (spec.to_string(), None),
                },
                None => (spec.to_string(), None),
            };
            entries.push(AllowEntry {
                lint: lint.to_string(),
                path,
                line: line_no,
                reason: reason.trim().to_string(),
                at,
            });
        }
        let used = vec![false; entries.len()];
        Ok(Allowlist { entries, used })
    }

    /// True if some entry covers the finding; marks that entry used.
    pub fn suppresses(&mut self, f: &Finding) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            let line_matches = match e.line {
                Some(l) => l == f.line,
                None => true,
            };
            if e.lint == f.lint && e.path == f.path && line_matches {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding in this run.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().enumerate().filter(|&(i, _)| !self.used[i]).map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, path: &str, line: u32) -> Finding {
        Finding { lint, path: path.into(), line, message: String::new(), hint: "" }
    }

    #[test]
    fn file_and_line_scoped_entries() {
        let text = "\
# baseline
IL002 crates/a.rs reason=\"whole file ok\"
IL002 crates/b.rs:10 reason=\"line ten only\"
";
        let mut a = Allowlist::parse(text).expect("parses");
        assert!(a.suppresses(&finding("IL002", "crates/a.rs", 3)));
        assert!(a.suppresses(&finding("IL002", "crates/b.rs", 10)));
        assert!(!a.suppresses(&finding("IL002", "crates/b.rs", 11)));
        assert!(!a.suppresses(&finding("IL001", "crates/a.rs", 3)));
        assert!(a.unused().is_empty());
    }

    #[test]
    fn missing_or_empty_reason_is_an_error() {
        assert!(Allowlist::parse("IL002 crates/a.rs\n").is_err());
        assert!(Allowlist::parse("IL002 crates/a.rs reason=\"\"\n").is_err());
        assert!(Allowlist::parse("IL002 crates/a.rs because\n").is_err());
        assert!(Allowlist::parse("XX002 crates/a.rs reason=\"x\"\n").is_err());
    }

    #[test]
    fn unused_entries_are_reported() {
        let mut a = Allowlist::parse("IL003 x.rs reason=\"stale\"\n").expect("parses");
        assert!(!a.suppresses(&finding("IL002", "x.rs", 1)));
        assert_eq!(a.unused().len(), 1);
    }
}
