//! The interprocedural rules: deepened IL002/IL003 (reachability instead
//! of file-local patterns, with full witnessing call chains), IL006
//! lock-order cycles, and IL009 delta-loop purity. All walk the
//! [`crate::callgraph::CallGraph`].
//!
//! Exemptions are file-granular and listed here, not scattered: BFS does
//! not descend into [`AUDITED_LEAVES`] — the mutex-recovery shim
//! (`sync.rs`), the metrics registry, and the obs crate. All three are
//! audited bounded leaves (short internal critical sections, no blocking
//! I/O, no panics on serving paths) that every hot path calls; name-level
//! edges through them would connect the whole workspace to their internal
//! locks and drown the real findings.

use crate::callgraph::{CallGraph, Node};
use crate::rules::{il002_in_scope, il003_in_scope, Finding, IL003_IO_CALLS};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Files whose internals the reachability rules treat as opaque leaves.
fn audited_leaf(rel: &str) -> bool {
    rel == "crates/service/src/sync.rs"
        || rel == "crates/service/src/metrics.rs"
        || rel.starts_with("crates/obs/src/")
}

/// Shorter chain wins; equal length falls back to lexicographic so a
/// HashMap iteration order can never flip the reported witness.
fn better_chain(candidate: &str, incumbent: &str) -> bool {
    let (c, i) = (candidate.matches("->").count(), incumbent.matches("->").count());
    c < i || (c == i && candidate < incumbent)
}

// ---------------------------------------------------------------- IL002 deep

/// Deepened IL002: explicit panic sites (`unwrap`/`expect`/panic macros —
/// not indexing, which stays file-local) reachable from any fn in the
/// IL002-scoped files, reported at the site with the witnessing chain.
/// Sites *inside* scoped files are excluded — the file-local pass already
/// reports those — and so are the audited leaves (sync/metrics/obs),
/// whose panics are structural invariants reviewed in place.
pub fn il002_reachable_panics(g: &CallGraph, out: &mut Vec<Finding>) {
    // (site file, line) -> (chain, what) keeping the best witness.
    let mut best: HashMap<(String, u32), (String, String)> = HashMap::new();
    for root in g.roots(|n| il002_in_scope(&n.file)) {
        let reach = g.reach(root, |n| audited_leaf(&n.file));
        let mut nodes: Vec<usize> = reach.keys().copied().collect();
        nodes.sort_unstable();
        for m in nodes {
            let node = &g.nodes[m];
            if il002_in_scope(&node.file) {
                continue;
            }
            for p in &node.facts.panics {
                let chain = format!(
                    "{} (rooted at {}:{})",
                    g.chain(&reach, m),
                    g.nodes[root].file,
                    g.nodes[root].line
                );
                let key = (node.file.clone(), p.line);
                match best.get_mut(&key) {
                    Some((inc, _)) if !better_chain(&chain, inc) => {}
                    Some(slot) => *slot = (chain, p.what.clone()),
                    None => {
                        best.insert(key, (chain, p.what.clone()));
                    }
                }
            }
        }
    }
    for ((file, line), (chain, what)) in best {
        out.push(Finding {
            lint: "IL002",
            path: file,
            line,
            message: format!(
                "possible panic: {what} reachable from a durable/serving path via {chain}"
            ),
            hint: "propagate a typed error along the chain (StoreError / io::Error) or \
                   restructure so the serving path cannot reach this site",
        });
    }
}

// ---------------------------------------------------------------- IL003 deep

/// Deepened IL003: a call made while a mutex guard is live, where the
/// callee transitively reaches blocking I/O. The file-local pass only
/// sees I/O *names* in the scoped file itself; this catches the guard
/// smuggled through a helper. Reported at the call site in the scoped
/// file, with the chain down to the I/O.
pub fn il003_guard_into_io(g: &CallGraph, out: &mut Vec<Finding>) {
    let mut best: HashMap<(String, u32), (String, String, String)> = HashMap::new();
    for root in g.roots(|n| il003_in_scope(&n.file)) {
        let node = &g.nodes[root];
        for (ci, call) in node.facts.calls.iter().enumerate() {
            if call.held.is_empty() || IL003_IO_CALLS.contains(&call.name.as_str()) {
                continue;
            }
            let targets = &g.edges[root][ci];
            if targets.is_empty() {
                continue;
            }
            let reach = g.reach_many(targets, |n| audited_leaf(&n.file));
            let mut reached: Vec<usize> = reach.keys().copied().collect();
            reached.sort_unstable();
            for m in reached {
                for io in &g.nodes[m].facts.io {
                    let chain = format!("{} -> {}", node.label(), g.chain(&reach, m));
                    let key = (node.file.clone(), call.line);
                    let held = call.held.join(", ");
                    match best.get_mut(&key) {
                        Some((inc, _, _)) if !better_chain(&chain, inc) => {}
                        Some(slot) => *slot = (chain, io.what.clone(), held),
                        None => {
                            best.insert(key, (chain, io.what.clone(), held));
                        }
                    }
                }
            }
        }
    }
    for ((file, line), (chain, what, held)) in best {
        out.push(Finding {
            lint: "IL003",
            path: file,
            line,
            message: format!(
                "blocking I/O `{what}` reachable while mutex guard `{held}` is live, via {chain}"
            ),
            hint: "copy what you need out of the guard and drop it before the call, \
                   or hoist the I/O out of the locked region",
        });
    }
}

// ---------------------------------------------------------------- IL006

/// One "A held while acquiring B" observation with its witness.
struct LockEdge {
    file: String,
    line: u32,
    via: String,
}

/// IL006 lock-order: build the lock-acquisition order graph (an edge
/// A→B for every place lock B is acquired — directly or through calls —
/// while A is held) and report every cycle with per-edge witnesses.
/// A self-edge A→A is reported too: `std::sync::Mutex` is not reentrant,
/// so re-acquiring a held lock deadlocks on its own.
pub fn il006_lock_order(g: &CallGraph, out: &mut Vec<Finding>) {
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut note = |from: &str, to: &str, file: &str, line: u32, via: String| {
        edges.entry((from.to_string(), to.to_string())).or_insert_with(|| LockEdge {
            file: file.to_string(),
            line,
            via,
        });
    };
    for (i, node) in g.nodes.iter().enumerate() {
        if audited_leaf(&node.file) {
            continue;
        }
        // Direct nesting inside one body.
        for l in &node.facts.locks {
            for h in &l.held {
                note(h, &l.id, &node.file, l.line, node.label());
            }
        }
        // A call made under a guard, reaching an acquisition elsewhere.
        for (ci, call) in node.facts.calls.iter().enumerate() {
            if call.held.is_empty() || g.edges[i][ci].is_empty() {
                continue;
            }
            let reach = g.reach_many(&g.edges[i][ci], |n| audited_leaf(&n.file));
            let mut reached: Vec<usize> = reach.keys().copied().collect();
            reached.sort_unstable();
            for m in reached {
                for l in &g.nodes[m].facts.locks {
                    let via = format!("{} -> {}", node.label(), g.chain(&reach, m));
                    for h in &call.held {
                        note(h, &l.id, &node.file, call.line, via.clone());
                    }
                }
            }
        }
    }
    // Cycle search on the lock-id digraph: BFS from each node's
    // successors back to itself; dedup cycles by member set.
    let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a).or_default().push(b);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in succ.keys().copied().collect::<Vec<_>>() {
        let mut parent: HashMap<&str, &str> = HashMap::new();
        let mut q: Vec<&str> = Vec::new();
        for &t in &succ[start] {
            if !parent.contains_key(t) {
                parent.insert(t, start);
                q.push(t);
            }
        }
        let mut qi = 0;
        while qi < q.len() && !parent.contains_key(start) {
            let n = q[qi];
            qi += 1;
            for &t in succ.get(n).map(Vec::as_slice).unwrap_or_default() {
                if !parent.contains_key(t) {
                    parent.insert(t, n);
                    q.push(t);
                }
            }
        }
        if !parent.contains_key(start) {
            continue;
        }
        let mut cyc = vec![start.to_string()];
        let mut cur = start;
        loop {
            cur = parent[cur];
            cyc.push(cur.to_string());
            if cur == start {
                break;
            }
        }
        cyc.reverse();
        let mut key = cyc.clone();
        key.sort();
        key.dedup();
        if !seen.insert(key) {
            continue;
        }
        let witnesses: Vec<String> = cyc
            .windows(2)
            .map(|w| {
                let e = &edges[&(w[0].clone(), w[1].clone())];
                format!("{} -> {} at {}:{} via {}", w[0], w[1], e.file, e.line, e.via)
            })
            .collect();
        let first = &edges[&(cyc[0].clone(), cyc[1].clone())];
        out.push(Finding {
            lint: "IL006",
            path: first.file.clone(),
            line: first.line,
            message: format!("lock-order cycle {}: {}", cyc.join(" -> "), witnesses.join("; ")),
            hint: "impose one global acquisition order (document it in sync.rs) or \
                   collapse the locks; any cycle deadlocks under contention",
        });
    }
}

// ---------------------------------------------------------------- IL009

/// The per-delta recompute roots: everything the engine runs between
/// taking a delta batch off the channel and handing frames to writers.
fn il009_root(n: &Node) -> bool {
    n.file.starts_with("crates/service/src/")
        && n.impl_type.as_deref() == Some("Engine")
        && matches!(n.name.as_str(), "apply_delta" | "refresh")
}

/// IL009 delta-loop purity: nothing reachable from the engine's
/// per-delta recompute path may block — no lock acquisition, no
/// blocking I/O, no recursion cycle (unbounded stack) within the
/// service crate. The recompute path is the serving latency floor;
/// one blocking call there stalls every subscriber.
pub fn il009_delta_purity(g: &CallGraph, out: &mut Vec<Finding>) {
    let mut best: HashMap<(String, u32, &'static str), String> = HashMap::new();
    let mut cycles: BTreeSet<String> = BTreeSet::new();
    let mut cycle_site: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for root in g.roots(il009_root) {
        let reach = g.reach(root, |n| audited_leaf(&n.file));
        let mut reached: Vec<usize> = reach.keys().copied().collect();
        reached.sort_unstable();
        for &m in &reached {
            let node = &g.nodes[m];
            for l in &node.facts.locks {
                let chain = g.chain(&reach, m);
                let key: (String, u32, &'static str) = (node.file.clone(), l.line, "lock");
                match best.get_mut(&key) {
                    Some(inc) if !better_chain(&chain, inc) => {}
                    Some(slot) => *slot = chain,
                    None => {
                        best.insert(key, chain);
                    }
                }
            }
            for io in &node.facts.io {
                let chain = g.chain(&reach, m);
                let key: (String, u32, &'static str) = (node.file.clone(), io.line, "io");
                match best.get_mut(&key) {
                    Some(inc) if !better_chain(&chain, inc) => {}
                    Some(slot) => *slot = chain,
                    None => {
                        best.insert(key, chain);
                    }
                }
            }
        }
        // Recursion: cycles among reached service-crate nodes. Bounded
        // tree walks elsewhere (core's spatial indexes) are depth-capped
        // by construction; the serving crate has no business recursing.
        let members: HashSet<usize> = reached
            .iter()
            .copied()
            .filter(|&m| g.nodes[m].file.starts_with("crates/service/src/"))
            .collect();
        for cyc in g.cycles_within(&members) {
            let label = cyc.iter().map(|&i| g.nodes[i].label()).collect::<Vec<_>>().join(" -> ");
            if cycles.insert(label.clone()) {
                cycle_site.insert(label, (g.nodes[cyc[0]].file.clone(), g.nodes[cyc[0]].line));
            }
        }
    }
    for ((file, line, kind), chain) in best {
        let what = if kind == "lock" { "lock acquisition" } else { "blocking I/O" };
        out.push(Finding {
            lint: "IL009",
            path: file,
            line,
            message: format!(
                "delta-loop impurity: {what} reachable from the recompute path via {chain}"
            ),
            hint: "keep the per-delta path pure: snapshot state before the loop, buffer \
                   output through the writer channel, push I/O to the supervisor thread",
        });
    }
    for (label, (file, line)) in cycle_site {
        out.push(Finding {
            lint: "IL009",
            path: file,
            line,
            message: format!("delta-loop impurity: recursion cycle {label} on the recompute path"),
            hint: "replace the recursion with an explicit worklist; stack depth on the \
                   recompute path must be bounded by code, not by input",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::new(*rel, src)).collect();
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        il002_reachable_panics(&g, &mut out);
        il003_guard_into_io(&g, &mut out);
        il006_lock_order(&g, &mut out);
        il009_delta_purity(&g, &mut out);
        out
    }

    #[test]
    fn il002_deep_reports_multi_hop_chain() {
        let out = findings(&[
            ("crates/service/src/server.rs", "fn handle_x(&self) { step_one(); }"),
            ("crates/core/src/a.rs", "pub fn step_one() { step_two(); }"),
            ("crates/core/src/b.rs", "pub fn step_two(v: &[u8]) { v.first().unwrap(); }"),
        ]);
        let f = out.iter().find(|f| f.lint == "IL002").expect("deep IL002");
        assert_eq!(f.path, "crates/core/src/b.rs");
        assert!(f.message.contains("handle_x -> step_one -> step_two"), "{}", f.message);
    }

    #[test]
    fn il003_deep_sees_io_behind_helper() {
        let out = findings(&[(
            "crates/service/src/server.rs",
            "
            fn fan_out(&self) {
                let g = self.conns.lock();
                push_all(&g);
            }
            fn push_all(c: &C) { c.sock.write_all(b).ok(); }
            ",
        )]);
        let f = out.iter().find(|f| f.lint == "IL003").expect("deep IL003");
        assert!(f.message.contains("guard `conns`"), "{}", f.message);
        assert!(f.message.contains("fan_out -> push_all"), "{}", f.message);
    }

    #[test]
    fn il006_detects_cross_fn_cycle() {
        let out = findings(&[(
            "crates/service/src/engine.rs",
            "
            fn ab(&self) { let a = self.alpha.lock(); grab_beta(self); }
            fn grab_beta(s: &S) { let b = s.beta.lock(); }
            fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
            ",
        )]);
        let f = out.iter().find(|f| f.lint == "IL006").expect("cycle");
        assert!(f.message.contains("alpha") && f.message.contains("beta"), "{}", f.message);
        assert!(f.message.contains("ab -> grab_beta"), "{}", f.message);
    }

    #[test]
    fn il006_clean_on_consistent_order() {
        let out = findings(&[(
            "crates/service/src/engine.rs",
            "
            fn one(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            fn two(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            ",
        )]);
        assert!(!out.iter().any(|f| f.lint == "IL006"), "{out:?}");
    }

    #[test]
    fn il009_flags_lock_io_and_recursion() {
        let out = findings(&[(
            "crates/service/src/engine.rs",
            "
            impl Engine {
                fn apply_delta(&mut self) { self.recompute(); }
                fn recompute(&mut self) { let g = self.cache.lock(); self.spill(); self.recompute(); }
                fn spill(&self) { self.file.sync_all().ok(); }
            }
            ",
        )]);
        let il9: Vec<_> = out.iter().filter(|f| f.lint == "IL009").collect();
        assert!(il9.iter().any(|f| f.message.contains("lock acquisition")), "{il9:?}");
        assert!(il9.iter().any(|f| f.message.contains("blocking I/O")), "{il9:?}");
        assert!(il9.iter().any(|f| f.message.contains("recursion cycle")), "{il9:?}");
    }

    #[test]
    fn il009_clean_engine_is_quiet() {
        let out = findings(&[(
            "crates/service/src/engine.rs",
            "
            impl Engine {
                fn apply_delta(&mut self) { self.recompute(); }
                fn recompute(&mut self) { self.metrics.observe_delta(1); }
            }
            ",
        )]);
        assert!(!out.iter().any(|f| f.lint == "IL009"), "{out:?}");
    }
}
