//! IL007 wire-format symmetry and IL008 unchecked wire arithmetic.
//!
//! IL007 checks every protocol codec pair field-by-field against a
//! single declared layout table ([`PAIRS`]): the table is the canonical
//! statement of the wire format, the encoder is checked against its
//! per-variant linearization (widths and written-identifier labels), the
//! decoder against its flat read sequence (accessor kinds and exact
//! label strings). A new frame kind that encodes what it doesn't decode
//! — or a swapped `ts`/`te` — is a lint error naming the field, not a
//! replay divergence at runtime. The store-format magics get a
//! complementary symmetry check: each `IF*` magic is defined exactly
//! once and referenced on both the write and the verify side.
//!
//! IL008 taints `let` bindings fed from raw `Cursor::u32`/`u64` reads
//! and flags `+`/`*`/`as` on them unless routed through
//! `Cursor::count`/`checked_*`/clamping — the unchecked
//! `Vec::with_capacity(n as usize)` class of bug.

use crate::ast::parse_fns;
use crate::lexer::{Tok, TokKind};
use crate::rules::{Finding, SourceFile, FORMAT_MAGIC};
use std::collections::{HashMap, HashSet};

/// The single module whose codec pairs are held to the layout table.
const PROTOCOL_MODULE: &str = "crates/service/src/protocol.rs";
/// The framing module is the sanctioned raw-parse layer; its own
/// arithmetic sits behind explicit bounds checks and is exempt from
/// IL008 (consistent with its IL002/IL004 treatment).
const FRAME_MODULE: &str = "crates/tracking/src/store/frame.rs";

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    U8,
    U32,
    U64,
    F64,
    /// A u32 element count that gates a following repeated section; the
    /// decoder must read it via `Cursor::count` (or at minimum `u32`).
    Count,
}

impl Kind {
    fn width(self) -> usize {
        match self {
            Kind::U8 => 1,
            Kind::U32 | Kind::Count => 4,
            Kind::U64 | Kind::F64 => 8,
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Field {
    kind: Kind,
    label: &'static str,
}

const fn f(kind: Kind, label: &'static str) -> Field {
    Field { kind, label }
}

/// A declared payload layout. `variants` model a leading discriminator:
/// the encoder writes `head + one variant` per match arm (so its
/// linearization repeats the head per variant), the decoder reads the
/// head once and then every variant branch appears in source order.
/// Repeated sections (count-gated loops) are declared once.
pub struct Layout {
    head: &'static [Field],
    variants: &'static [&'static [Field]],
    tail: &'static [Field],
}

impl Layout {
    fn encoder_fields(&self) -> Vec<Field> {
        let mut v = Vec::new();
        if self.variants.is_empty() {
            v.extend_from_slice(self.head);
        } else {
            for var in self.variants {
                v.extend_from_slice(self.head);
                v.extend_from_slice(var);
            }
        }
        v.extend_from_slice(self.tail);
        v
    }

    fn decoder_fields(&self) -> Vec<Field> {
        let mut v = Vec::new();
        v.extend_from_slice(self.head);
        for var in self.variants {
            v.extend_from_slice(var);
        }
        v.extend_from_slice(self.tail);
        v
    }
}

pub struct Pair {
    name: &'static str,
    enc: &'static str,
    /// `None` when the decoder side is owned by another pair (the
    /// subspec decoder is `decode_subscribe`, checked by `subscribe`).
    dec: Option<&'static str>,
    layout: Layout,
}

const SUBSPEC_HEAD: &[Field] = &[f(Kind::U8, "kind")];
const SUBSPEC_VARIANTS: &[&[Field]] = &[
    &[f(Kind::F64, "t"), f(Kind::F64, "pad")],
    &[f(Kind::F64, "ts"), f(Kind::F64, "te")],
    &[f(Kind::F64, "t"), f(Kind::U32, "kq"), f(Kind::U32, "kmax")],
    &[f(Kind::F64, "ts"), f(Kind::F64, "te"), f(Kind::F64, "d")],
];
const SUBSPEC_TAIL: &[Field] =
    &[f(Kind::U32, "k"), f(Kind::F64, "epsilon"), f(Kind::Count, "poi count"), f(Kind::U32, "poi")];
const SUBSCRIBE_TAIL: &[Field] = &[
    f(Kind::U32, "k"),
    f(Kind::F64, "epsilon"),
    f(Kind::Count, "poi count"),
    f(Kind::U32, "poi"),
    f(Kind::U64, "resume last_seq"),
    f(Kind::U64, "resume last_hash"),
];
const RANKED_FIELDS: &[Field] =
    &[f(Kind::Count, "entry count"), f(Kind::U32, "poi"), f(Kind::F64, "flow")];

/// The declared wire layouts — the one table both codec sides answer to.
pub const PAIRS: &[Pair] = &[
    Pair {
        name: "publish",
        enc: "encode_publish",
        dec: Some("decode_publish"),
        layout: Layout {
            head: &[
                f(Kind::Count, "reading count"),
                f(Kind::U32, "object"),
                f(Kind::U32, "device"),
                f(Kind::F64, "t"),
            ],
            variants: &[],
            tail: &[],
        },
    },
    Pair {
        name: "subspec",
        enc: "encode_subspec",
        dec: None,
        layout: Layout { head: SUBSPEC_HEAD, variants: SUBSPEC_VARIANTS, tail: SUBSPEC_TAIL },
    },
    Pair {
        name: "subscribe",
        enc: "encode_subscribe",
        dec: Some("decode_subscribe"),
        layout: Layout { head: SUBSPEC_HEAD, variants: SUBSPEC_VARIANTS, tail: SUBSCRIBE_TAIL },
    },
    Pair {
        name: "ranked",
        enc: "encode_ranked",
        dec: Some("decode_ranked"),
        layout: Layout { head: RANKED_FIELDS, variants: &[], tail: &[] },
    },
    Pair {
        name: "update",
        enc: "encode_update_traced",
        dec: Some("decode_update"),
        layout: Layout {
            head: &[
                f(Kind::U64, "sub id"),
                f(Kind::U64, "seq"),
                f(Kind::Count, "entry count"),
                f(Kind::U32, "poi"),
                f(Kind::F64, "flow"),
                f(Kind::U64, "trace id"),
                f(Kind::U8, "hop count"),
                f(Kind::U8, "hop code"),
                f(Kind::U64, "hop at_ns"),
            ],
            variants: &[],
            tail: &[],
        },
    },
    Pair {
        name: "rows",
        enc: "encode_rows",
        dec: Some("decode_rows"),
        layout: Layout {
            head: &[
                f(Kind::Count, "row count"),
                f(Kind::U32, "object"),
                f(Kind::U32, "device"),
                f(Kind::F64, "ts"),
                f(Kind::F64, "te"),
            ],
            variants: &[],
            tail: &[],
        },
    },
    Pair {
        name: "u64",
        enc: "encode_u64",
        dec: Some("decode_u64"),
        layout: Layout { head: &[f(Kind::U64, "id")], variants: &[], tail: &[] },
    },
    Pair {
        name: "state_hash",
        enc: "encode_state_hash",
        dec: Some("decode_state_hash"),
        layout: Layout {
            head: &[
                f(Kind::U64, "engine hash"),
                f(Kind::Count, "shard count"),
                f(Kind::U64, "shard hash"),
            ],
            variants: &[],
            tail: &[],
        },
    },
    Pair {
        name: "u32",
        enc: "encode_u32",
        dec: Some("decode_u32"),
        layout: Layout { head: &[f(Kind::U32, "version")], variants: &[], tail: &[] },
    },
];

/// Frame-module fixed-width helpers an encoder may splice in, declared
/// by their field expansion; plus module-local sub-encoders, which
/// expand to their pair's encoder linearization.
fn splice_fields(name: &str) -> Option<Vec<Field>> {
    match name {
        "encode_reading" => {
            Some(vec![f(Kind::U32, "object"), f(Kind::U32, "device"), f(Kind::F64, "t")])
        }
        "encode_row" => Some(vec![
            f(Kind::U32, "object"),
            f(Kind::U32, "device"),
            f(Kind::F64, "ts"),
            f(Kind::F64, "te"),
        ]),
        _ => PAIRS.iter().find(|p| p.enc == name).map(|p| p.layout.encoder_fields()),
    }
}

/// Idents that never name the field being written (receivers, plumbing,
/// type names); the *last* remaining ident in a write statement is the
/// label the encoder is claiming.
const LABEL_STOPWORDS: [&str; 24] = [
    "b",
    "buf",
    "out",
    "extend_from_slice",
    "to_le_bytes",
    "to_vec",
    "to_bits",
    "push",
    "as",
    "let",
    "mut",
    "if",
    "else",
    "for",
    "in",
    "while",
    "self",
    "frame",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "f64",
];

/// Does written-ident `ident` plausibly name declared field `label`?
/// Labels are phrases ("resume last_seq"); any word, the last word, or
/// the underscored phrase counts.
fn label_matches(ident: &str, label: &str) -> bool {
    label == ident
        || label.replace(' ', "_") == ident
        || label.split_whitespace().any(|w| w == ident)
}

/// The stricter form used to accuse a *different* field (swap report):
/// exact, underscored, or last-word equality only.
fn label_matches_strict(ident: &str, label: &str) -> bool {
    label == ident
        || label.replace(' ', "_") == ident
        || label.split_whitespace().next_back() == Some(ident)
}

/// Statement ranges `[lo, hi)` within a body: split on `;`, `{`, `}`.
fn stmts(toks: &[Tok], body: (usize, usize)) -> Vec<(usize, usize)> {
    let (lo, hi) = (body.0, body.1.min(toks.len()));
    let mut out = Vec::new();
    let mut start = lo;
    for (i, t) in toks.iter().enumerate().take(hi).skip(lo) {
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            if i > start {
                out.push((start, i));
            }
            start = i + 1;
        }
    }
    if hi > start {
        out.push((start, hi));
    }
    out
}

/// One write the encoder performs, in source order.
enum EncOp {
    /// A call to a declared helper/sub-encoder: expands to its fields.
    Splice(String),
    /// A direct write: inferred byte width and claimed label, if any.
    Write { width: Option<usize>, label: Option<String>, line: u32 },
}

/// `name: u8/u32/…` parameter types from the signature, for width
/// inference on `&v.to_le_bytes()` writes.
fn param_widths(toks: &[Tok], sig: (usize, usize)) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    let range = &toks[sig.0..sig.1.min(toks.len())];
    for i in 0..range.len().saturating_sub(2) {
        if range[i].kind == TokKind::Ident && range[i + 1].is_punct(":") {
            let w = match range[i + 2].text.as_str() {
                "u8" => Some(1),
                "u16" => Some(2),
                "u32" | "f32" => Some(4),
                "u64" | "f64" => Some(8),
                _ => None,
            };
            if let Some(w) = w {
                m.insert(range[i].text.clone(), w);
            }
        }
    }
    m
}

fn num_suffix_width(text: &str) -> Option<usize> {
    for (suf, w) in [("u8", 1), ("u16", 2), ("u32", 4), ("f32", 4), ("u64", 8), ("f64", 8)] {
        if text.ends_with(suf) {
            return Some(w);
        }
    }
    None
}

fn encoder_ops(toks: &[Tok], body: (usize, usize), params: &HashMap<String, usize>) -> Vec<EncOp> {
    let mut ops = Vec::new();
    for (lo, hi) in stmts(toks, body) {
        let s = &toks[lo..hi];
        if let Some(sp) = s.iter().enumerate().find_map(|(i, t)| {
            (t.kind == TokKind::Ident
                && splice_fields(&t.text).is_some()
                && matches!(s.get(i + 1), Some(n) if n.is_punct("(")))
            .then(|| t.text.clone())
        }) {
            ops.push(EncOp::Splice(sp));
            continue;
        }
        let tlb = s.iter().position(|t| t.is_ident("to_le_bytes"));
        let is_push = s
            .iter()
            .enumerate()
            .any(|(i, t)| t.is_ident("push") && matches!(s.get(i + 1), Some(n) if n.is_punct("(")));
        if tlb.is_none() && !is_push {
            continue;
        }
        let scan_end = tlb.unwrap_or(s.len());
        let label = s[..scan_end]
            .iter()
            .rfind(|t| t.kind == TokKind::Ident && !LABEL_STOPWORDS.contains(&t.text.as_str()))
            .map(|t| t.text.clone());
        let width = if tlb.is_none() {
            Some(1) // `.push(byte)`
        } else {
            // Priority: an `as uN` cast, a suffixed literal, `to_bits`
            // (f64), then the parameter's declared type.
            s.iter()
                .enumerate()
                .rev()
                .find_map(|(i, t)| {
                    (t.is_ident("as") && i + 1 < s.len())
                        .then(|| num_suffix_width(&s[i + 1].text))
                        .flatten()
                })
                .or_else(|| {
                    let i = scan_end;
                    (i >= 2 && s[i - 1].is_punct(".") && s[i - 2].kind == TokKind::Num)
                        .then(|| num_suffix_width(&s[i - 2].text))
                        .flatten()
                })
                .or_else(|| s.iter().any(|t| t.is_ident("to_bits")).then_some(8))
                .or_else(|| label.as_deref().and_then(|l| params.get(l).copied()))
        };
        let line = s[tlb.unwrap_or(0)].line;
        ops.push(EncOp::Write { width, label, line });
    }
    ops
}

fn check_encoder(
    pair: &Pair,
    rel: &str,
    toks: &[Tok],
    sig: (usize, usize),
    body: (usize, usize),
    fn_line: u32,
    out: &mut Vec<Finding>,
) {
    let expected = pair.layout.encoder_fields();
    let params = param_widths(toks, sig);
    let ops = encoder_ops(toks, body, &params);
    let mut i = 0usize;
    for op in &ops {
        match op {
            EncOp::Splice(name) => {
                for sf in splice_fields(name).unwrap_or_default() {
                    match expected.get(i) {
                        Some(e) if e.kind == sf.kind && e.label == sf.label => i += 1,
                        Some(e) => {
                            out.push(finding007(
                                rel,
                                fn_line,
                                format!(
                                    "codec pair `{}`: `{}` splices field `{}` where the layout \
                                     declares `{}`",
                                    pair.name, name, sf.label, e.label
                                ),
                            ));
                            return;
                        }
                        None => {
                            i += 1; // counted; over-write reported below
                        }
                    }
                }
            }
            EncOp::Write { width, label, line } => {
                let Some(e) = expected.get(i) else {
                    i += 1;
                    continue;
                };
                if let Some(w) = width {
                    if *w != e.kind.width() {
                        out.push(finding007(
                            rel,
                            *line,
                            format!(
                                "codec pair `{}`: encoder writes {} bytes where field `{}` \
                                 is declared {} bytes",
                                pair.name,
                                w,
                                e.label,
                                e.kind.width()
                            ),
                        ));
                    }
                }
                if let Some(l) = label {
                    if !label_matches(l, e.label) {
                        if let Some(other) = expected
                            .iter()
                            .find(|o| o.label != e.label && label_matches_strict(l, o.label))
                        {
                            out.push(finding007(
                                rel,
                                *line,
                                format!(
                                    "codec pair `{}`: encoder writes `{}` where field `{}` is \
                                     declared (matches declared field `{}` — swapped?)",
                                    pair.name, l, e.label, other.label
                                ),
                            ));
                        }
                    }
                }
                i += 1;
            }
        }
    }
    if i != expected.len() {
        out.push(finding007(
            rel,
            fn_line,
            format!(
                "codec pair `{}`: encoder writes {} fields where the layout declares {}",
                pair.name,
                i,
                expected.len()
            ),
        ));
    }
}

/// Cursor accessor reads a decoder performs, in source order.
struct DecOp {
    kind: Kind,
    label: String,
    line: u32,
}

fn decoder_ops(toks: &[Tok], body: (usize, usize)) -> Vec<DecOp> {
    let (lo, hi) = (body.0, body.1.min(toks.len()));
    let mut ops = Vec::new();
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident || i == lo || !toks[i - 1].is_punct(".") {
            continue;
        }
        let kind = match t.text.as_str() {
            "u8" => Kind::U8,
            "u32" => Kind::U32,
            "u64" => Kind::U64,
            "f64" | "finite_f64" => Kind::F64,
            "count" => Kind::Count,
            _ => continue,
        };
        if !matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            continue;
        }
        let Some(lab) = toks.get(i + 2).filter(|l| l.kind == TokKind::Str) else { continue };
        ops.push(DecOp { kind, label: lab.text.clone(), line: t.line });
    }
    ops
}

fn dec_kind_ok(op: Kind, declared: Kind) -> bool {
    op == declared || (declared == Kind::Count && op == Kind::U32)
}

fn check_decoder(
    pair: &Pair,
    rel: &str,
    toks: &[Tok],
    body: (usize, usize),
    fn_line: u32,
    out: &mut Vec<Finding>,
) {
    let expected = pair.layout.decoder_fields();
    let ops = decoder_ops(toks, body);
    for (i, e) in expected.iter().enumerate() {
        let Some(op) = ops.get(i) else {
            out.push(finding007(
                rel,
                fn_line,
                format!(
                    "codec pair `{}`: decoder reads {} fields where the layout declares {} \
                     (first missing: `{}`)",
                    pair.name,
                    ops.len(),
                    expected.len(),
                    e.label
                ),
            ));
            return;
        };
        if !dec_kind_ok(op.kind, e.kind) {
            out.push(finding007(
                rel,
                op.line,
                format!(
                    "codec pair `{}`: decoder reads `{}` as {:?} where the layout declares \
                     field `{}` as {:?}",
                    pair.name, op.label, op.kind, e.label, e.kind
                ),
            ));
            return;
        }
        if op.label != e.label {
            out.push(finding007(
                rel,
                op.line,
                format!(
                    "codec pair `{}`: decoder reads `{}` where the layout declares field `{}`",
                    pair.name, op.label, e.label
                ),
            ));
            return;
        }
    }
    if ops.len() > expected.len() {
        out.push(finding007(
            rel,
            ops[expected.len()].line,
            format!(
                "codec pair `{}`: decoder reads {} fields where the layout declares {}",
                pair.name,
                ops.len(),
                expected.len()
            ),
        ));
    }
}

fn finding007(rel: &str, line: u32, message: String) -> Finding {
    Finding {
        lint: "IL007",
        path: rel.to_string(),
        line,
        message,
        hint: "bring encoder, decoder and the declared layout table (lint::wire::PAIRS) \
               back into agreement — the table is the wire contract",
    }
}

/// IL007 over one protocol module: every pair's two sides against the
/// table, plus completeness — an `encode_*`/`decode_*` fn that is
/// neither a pair member nor a wrapper delegating to one has silently
/// left the contract.
fn il007_module(file: &SourceFile, out: &mut Vec<Finding>) {
    let items = parse_fns(&file.toks);
    let by_name: HashMap<&str, &crate::ast::AstFn> =
        items.iter().filter(|i| !i.in_test).map(|i| (i.name.as_str(), i)).collect();
    let mut covered: HashSet<&str> = HashSet::new();
    covered.extend(["encode_reading", "encode_row"]);
    for pair in PAIRS {
        covered.insert(pair.enc);
        if let Some(d) = pair.dec {
            covered.insert(d);
        }
        match (by_name.get(pair.enc), pair.dec.and_then(|d| by_name.get(d))) {
            (None, None) => continue, // pair absent from this module (fixtures)
            (enc, dec) => {
                match enc {
                    Some(it) => {
                        if let Some(body) = it.body {
                            check_encoder(pair, &file.rel, &file.toks, it.sig, body, it.line, out);
                        }
                    }
                    None => out.push(finding007(
                        &file.rel,
                        1,
                        format!(
                            "codec pair `{}`: decoder present but encoder `{}` is missing",
                            pair.name, pair.enc
                        ),
                    )),
                }
                match (pair.dec, dec) {
                    (Some(name), None) => out.push(finding007(
                        &file.rel,
                        1,
                        format!(
                            "codec pair `{}`: encoder present but decoder `{}` is missing",
                            pair.name, name
                        ),
                    )),
                    (_, Some(it)) => {
                        if let Some(body) = it.body {
                            check_decoder(pair, &file.rel, &file.toks, body, it.line, out);
                        }
                    }
                    (None, None) => {}
                }
            }
        }
    }
    // Completeness: wrappers are covered by calling a covered codec.
    for it in items.iter().filter(|i| !i.in_test) {
        let is_enc = it.name.starts_with("encode_");
        let is_dec = it.name.starts_with("decode_") && toks_mention(&file.toks, it.sig, "payload");
        if (!is_enc && !is_dec) || covered.contains(it.name.as_str()) {
            continue;
        }
        let delegates = it.body.is_some_and(|(lo, hi)| {
            file.toks[lo..hi.min(file.toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Ident && covered.contains(t.text.as_str()))
        });
        if !delegates {
            out.push(finding007(
                &file.rel,
                it.line,
                format!(
                    "codec `{}` is not covered by any declared wire layout (add a \
                     lint::wire::PAIRS entry)",
                    it.name
                ),
            ));
        }
    }
}

fn toks_mention(toks: &[Tok], range: (usize, usize), name: &str) -> bool {
    toks[range.0..range.1.min(toks.len())].iter().any(|t| t.is_ident(name))
}

/// Store-format magic symmetry: each `IF*` magic string is defined in
/// exactly one `const *_MAGIC`, and that const is referenced at least
/// twice outside its definition — once writing, once verifying. A magic
/// that is written but never checked (or vice versa) lets the two sides
/// of the format drift.
fn il007_magics(files: &[SourceFile], out: &mut Vec<Finding>) {
    // magic string -> definitions (file, line, const name).
    let mut defs: HashMap<&str, Vec<(String, u32, String)>> = HashMap::new();
    for file in files {
        // The lint crate itself carries the magic table as data.
        if file.rel.starts_with("crates/lint/") {
            continue;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.in_test || t.kind != TokKind::Str {
                continue;
            }
            let Some(magic) = FORMAT_MAGIC.iter().find(|m| t.text.contains(*m)) else { continue };
            let start = crate::rules::stmt_start(&file.toks, i);
            let name = file.toks[start..i]
                .iter()
                .find(|s| s.kind == TokKind::Ident && s.text.ends_with("_MAGIC"))
                .map(|s| s.text.clone());
            if let Some(name) = name {
                defs.entry(magic).or_default().push((file.rel.clone(), t.line, name));
            }
        }
    }
    let mut magics: Vec<&&str> = defs.keys().collect();
    magics.sort();
    for magic in magics {
        let d = &defs[*magic];
        if d.len() > 1 {
            let places =
                d.iter().map(|(f, l, _)| format!("{f}:{l}")).collect::<Vec<_>>().join(", ");
            out.push(Finding {
                lint: "IL007",
                path: d[0].0.clone(),
                line: d[0].1,
                message: format!(
                    "format magic \"{magic}\" defined in more than one const: {places}"
                ),
                hint: "one magic, one const; re-spelled definitions drift independently",
            });
            continue;
        }
        let (def_file, def_line, name) = &d[0];
        let refs: usize = files
            .iter()
            .filter(|file| !file.rel.starts_with("crates/lint/"))
            .map(|file| {
                file.toks
                    .iter()
                    .filter(|t| {
                        !t.in_test
                            && t.kind == TokKind::Ident
                            && t.text == *name
                            && !(file.rel == *def_file && t.line == *def_line)
                    })
                    .count()
            })
            .sum();
        if refs < 2 {
            out.push(Finding {
                lint: "IL007",
                path: def_file.clone(),
                line: *def_line,
                message: format!(
                    "format magic `{name}` is referenced {refs} time(s) outside its \
                     definition — a magic must be both written and verified"
                ),
                hint: "write the const when encoding and starts_with-check it when \
                       decoding; a one-sided magic cannot catch format drift",
            });
        }
    }
}

/// IL007 entry point.
pub fn il007_wire_symmetry(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.rel == PROTOCOL_MODULE {
            il007_module(file, out);
        }
    }
    il007_magics(files, out);
}

// ---------------------------------------------------------------- IL008

const IL008_HINT: &str = "read counts via Cursor::count (validates against remaining \
                          payload) or clamp/check: .min(..), checked_add/checked_mul";

fn stmt_has(s: &[Tok], pred: impl Fn(&Tok) -> bool) -> bool {
    s.iter().any(pred)
}

fn clamped(s: &[Tok]) -> bool {
    stmt_has(s, |t| {
        t.kind == TokKind::Ident
            && (t.text.starts_with("checked_")
                || t.text.starts_with("saturating_")
                || t.text.starts_with("wrapping_")
                || t.text == "min"
                || t.text == "max")
    })
}

/// IL008 unchecked wire arithmetic: a `let n = c.u32("…")…` read taints
/// `n`; `+`/`*`/`as` on a tainted length — or using it to size an
/// allocation — is flagged unless the statement clamps or checks.
/// Reads routed through `Cursor::count` are pre-validated and clean.
pub fn il008_wire_arithmetic(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.rel == FRAME_MODULE {
            continue;
        }
        for item in parse_fns(&file.toks) {
            if item.in_test {
                continue;
            }
            let Some(body) = item.body else { continue };
            il008_body(file, body, out);
        }
    }
}

fn il008_body(file: &SourceFile, body: (usize, usize), out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut tainted: HashSet<String> = HashSet::new();
    let mut reported: HashSet<String> = HashSet::new();
    for (lo, hi) in stmts(toks, body) {
        let s = &toks[lo..hi];
        // A raw length read: `.u32("label")` / `.u64("label")`.
        let read = s.iter().enumerate().find_map(|(i, t)| {
            (t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "u32" | "u64")
                && i > 0
                && s[i - 1].is_punct(".")
                && matches!(s.get(i + 1), Some(n) if n.is_punct("("))
                && matches!(s.get(i + 2), Some(l) if l.kind == TokKind::Str))
            .then(|| (i, s[i + 2].text.clone(), t.line))
        });
        if let Some((ri, label, line)) = read {
            let counted = s
                .iter()
                .enumerate()
                .any(|(i, t)| t.is_ident("count") && i > 0 && s[i - 1].is_punct("."));
            let arith =
                s[ri..].iter().any(|t| t.is_punct("+") || t.is_punct("*") || t.is_ident("as"));
            if arith && !clamped(s) && !counted {
                out.push(Finding {
                    lint: "IL008",
                    path: file.rel.clone(),
                    line,
                    message: format!(
                        "unchecked arithmetic/cast on wire-derived `{label}` in the same \
                         statement as the raw read"
                    ),
                    hint: IL008_HINT,
                });
            } else if !clamped(s) && !counted && s.first().is_some_and(|t| t.is_ident("let")) {
                if let Some(name) = s[1..]
                    .iter()
                    .take_while(|t| !t.is_punct("="))
                    .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                {
                    tainted.insert(name.text.clone());
                }
            }
            continue;
        }
        // Uses of tainted lengths.
        let shadow = s.first().is_some_and(|t| t.is_ident("let"));
        let alloc = stmt_has(s, |t| t.is_ident("with_capacity"))
            || s.iter().enumerate().any(|(i, t)| {
                t.is_ident("vec") && matches!(s.get(i + 1), Some(n) if n.is_punct("!"))
            });
        let mut untaint: Vec<String> = Vec::new();
        for (i, t) in s.iter().enumerate() {
            if t.kind != TokKind::Ident || !tainted.contains(&t.text) {
                continue;
            }
            if reported.contains(&t.text) {
                continue;
            }
            if clamped(s) {
                untaint.push(t.text.clone());
                continue;
            }
            let prev = i.checked_sub(1).map(|j| &s[j]);
            let next = s.get(i + 1);
            let cmp = prev.is_some_and(|p| p.is_punct("<") || p.is_punct(">"))
                || next.is_some_and(|n| n.is_punct("<") || n.is_punct(">"));
            if cmp {
                untaint.push(t.text.clone());
                continue;
            }
            let arith = prev.is_some_and(|p| p.is_punct("+") || p.is_punct("*"))
                || next.is_some_and(|n| n.is_punct("+") || n.is_punct("*") || n.is_ident("as"));
            if arith || alloc {
                out.push(Finding {
                    lint: "IL008",
                    path: file.rel.clone(),
                    line: t.line,
                    message: if arith {
                        format!("unchecked arithmetic on wire-derived length `{}`", t.text)
                    } else {
                        format!("wire-derived length `{}` sizes an allocation unchecked", t.text)
                    },
                    hint: IL008_HINT,
                });
                reported.insert(t.text.clone());
                untaint.push(t.text.clone());
            } else if shadow
                && s[1..].iter().take_while(|x| !x.is_punct("=")).any(|x| x.text == t.text)
            {
                untaint.push(t.text.clone());
            }
        }
        for n in untaint {
            tainted.remove(&n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_protocol(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new(PROTOCOL_MODULE, src)];
        let mut out = Vec::new();
        il007_wire_symmetry(&files, &mut out);
        out
    }

    #[test]
    fn matched_pair_is_clean() {
        let out = lint_protocol(
            r#"
            pub fn encode_ranked(ranked: &[(PoiId, f64)]) -> Vec<u8> {
                let mut b = Vec::new();
                b.extend_from_slice(&(ranked.len() as u32).to_le_bytes());
                for &(p, flow) in ranked {
                    b.extend_from_slice(&p.0.to_le_bytes());
                    b.extend_from_slice(&flow.to_le_bytes());
                }
                b
            }
            pub fn decode_ranked(payload: &[u8]) -> io::Result<Vec<(PoiId, f64)>> {
                let mut c = cursor(payload);
                let n = c.u32("entry count").map_err(decode_err)? as usize;
                for _ in 0..n {
                    let p = c.u32("poi").map_err(decode_err)?;
                    let f = c.finite_f64("flow").map_err(decode_err)?;
                }
                Ok(out)
            }
        "#,
        );
        assert!(out.iter().all(|f| f.lint != "IL007"), "{out:?}");
    }

    #[test]
    fn desynced_decoder_names_the_field() {
        // Decoder reads flow before poi: order desync.
        let out = lint_protocol(
            r#"
            pub fn encode_ranked(ranked: &[(PoiId, f64)]) -> Vec<u8> {
                let mut b = Vec::new();
                b.extend_from_slice(&(ranked.len() as u32).to_le_bytes());
                for &(p, flow) in ranked {
                    b.extend_from_slice(&p.0.to_le_bytes());
                    b.extend_from_slice(&flow.to_le_bytes());
                }
                b
            }
            pub fn decode_ranked(payload: &[u8]) -> io::Result<Vec<(PoiId, f64)>> {
                let mut c = cursor(payload);
                let n = c.u32("entry count").map_err(decode_err)?;
                for _ in 0..n {
                    let f = c.finite_f64("flow").map_err(decode_err)?;
                    let p = c.u32("poi").map_err(decode_err)?;
                }
                Ok(out)
            }
        "#,
        );
        let f = out.iter().find(|f| f.lint == "IL007").expect("desync");
        assert!(f.message.contains("`flow`") && f.message.contains("`poi`"), "{}", f.message);
    }

    #[test]
    fn swapped_encoder_idents_are_reported() {
        let out = lint_protocol(
            r#"
            pub fn encode_rows(rows: &[OttRow]) -> Vec<u8> {
                let mut b = Vec::new();
                b.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for r in rows {
                    b.extend_from_slice(&r.object.to_le_bytes());
                    b.extend_from_slice(&r.device.to_le_bytes());
                    b.extend_from_slice(&r.te.to_le_bytes());
                    b.extend_from_slice(&r.ts.to_le_bytes());
                }
                b
            }
            pub fn decode_rows(payload: &[u8]) -> io::Result<Vec<OttRow>> {
                let mut c = cursor(payload);
                let n = c.u32("row count").map_err(decode_err)?;
                for _ in 0..n {
                    let o = c.u32("object").map_err(decode_err)?;
                    let d = c.u32("device").map_err(decode_err)?;
                    let ts = c.finite_f64("ts").map_err(decode_err)?;
                    let te = c.finite_f64("te").map_err(decode_err)?;
                }
                Ok(out)
            }
        "#,
        );
        let f = out.iter().find(|f| f.message.contains("swapped")).expect("swap");
        assert!(f.message.contains("`te`") && f.message.contains("`ts`"), "{}", f.message);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let out = lint_protocol(
            r#"
            pub fn encode_u32(v: u32) -> Vec<u8> {
                v.to_le_bytes().to_vec()
            }
            pub fn decode_u32(payload: &[u8]) -> io::Result<u32> {
                let mut c = cursor(payload);
                let v = c.u32("version").map_err(decode_err)?;
                Ok(v)
            }
            pub fn encode_u64(v: u32) -> Vec<u8> {
                v.to_le_bytes().to_vec()
            }
            pub fn decode_u64(payload: &[u8]) -> io::Result<u64> {
                let mut c = cursor(payload);
                let v = c.u64("id").map_err(decode_err)?;
                Ok(v)
            }
        "#,
        );
        let f = out.iter().find(|f| f.message.contains("bytes")).expect("width");
        assert!(f.message.contains("`id`"), "{}", f.message);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn uncovered_codec_is_reported() {
        let out = lint_protocol(
            r#"
            pub fn encode_mystery(v: u64) -> Vec<u8> { v.to_le_bytes().to_vec() }
            pub fn decode_mystery(payload: &[u8]) -> io::Result<u64> {
                let mut c = cursor(payload);
                Ok(c.u64("mystery").map_err(decode_err)?)
            }
        "#,
        );
        assert!(out.iter().any(|f| f.message.contains("encode_mystery")), "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("decode_mystery")), "{out:?}");
    }

    #[test]
    fn one_sided_magic_is_reported() {
        let files = vec![SourceFile::new(
            "crates/tracking/src/store/wal.rs",
            r#"
            pub const WAL_MAGIC: &[u8; 8] = b"IFWAL001";
            fn write_header(buf: &mut Vec<u8>) { buf.extend_from_slice(WAL_MAGIC); }
            "#,
        )];
        let mut out = Vec::new();
        il007_wire_symmetry(&files, &mut out);
        let f = out.iter().find(|f| f.message.contains("WAL_MAGIC")).expect("magic");
        assert!(f.message.contains("written and verified"), "{}", f.message);
    }

    #[test]
    fn two_sided_magic_is_clean() {
        let files = vec![SourceFile::new(
            "crates/tracking/src/store/wal.rs",
            r#"
            pub const WAL_MAGIC: &[u8; 8] = b"IFWAL001";
            fn write_header(buf: &mut Vec<u8>) { buf.extend_from_slice(WAL_MAGIC); }
            fn check_header(bytes: &[u8]) -> bool { bytes.starts_with(WAL_MAGIC) }
            "#,
        )];
        let mut out = Vec::new();
        il007_wire_symmetry(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    fn lint008(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new("crates/replay/src/log.rs", src)];
        let mut out = Vec::new();
        il008_wire_arithmetic(&files, &mut out);
        out
    }

    #[test]
    fn raw_read_with_cast_is_flagged() {
        let out = lint008(
            r#"
            fn decode(c: &mut Cursor) {
                let n = c.u32("record count").unwrap() as usize;
            }
        "#,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("record count"), "{}", out[0].message);
    }

    #[test]
    fn tainted_length_sizing_allocation_is_flagged() {
        let out = lint008(
            r#"
            fn decode(c: &mut Cursor) {
                let n = c.u32("record count").unwrap();
                let v = Vec::with_capacity(n);
            }
        "#,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("allocation"), "{}", out[0].message);
    }

    #[test]
    fn count_accessor_and_clamps_are_clean() {
        let out = lint008(
            r#"
            fn decode(c: &mut Cursor) {
                let n = c.count("record count", 16).unwrap();
                let v = Vec::with_capacity(n);
                let k = c.u32("k").unwrap().min(4096) as usize;
                let m = c.u64("len").unwrap();
                let m = m.checked_add(1).unwrap_or(0);
                if m > 10 { return; }
            }
        "#,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn comparison_validates_a_length() {
        let out = lint008(
            r#"
            fn decode(c: &mut Cursor) {
                let n = c.u64("len").unwrap();
                if n > limit { return; }
                let end = n + 1;
            }
        "#,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
