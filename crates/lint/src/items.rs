//! A lightweight item index over the token stream: every `fn` with its
//! name, visibility, enclosing `impl` type, signature and body token
//! ranges. IL005 (obs coverage) needs this to identify query entry
//! points and walk their intra-crate call graph; IL001 uses the same
//! `fn`-adjacency information to skip `fn partial_cmp` trait-impl
//! definitions.

use crate::lexer::{Tok, TokKind};

#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Bare `pub` only — `pub(crate)` / `pub(super)` are internal and do
    /// not make a fn an entry point.
    pub is_pub: bool,
    /// Name of the `impl` target type when the fn is an inherent or
    /// trait method.
    pub impl_type: Option<String>,
    pub line: u32,
    pub in_test: bool,
    /// Token range `[fn_idx, body_open)` — covers `fn name(args) -> Ret`.
    pub sig: (usize, usize),
    /// Token range `(open_brace, close_brace)` exclusive of both braces;
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
}

/// Indexes all `fn` items in a token stream, top-level and nested.
pub fn index_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // (impl type name, brace depth of the impl body)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            while impl_stack.last().is_some_and(|&(_, d)| d >= depth) {
                impl_stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_ident("impl") {
            if let Some((ty, open)) = parse_impl_header(toks, i) {
                impl_stack.push((ty, depth + 1));
                // Skip the header; the `{` is handled by the main loop.
                i = open;
                continue;
            }
        } else if t.is_ident("fn") {
            if let Some(item) = parse_fn(toks, i, &impl_stack) {
                // `sig.1` is the body's `{` (or the `;` of a bodyless
                // declaration); `body.0` is already *inside* the braces.
                let next = item.sig.1;
                fns.push(item);
                // Continue *inside* the body so nested fns are indexed too.
                i = next + 1;
                if next < toks.len() && toks[next].is_punct("{") {
                    depth += 1;
                }
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// From an `impl` token, extracts the implemented-on type name and the
/// index of the body's `{`. For `impl Trait for Type` the name is
/// `Type`; generic parameters are skipped.
fn parse_impl_header(toks: &[Tok], impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i64;
    let mut after_for = false;
    let mut first: Option<String> = None;
    let mut after_for_name: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") && angle == 0 {
            let name = after_for_name.or(first)?;
            return Some((name, j));
        }
        if t.is_punct(";") && angle == 0 {
            return None; // e.g. inside a macro; bail out
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Ident, "for") if angle == 0 => after_for = true,
            (TokKind::Ident, "where") if angle == 0 => {}
            (TokKind::Ident, name) if angle == 0 => {
                if after_for {
                    if after_for_name.is_none() {
                        after_for_name = Some(name.to_string());
                    }
                } else if first.is_none() {
                    first = Some(name.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn parse_fn(toks: &[Tok], fn_idx: usize, impl_stack: &[(String, usize)]) -> Option<FnItem> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Visibility: `pub fn` (strict), possibly with intervening qualifiers
    // handled by looking one token back only — `pub(crate) fn` puts `)`
    // there and correctly reads as not-pub. `pub async fn` / `pub unsafe
    // fn` / `pub const fn` put the qualifier there; look back through
    // them.
    let mut k = fn_idx;
    while k > 0
        && matches!(toks[k - 1].kind, TokKind::Ident)
        && matches!(toks[k - 1].text.as_str(), "async" | "unsafe" | "const" | "extern")
    {
        k -= 1;
    }
    let is_pub = k > 0 && toks[k - 1].is_ident("pub");
    // Signature runs until `{` (body) or `;` (trait declaration) at zero
    // paren/bracket/angle nesting. Angle brackets are tracked so return
    // types like `-> Vec<(PoiId, f64)>` don't confuse the scan; `->` is
    // consumed as two puncts but the `>` is preceded by `-`, so guard it.
    let mut j = fn_idx + 2;
    let mut nest = 0i64;
    let mut angle = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => nest += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => nest -= 1,
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") if !(j > 0 && toks[j - 1].is_punct("-")) => {
                angle = (angle - 1).max(0);
            }
            (TokKind::Punct, "{") if nest == 0 => break,
            (TokKind::Punct, ";") if nest == 0 && angle == 0 => {
                return Some(FnItem {
                    name,
                    is_pub,
                    impl_type: impl_stack.last().map(|(n, _)| n.clone()),
                    line: name_tok.line,
                    in_test: name_tok.in_test,
                    sig: (fn_idx, j),
                    body: None,
                });
            }
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let close = matching_brace(toks, j)?;
    Some(FnItem {
        name,
        is_pub,
        impl_type: impl_stack.last().map(|(n, _)| n.clone()),
        line: name_tok.line,
        in_test: name_tok.in_test,
        sig: (fn_idx, j),
        body: Some((j + 1, close)),
    })
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn indexes_free_and_impl_fns() {
        let src = "
            pub fn free(a: u32) -> Vec<(u32, f64)> { a; inner() }
            fn inner() {}
            impl<'a> Facade<'a> {
                pub fn method(&self, q: &Query) -> f64 { 0.0 }
                pub(crate) fn internal(&self) {}
            }
            impl Ord for Item {
                fn cmp(&self, other: &Self) -> Ordering { todo() }
            }
        ";
        let fns = index_fns(&lex(src));
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).expect("fn indexed");
        assert!(by_name("free").is_pub);
        assert!(by_name("free").impl_type.is_none());
        assert!(by_name("inner").body.is_some());
        assert_eq!(by_name("method").impl_type.as_deref(), Some("Facade"));
        assert!(by_name("method").is_pub);
        assert!(!by_name("internal").is_pub, "pub(crate) is not pub");
        // A sibling method after one whose body contains nested braces
        // must keep its impl type (the index once popped the impl at the
        // first body's closing brace).
        assert_eq!(by_name("internal").impl_type.as_deref(), Some("Facade"));
        assert_eq!(by_name("cmp").impl_type.as_deref(), Some("Item"));
        assert!(!by_name("cmp").is_pub);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let fns = index_fns(&lex("trait T { fn decl(&self) -> u32; fn with_default(&self) {} }"));
        assert!(fns.iter().find(|f| f.name == "decl").expect("decl").body.is_none());
        assert!(fns.iter().find(|f| f.name == "with_default").expect("def").body.is_some());
    }
}
