//! The project lint catalog: IL001–IL005.
//!
//! Every rule works on the token stream from [`crate::lexer`] (plus the
//! fn index from [`crate::items`] for IL005), operates only on non-test
//! tokens, and emits [`Finding`]s carrying a stable lint ID, `file:line`
//! and a one-line fix hint. Rules are heuristic by design — they favor
//! the occasional reasoned `lint.allow` entry over missed violations.

use crate::items::{index_fns, FnItem};
use crate::lexer::{lex, Tok, TokKind};
use std::collections::{HashMap, HashSet};

/// One workspace source file, pre-lexed and indexed.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes,
    /// e.g. `crates/core/src/query.rs`.
    pub rel: String,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    pub fn new(rel: impl Into<String>, src: &str) -> Self {
        let toks = lex(src);
        let fns = index_fns(&toks);
        SourceFile { rel: rel.into(), toks, fns }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint ID: `IL001` … `IL005`.
    pub lint: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub hint: &'static str,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}\n    fix: {}",
            self.path, self.line, self.lint, self.message, self.hint
        )
    }
}

/// Runs the full catalog over a set of files and returns findings
/// sorted by path, line, lint ID.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        il001_float_total_order(f, &mut out);
        il002_panic_freedom(f, &mut out);
        il003_guard_across_io(f, &mut out);
        il004_format_magic(f, &mut out);
    }
    il005_obs_coverage(files, &mut out);
    il005_service_coverage(files, &mut out);
    il005_subkind_counter_coverage(files, &mut out);
    // The interprocedural catalog: a shared call graph, then the
    // reachability rules (deepened IL002/IL003, IL006, IL009) and the
    // wire-contract rules (IL007/IL008).
    let graph = crate::callgraph::CallGraph::build(files);
    crate::interproc::il002_reachable_panics(&graph, &mut out);
    crate::interproc::il003_guard_into_io(&graph, &mut out);
    crate::interproc::il006_lock_order(&graph, &mut out);
    crate::interproc::il009_delta_purity(&graph, &mut out);
    crate::wire::il007_wire_symmetry(files, &mut out);
    crate::wire::il008_wire_arithmetic(files, &mut out);
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    out
}

/// Index of the first token of the statement containing token `i`
/// (scan back to the nearest `;`, `{` or `}`). Bracket/paren nesting is
/// tracked so the `;` inside an array type like `[&str; 3]` or `[u8; 8]`
/// does not cut the statement short.
pub(crate) fn stmt_start(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut nest = 0usize;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct("]") || t.is_punct(")") {
            nest += 1;
        } else if t.is_punct("[") || t.is_punct("(") {
            nest = nest.saturating_sub(1);
        } else if nest == 0 && (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) {
            return j;
        }
        j -= 1;
    }
    0
}

// ---------------------------------------------------------------- IL001

const IL001_METHOD: &str = "partial_cmp";

/// IL001 float-total-order: flow values and spatial coordinates are
/// floats used as ordering keys; `partial_cmp` either panics or silently
/// misorders when a NaN slips in. `f64::total_cmp` is total, sorts NaN
/// deterministically, and costs the same. A `fn` definition of the
/// method (a `PartialOrd` impl delegating to `cmp`) is not a use site.
fn il001_float_total_order(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != IL001_METHOD || t.in_test {
            continue;
        }
        if i > 0 && f.toks[i - 1].is_ident("fn") {
            continue;
        }
        out.push(Finding {
            lint: "IL001",
            path: f.rel.clone(),
            line: t.line,
            message: format!("NaN-unsafe float ordering via `{IL001_METHOD}`"),
            hint: "use f64::total_cmp (total order, deterministic NaN placement) \
                   or derive the key ordering from total_cmp",
        });
    }
}

// ---------------------------------------------------------------- IL002

/// Paths whose non-test code must be panic-free: the serving layer and
/// the durable store. A panic here poisons locks, kills shard threads,
/// or aborts mid-write — exactly the failures PR 3/PR 4 hardened against.
pub(crate) fn il002_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/service/src/") || rel.starts_with("crates/tracking/src/store/")
}

pub(crate) const IL002_PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers that legitimately precede a `[` without it being an
/// index expression (slice *types* and patterns, not element access).
const IL002_NONINDEX_PREV: [&str; 15] = [
    "mut", "ref", "dyn", "impl", "as", "in", "return", "break", "const", "static", "else", "match",
    "move", "where", "let",
];

fn il002_panic_freedom(f: &SourceFile, out: &mut Vec<Finding>) {
    if !il002_in_scope(&f.rel) {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.kind == TokKind::Ident {
            let prev_dot = i > 0 && toks[i - 1].is_punct(".");
            let next_paren = matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
            if t.text == "unwrap" && prev_dot && next_paren {
                out.push(Finding {
                    lint: "IL002",
                    path: f.rel.clone(),
                    line: t.line,
                    message: "possible panic: `.unwrap()` in a durable/serving path".into(),
                    hint: IL002_HINT_ERR,
                });
                continue;
            }
            if t.text == "expect"
                && prev_dot
                && next_paren
                && matches!(toks.get(i + 2), Some(n) if n.kind == TokKind::Str)
            {
                out.push(Finding {
                    lint: "IL002",
                    path: f.rel.clone(),
                    line: t.line,
                    message: "possible panic: `.expect(..)` in a durable/serving path".into(),
                    hint: IL002_HINT_ERR,
                });
                continue;
            }
            if IL002_PANIC_MACROS.contains(&t.text.as_str())
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            {
                out.push(Finding {
                    lint: "IL002",
                    path: f.rel.clone(),
                    line: t.line,
                    message: format!("possible panic: `{}!(..)` in a durable/serving path", t.text),
                    hint: "return a typed error and let the caller decide; \
                           if aborting is genuinely intended, allowlist with a reason",
                });
                continue;
            }
        }
        // Unchecked indexing: `expr[..]` where expr ends in an identifier,
        // `)` or `]`. Type positions (`&[u8]`, `-> [u8; 4]`) put a punct
        // or excluded keyword before the bracket and are skipped, as is
        // the never-panicking full-range `[..]`.
        if t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !IL002_NONINDEX_PREV.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            let full_range = matches!(
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)),
                (Some(a), Some(b), Some(c))
                    if a.is_punct(".") && b.is_punct(".") && c.is_punct("]")
            );
            if indexes && !full_range {
                out.push(Finding {
                    lint: "IL002",
                    path: f.rel.clone(),
                    line: t.line,
                    message: "unchecked indexing can panic on out-of-bounds".into(),
                    hint: "use .get()/.get_mut() or a length-checked accessor \
                           (frame::Cursor) and propagate the error",
                });
            }
        }
    }
}

const IL002_HINT_ERR: &str = "propagate a typed error (StoreError / io::Error) or \
                              recover explicitly (e.g. sync::lock_or_recover for mutexes)";

// ---------------------------------------------------------------- IL003

/// Files where holding a mutex guard across blocking I/O stalls every
/// peer of the lock: the connection fan-out in `server.rs` and the shard
/// queue in `shard.rs`.
pub(crate) fn il003_in_scope(rel: &str) -> bool {
    rel.ends_with("/server.rs") || rel.ends_with("/shard.rs")
}

pub(crate) const IL003_IO_CALLS: [&str; 11] = [
    "write_all",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_end",
    "sync_all",
    "sync_data",
    "connect",
    "accept",
    "shutdown",
    "set_read_timeout",
];

#[derive(Debug)]
struct LiveGuard {
    /// `None` for an un-bound temporary (`m.lock()…;` in one statement).
    name: Option<String>,
    /// Brace depth at acquisition; the guard dies when depth drops below.
    depth: usize,
}

/// IL003 mutex-guard-across-I/O: a guard acquired via `.lock()` (or the
/// project's `lock_or_recover`) must be dropped before any socket/file
/// call. Guards bound with `let` live to the end of their block or an
/// explicit `drop(name)`; temporaries live to the end of the statement.
fn il003_guard_across_io(f: &SourceFile, out: &mut Vec<Finding>) {
    if !il003_in_scope(&f.rel) {
        return;
    }
    let toks = &f.toks;
    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            depth += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if t.is_punct(";") {
            guards.retain(|g| !(g.name.is_none() && g.depth == depth));
            continue;
        }
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let next_paren = matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
        let acquires = next_paren
            && (t.text == "lock_or_recover"
                || (t.text == "lock" && i > 0 && toks[i - 1].is_punct(".")));
        if acquires {
            let start = stmt_start(toks, i);
            let name = if toks[start].is_ident("let") {
                toks[start + 1..]
                    .iter()
                    .take_while(|n| !n.is_punct("="))
                    .find(|n| n.kind == TokKind::Ident && n.text != "mut")
                    .map(|n| n.text.clone())
            } else {
                None
            };
            guards.push(LiveGuard { name, depth });
            continue;
        }
        if t.text == "drop" && next_paren {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                }
            }
            continue;
        }
        if next_paren && IL003_IO_CALLS.contains(&t.text.as_str()) {
            if let Some(g) = guards.last() {
                let held = g.name.as_deref().unwrap_or("<temporary>");
                out.push(Finding {
                    lint: "IL003",
                    path: f.rel.clone(),
                    line: t.line,
                    message: format!(
                        "blocking I/O `{}()` while mutex guard `{}` is live",
                        t.text, held
                    ),
                    hint: "copy what you need out of the guard, drop it (end the \
                           block or drop(guard)), then do the I/O",
                });
            }
        }
    }
}

// ---------------------------------------------------------------- IL004

/// The on-disk/wire magics. This const is itself the shape the lint
/// demands: magic literals may only appear in a `const … _MAGIC`-style
/// definition statement.
pub(crate) const FORMAT_MAGIC: [&str; 6] =
    ["IFWAL001", "IFSNP001", "IFCKP001", "IFRPL001", "IFSEG001", "IFMAN001"];

/// The single module allowed to call `from_le_bytes`: the bounds-checked
/// frame accessor layer everything else must go through.
const IL004_FRAME_MODULE: &str = "crates/tracking/src/store/frame.rs";

fn il004_format_magic(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.kind == TokKind::Str && FORMAT_MAGIC.iter().any(|m| t.text.contains(m)) {
            let start = stmt_start(toks, i);
            let is_const_def = toks[start..i].iter().any(|s| s.is_ident("const"))
                && toks[start..i]
                    .iter()
                    .any(|s| s.kind == TokKind::Ident && s.text.ends_with("_MAGIC"));
            if !is_const_def {
                out.push(Finding {
                    lint: "IL004",
                    path: f.rel.clone(),
                    line: t.line,
                    message: "format magic literal duplicated outside its const definition".into(),
                    hint: "reference WAL_MAGIC / SNAPSHOT_MAGIC / CHECKPOINT_MAGIC; a \
                           re-spelled literal lets the formats drift apart silently",
                });
            }
        }
        if t.kind == TokKind::Ident && t.text == "from_le_bytes" && f.rel != IL004_FRAME_MODULE {
            out.push(Finding {
                lint: "IL004",
                path: f.rel.clone(),
                line: t.line,
                message: "raw little-endian parse outside the framing module".into(),
                hint: "decode via frame::Cursor / FrameReader (bounds-checked, \
                       CRC-verified) instead of hand-rolled from_le_bytes",
            });
        }
    }
}

// ---------------------------------------------------------------- IL005

/// Observability markers: a body containing any of these records a span
/// or counter directly.
fn il005_records_directly(toks: &[Tok], body: (usize, usize)) -> bool {
    let (lo, hi) = body;
    let range = &toks[lo..hi.min(toks.len())];
    for (j, t) in range.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = j > 0 && range[j - 1].is_punct(".");
        let next_colons = matches!(range.get(j + 1), Some(a) if a.is_punct(":"))
            && matches!(range.get(j + 2), Some(b) if b.is_punct(":"));
        match t.text.as_str() {
            "recorder" | "enter" | "merge_counters" | "record" if prev_dot => return true,
            s if prev_dot && s.starts_with("observe") => return true,
            "Counter" | "Timer" if next_colons => return true,
            _ => {}
        }
    }
    false
}

/// Identifier names called with `(` inside a body (macro invocations,
/// which put a `!` before the paren, are naturally excluded).
fn il005_calls(toks: &[Tok], body: (usize, usize)) -> Vec<String> {
    let (lo, hi) = body;
    let range = &toks[lo..hi.min(toks.len())];
    let mut calls = Vec::new();
    for (j, t) in range.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(range.get(j + 1), Some(n) if n.is_punct("("))
            && !(j > 0 && range[j - 1].is_ident("fn"))
            && !matches!(t.text.as_str(), "if" | "while" | "match" | "for" | "return")
        {
            calls.push(t.text.clone());
        }
    }
    calls
}

fn sig_mentions(toks: &[Tok], sig: (usize, usize), name: &str) -> bool {
    toks[sig.0..sig.1.min(toks.len())].iter().any(|t| t.is_ident(name))
}

/// One fn in an IL005 coverage graph: does it record directly, and what
/// does it call?
struct Il005Node<'a> {
    file: &'a SourceFile,
    item: &'a FnItem,
    records: bool,
    calls: Vec<String>,
}

fn il005_nodes<'a>(subset: &[&'a SourceFile]) -> Vec<Il005Node<'a>> {
    let mut nodes = Vec::new();
    for f in subset {
        for item in &f.fns {
            let (records, calls) = match item.body {
                Some(body) => (il005_records_directly(&f.toks, body), il005_calls(&f.toks, body)),
                None => (false, Vec::new()),
            };
            nodes.push(Il005Node { file: f, item, records, calls });
        }
    }
    nodes
}

/// Name-level fixpoint: a fn records if any callee *name* resolves to
/// a recording fn. Conservative in the permissive direction, which is
/// what a coverage lint wants — false "covered" beats false alarms.
fn il005_fixpoint(nodes: &[Il005Node<'_>]) -> HashSet<String> {
    let mut recording: HashSet<String> =
        nodes.iter().filter(|n| n.records).map(|n| n.item.name.clone()).collect();
    let call_map: HashMap<String, Vec<String>> = {
        let mut m: HashMap<String, Vec<String>> = HashMap::new();
        for n in nodes {
            m.entry(n.item.name.clone()).or_default().extend(n.calls.iter().cloned());
        }
        m
    };
    loop {
        let mut grew = false;
        for (name, calls) in &call_map {
            if !recording.contains(name) && calls.iter().any(|c| recording.contains(c)) {
                recording.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    recording
}

/// IL005 obs coverage: every public query entry point in `crates/core` —
/// a `pub fn` taking `&FlowAnalytics`, or a `pub` method of
/// `FlowAnalytics` taking a query struct — must record a span or counter,
/// directly or through a callee that does (resolved by an intra-crate
/// name-level fixpoint). Unmeasured entry points are invisible in
/// `--profile` output and regress silently.
fn il005_obs_coverage(files: &[SourceFile], out: &mut Vec<Finding>) {
    let core: Vec<&SourceFile> =
        files.iter().filter(|f| f.rel.starts_with("crates/core/src/")).collect();
    if core.is_empty() {
        return;
    }
    let nodes = il005_nodes(&core);
    let recording = il005_fixpoint(&nodes);
    for n in &nodes {
        let it = n.item;
        if it.in_test || !it.is_pub || it.body.is_none() {
            continue;
        }
        if it.name == "new" || it.name.starts_with("with_") || it.name.starts_with("from_") {
            continue;
        }
        let entry = sig_mentions(&n.file.toks, it.sig, "FlowAnalytics")
            || (it.impl_type.as_deref() == Some("FlowAnalytics")
                && (sig_mentions(&n.file.toks, it.sig, "SnapshotQuery")
                    || sig_mentions(&n.file.toks, it.sig, "IntervalQuery")));
        if entry && !recording.contains(&it.name) {
            out.push(Finding {
                lint: "IL005",
                path: n.file.rel.clone(),
                line: it.line,
                message: format!("query entry point `{}` records no span or counter", it.name),
                hint: "record via the facade recorder (span enter/exit or a Counter) \
                       or delegate to a recording query path",
            });
        }
    }
}

/// IL005, service face: every protocol request handler in
/// `crates/service/src` — any fn named `handle_*` — must record into
/// `ServiceMetrics` (a `Counter::…` add, an `observe_*` call, or a
/// flight-recorder `.record(..)`), directly or through a callee that
/// does. A verb that bypasses the metrics registry is invisible to
/// `METRICS`/`inflow top` and to postmortems, which is exactly where a
/// misbehaving client shows up first.
fn il005_service_coverage(files: &[SourceFile], out: &mut Vec<Finding>) {
    let service: Vec<&SourceFile> =
        files.iter().filter(|f| f.rel.starts_with("crates/service/src/")).collect();
    if service.is_empty() {
        return;
    }
    let nodes = il005_nodes(&service);
    let recording = il005_fixpoint(&nodes);
    for n in &nodes {
        let it = n.item;
        if it.in_test || it.body.is_none() || !it.name.starts_with("handle_") {
            continue;
        }
        if !recording.contains(&it.name) {
            out.push(Finding {
                lint: "IL005",
                path: n.file.rel.clone(),
                line: it.line,
                message: format!(
                    "protocol handler `{}` records nothing into ServiceMetrics",
                    it.name
                ),
                hint: "count the request (metrics.add(Counter::…)) or observe a \
                       histogram/flight event so telemetry and postmortems see this verb",
            });
        }
    }
}

/// The variant names of `enum SubKind` as declared in a service source
/// file, with the declaration line: identifiers at brace depth 1 of the
/// enum body that start an arm (the previous depth-1 token is `{` or
/// `,`), skipping `#[...]` attribute contents.
fn il005_subkind_variants(f: &SourceFile) -> Vec<(String, u32)> {
    let toks = &f.toks;
    let mut variants = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_ident("enum") && toks[i + 1].is_ident("SubKind") && !toks[i].in_test) {
            i += 1;
            continue;
        }
        // Walk to the body's `{`, then collect arm-initial idents.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let mut depth = 0i32;
        let mut arm_start = true;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        arm_start = depth == 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        // A field-block close ends the arm body; the next
                        // depth-1 ident only starts an arm after a comma.
                        arm_start = false;
                    }
                    "," if depth == 1 => arm_start = true,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && depth == 1 {
                if arm_start {
                    variants.push((t.text.clone(), t.line));
                }
                arm_start = false;
            }
            j += 1;
        }
        i = j;
    }
    variants
}

/// IL005, per-kind serving telemetry: every variant of the service
/// protocol's `enum SubKind` must have a per-kind subscription counter —
/// an identifier spelled `Serve<Variant>Subscriptions` (variant casing
/// is free, e.g. `LongVisit` → `ServeLongvisitSubscriptions`) —
/// referenced somewhere in `crates/service/src`. A subscription kind
/// without its counter is invisible in `METRICS` and `inflow top`, so
/// a serving-load shift toward that kind cannot be seen or alerted on.
fn il005_subkind_counter_coverage(files: &[SourceFile], out: &mut Vec<Finding>) {
    let service: Vec<&SourceFile> =
        files.iter().filter(|f| f.rel.starts_with("crates/service/src/")).collect();
    if service.is_empty() {
        return;
    }
    let idents_lower: HashSet<String> = service
        .iter()
        .flat_map(|f| f.toks.iter())
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.to_lowercase())
        .collect();
    for f in &service {
        for (variant, line) in il005_subkind_variants(f) {
            let want = format!("serve{}subscriptions", variant.to_lowercase());
            if !idents_lower.contains(&want) {
                out.push(Finding {
                    lint: "IL005",
                    path: f.rel.clone(),
                    line,
                    message: format!(
                        "subscription kind `{variant}` has no per-kind counter \
                         `Serve{variant}Subscriptions` referenced in the service crate"
                    ),
                    hint: "add the Counter variant in inflow-obs and bump it where the \
                           subscription registers, so METRICS/`inflow top` break load \
                           out by kind",
                });
            }
        }
    }
}
