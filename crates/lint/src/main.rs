//! CLI for `inflow-lint`.
//!
//! ```text
//! inflow-lint [--json] [--allow FILE] [--root DIR]
//! ```
//!
//! Exit codes: 0 = clean (possibly with suppressions), 1 = findings,
//! 2 = usage / I/O / malformed allowlist. Unused allowlist entries are
//! warnings on stderr, never failures — fixing a finding must not break
//! the build.

use std::path::PathBuf;

use inflow_lint::{analyze, collect_sources, discover_root, json_escape, Allowlist, Finding};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut json = false;
    let mut allow_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--allow" => match args.next() {
                Some(p) => allow_path = Some(PathBuf::from(p)),
                None => return usage("--allow requires a file path"),
            },
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root requires a directory"),
            },
            "-h" | "--help" => {
                println!(
                    "inflow-lint: workspace invariant checker (IL001-IL005)\n\n\
                     usage: inflow-lint [--json] [--allow FILE] [--root DIR]\n\n\
                     exit codes: 0 clean, 1 findings, 2 usage/io error"
                );
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root =
        match root_arg.or_else(|| std::env::current_dir().ok().and_then(|d| discover_root(&d))) {
            Some(r) => r,
            None => {
                eprintln!("inflow-lint: no workspace root found (pass --root)");
                return 2;
            }
        };

    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("inflow-lint: failed to read sources under {}: {e}", root.display());
            return 2;
        }
    };

    let mut allowlist = Allowlist::default();
    let allow_file = allow_path.or_else(|| {
        let default = root.join("lint.allow");
        default.is_file().then_some(default)
    });
    if let Some(path) = allow_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("inflow-lint: cannot read {}: {e}", path.display());
                return 2;
            }
        };
        allowlist = match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("inflow-lint: {e}");
                return 2;
            }
        };
    }

    let all = analyze(&files);
    let mut active: Vec<&Finding> = Vec::new();
    let mut suppressed = 0usize;
    for f in &all {
        if allowlist.suppresses(f) {
            suppressed += 1;
        } else {
            active.push(f);
        }
    }

    for e in allowlist.unused() {
        eprintln!(
            "inflow-lint: warning: unused lint.allow entry (line {}): {} {} — remove it",
            e.at, e.lint, e.path
        );
    }

    if json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
                f.lint,
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                json_escape(f.hint)
            ));
        }
        out.push_str(&format!("],\"suppressed\":{suppressed},\"files\":{}}}", files.len()));
        println!("{out}");
    } else {
        for f in &active {
            println!("{}", f.render());
        }
        println!(
            "inflow-lint: {} finding(s), {} suppressed, {} files scanned",
            active.len(),
            suppressed,
            files.len()
        );
    }

    if active.is_empty() {
        0
    } else {
        1
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!("inflow-lint: {msg}\nusage: inflow-lint [--json] [--allow FILE] [--root DIR]");
    2
}
