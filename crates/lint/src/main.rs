//! CLI for `inflow-lint`.
//!
//! ```text
//! inflow-lint [--json] [--allow FILE] [--root DIR] [--baseline JSON] [--strict-unused]
//! ```
//!
//! Exit codes: 0 = clean (possibly with suppressions), 1 = findings,
//! 2 = usage / I/O / malformed allowlist or baseline. Unused allowlist
//! entries are warnings on stderr by default; `--strict-unused` turns
//! them into failures so CI keeps the baseline live — an entry that
//! suppresses nothing is a fixed finding whose tombstone must go.
//!
//! `--baseline` points at a previous `--json` run; findings present
//! there (same lint, path, line) are reported as baselined rather than
//! failing the run, so a rule rollout can land before its burn-down
//! completes without hiding *new* regressions.

use std::collections::HashSet;
use std::path::PathBuf;

use inflow_lint::{analyze, collect_sources, discover_root, json_escape, Allowlist, Finding};

/// Version of the `--json` output shape. Bump when fields change
/// meaning; consumers (CI diffing, dashboards) check it before parsing.
const JSON_SCHEMA: u32 = 2;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut json = false;
    let mut strict_unused = false;
    let mut allow_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--strict-unused" => strict_unused = true,
            "--allow" => match args.next() {
                Some(p) => allow_path = Some(PathBuf::from(p)),
                None => return usage("--allow requires a file path"),
            },
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root requires a directory"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline requires a JSON file path"),
            },
            "-h" | "--help" => {
                println!(
                    "inflow-lint: workspace invariant checker (IL001-IL009)\n\n\
                     usage: inflow-lint [--json] [--allow FILE] [--root DIR] \
                     [--baseline JSON] [--strict-unused]\n\n\
                     exit codes: 0 clean, 1 findings, 2 usage/io error"
                );
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root =
        match root_arg.or_else(|| std::env::current_dir().ok().and_then(|d| discover_root(&d))) {
            Some(r) => r,
            None => {
                eprintln!("inflow-lint: no workspace root found (pass --root)");
                return 2;
            }
        };

    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("inflow-lint: failed to read sources under {}: {e}", root.display());
            return 2;
        }
    };

    let mut allowlist = Allowlist::default();
    let allow_file = allow_path.or_else(|| {
        let default = root.join("lint.allow");
        default.is_file().then_some(default)
    });
    if let Some(path) = allow_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("inflow-lint: cannot read {}: {e}", path.display());
                return 2;
            }
        };
        allowlist = match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("inflow-lint: {e}");
                return 2;
            }
        };
    }

    let baseline: HashSet<(String, String, u32)> = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("inflow-lint: cannot read baseline {}: {e}", path.display());
                    return 2;
                }
            };
            match parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("inflow-lint: baseline {}: {e}", path.display());
                    return 2;
                }
            }
        }
        None => HashSet::new(),
    };

    let all = analyze(&files);
    let mut active: Vec<&Finding> = Vec::new();
    let mut suppressed = 0usize;
    let mut baselined = 0usize;
    for f in &all {
        if allowlist.suppresses(f) {
            suppressed += 1;
        } else if baseline.contains(&(f.lint.to_string(), f.path.clone(), f.line)) {
            baselined += 1;
        } else {
            active.push(f);
        }
    }

    let unused = allowlist.unused();
    for e in &unused {
        let verdict = if strict_unused { "error" } else { "warning" };
        eprintln!(
            "inflow-lint: {verdict}: unused lint.allow entry (line {}): {} {} — remove it",
            e.at, e.lint, e.path
        );
    }

    if json {
        let mut out = format!("{{\"schema\":{JSON_SCHEMA},\"findings\":[");
        for (i, f) in active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
                f.lint,
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                json_escape(f.hint)
            ));
        }
        out.push_str(&format!(
            "],\"suppressed\":{suppressed},\"baselined\":{baselined},\"files\":{}}}",
            files.len()
        ));
        println!("{out}");
    } else {
        for f in &active {
            println!("{}", f.render());
        }
        println!(
            "inflow-lint: {} finding(s), {} suppressed, {} baselined, {} files scanned",
            active.len(),
            suppressed,
            baselined,
            files.len()
        );
    }

    if !active.is_empty() || (strict_unused && !unused.is_empty()) {
        1
    } else {
        0
    }
}

/// Extracts `(lint, path, line)` keys from a previous `--json` run.
///
/// Not a general JSON parser: it walks the known output shape (objects
/// with `"lint"`, `"path"`, `"line"` fields in order) and rejects
/// anything that doesn't look like it, so a truncated or hand-edited
/// baseline fails loudly instead of silently masking nothing.
fn parse_baseline(text: &str) -> Result<HashSet<(String, String, u32)>, String> {
    if !text.trim_start().starts_with('{') {
        return Err("not a JSON object (expected inflow-lint --json output)".into());
    }
    let mut out = HashSet::new();
    let mut rest = text;
    while let Some(at) = rest.find("{\"lint\":\"") {
        rest = &rest[at + 9..];
        let lint_end = rest.find('"').ok_or("unterminated lint id")?;
        let lint = rest[..lint_end].to_string();
        rest = &rest[lint_end..];
        let path_tag = "\"path\":\"";
        let p = rest.find(path_tag).ok_or("finding without path")?;
        rest = &rest[p + path_tag.len()..];
        let path_end = json_str_end(rest).ok_or("unterminated path")?;
        let path = json_unescape(&rest[..path_end]);
        rest = &rest[path_end..];
        let line_tag = "\"line\":";
        let l = rest.find(line_tag).ok_or("finding without line")?;
        rest = &rest[l + line_tag.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let line = digits.parse::<u32>().map_err(|_| "bad line number")?;
        out.insert((lint, path, line));
    }
    Ok(out)
}

/// Index of the closing quote of a JSON string starting at `s[0]`.
fn json_str_end(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Minimal inverse of [`json_escape`] for the escapes it emits.
fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(u) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(u);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn usage(msg: &str) -> i32 {
    eprintln!(
        "inflow-lint: {msg}\nusage: inflow-lint [--json] [--allow FILE] [--root DIR] \
         [--baseline JSON] [--strict-unused]"
    );
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_json_output() {
        let text = r#"{"schema":2,"findings":[
            {"lint":"IL008","path":"crates/a \"b\".rs","line":12,"message":"m","hint":"h"},
            {"lint":"IL002","path":"crates/c.rs","line":7,"message":"m","hint":"h"}
        ],"suppressed":3,"baselined":0,"files":9}"#;
        let b = parse_baseline(text).expect("parses");
        assert_eq!(b.len(), 2);
        assert!(b.contains(&("IL008".into(), "crates/a \"b\".rs".into(), 12)));
        assert!(b.contains(&("IL002".into(), "crates/c.rs".into(), 7)));
    }

    #[test]
    fn empty_findings_baseline_is_empty() {
        let b = parse_baseline(r#"{"schema":2,"findings":[],"suppressed":0,"files":9}"#)
            .expect("parses");
        assert!(b.is_empty());
    }

    #[test]
    fn garbage_baseline_is_rejected() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline(r#"{"findings":[{"lint":"IL001","line":3}]}"#).is_err());
    }
}
