//! Workspace call graph over [`crate::ast`]: every non-test `fn` body
//! becomes a node, every call site a set of candidate edges resolved by
//! name against a workspace symbol table.
//!
//! Resolution is deliberately conservative-toward-edges: a method call
//! `x.apply(..)` with an unknown receiver type links to *every* `apply`
//! method in the workspace. For reachability lints that over-approximation
//! is the safe direction — a missing edge hides a deadlock, a spurious one
//! costs at worst an allowlist entry. The main noise dampener is the
//! [`SKIP_METHODS`] list of ubiquitous trait methods (`next`, `clone`,
//! `fmt`, …) whose name-level fan-out would connect everything to
//! everything while proving nothing.

use crate::ast::{extract_facts, parse_fns, Callee, FnFacts};
use crate::rules::SourceFile;
use std::collections::{HashMap, HashSet, VecDeque};

/// Method names excluded from *method-call* edge resolution (qualified
/// `Type::name` calls still resolve): each is either a ubiquitous trait
/// method or shadows a std collection method (`truncate`, `start` via
/// the obs timer idiom `rec.start(..)`), so a name-level edge through
/// them is noise, and none of the project's impls hide locks or
/// blocking I/O behind these names (spot-audited; the fixture suite
/// would catch a regression that moved I/O into one).
const SKIP_METHODS: [&str; 26] = [
    "next",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "total_cmp",
    "hash",
    "drop",
    "default",
    "from",
    "into",
    "try_from",
    "try_into",
    "deref",
    "deref_mut",
    "index",
    "index_mut",
    "to_string",
    "write_str",
    "len",
    "truncate",
    "start",
    "load",
    "store",
];

/// One `fn` node: identity, location, and the extracted body facts.
pub struct Node {
    pub name: String,
    pub impl_type: Option<String>,
    pub file: String,
    pub line: u32,
    pub facts: FnFacts,
}

impl Node {
    /// `Type::name` or bare `name`, for chain rendering.
    pub fn label(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }
}

pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// name -> nodes that are methods/assoc fns of some impl.
    by_method: HashMap<String, Vec<usize>>,
    /// name -> free-fn nodes.
    by_free: HashMap<String, Vec<usize>>,
    /// (impl type, name) -> nodes.
    by_assoc: HashMap<(String, String), Vec<usize>>,
    /// Resolved call edges per node, parallel to `facts.calls`:
    /// `edges[n][c]` are the target node indices of call site `c`.
    pub edges: Vec<Vec<Vec<usize>>>,
}

impl CallGraph {
    /// Builds the graph over every non-test fn with a body in `files`.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for f in files {
            for item in parse_fns(&f.toks) {
                if item.in_test {
                    continue;
                }
                let Some(body) = item.body else { continue };
                let facts = extract_facts(&f.toks, body);
                nodes.push(Node {
                    name: item.name,
                    impl_type: item.impl_type,
                    file: f.rel.clone(),
                    line: item.line,
                    facts,
                });
            }
        }
        let mut by_method: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_free: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_assoc: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.impl_type {
                Some(t) => {
                    by_method.entry(n.name.clone()).or_default().push(i);
                    by_assoc.entry((t.clone(), n.name.clone())).or_default().push(i);
                }
                None => by_free.entry(n.name.clone()).or_default().push(i),
            }
        }
        let mut g = CallGraph { nodes, by_method, by_free, by_assoc, edges: Vec::new() };
        g.edges = (0..g.nodes.len())
            .map(|i| {
                let caller_ty = g.nodes[i].impl_type.clone();
                g.nodes[i]
                    .facts
                    .calls
                    .iter()
                    .map(|c| g.resolve(&c.name, &c.callee, caller_ty.as_deref()))
                    .collect()
            })
            .collect();
        g
    }

    /// Candidate target nodes for a call site.
    fn resolve(&self, name: &str, callee: &Callee, caller_ty: Option<&str>) -> Vec<usize> {
        match callee {
            Callee::Assoc(qual) => {
                let ty = if qual == "Self" { caller_ty.unwrap_or(qual) } else { qual };
                self.by_assoc.get(&(ty.to_string(), name.to_string())).cloned().unwrap_or_default()
            }
            Callee::Free => self.by_free.get(name).cloned().unwrap_or_default(),
            Callee::Qualified(module) => {
                // `frame::write_frame(..)` prefers free fns defined in a
                // file named after the module; only when none exists does
                // it fall back to every free fn of that name.
                let all = self.by_free.get(name).cloned().unwrap_or_default();
                let file_rs = format!("/{module}.rs");
                let file_mod = format!("/{module}/mod.rs");
                let scoped: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let f = &self.nodes[i].file;
                        f.ends_with(&file_rs) || f.ends_with(&file_mod)
                    })
                    .collect();
                if scoped.is_empty() {
                    all
                } else {
                    scoped
                }
            }
            Callee::Method(recv) => {
                // Bare method names are the ambiguous case — this is
                // where the noise dampener applies.
                if SKIP_METHODS.contains(&name) {
                    return Vec::new();
                }
                // `self.m(..)` in `impl T` resolves to `T::m` when that
                // exists; otherwise (and for non-self receivers) fall back
                // to every method of that name.
                if recv.as_deref() == Some("self") {
                    if let Some(ty) = caller_ty {
                        if let Some(v) = self.by_assoc.get(&(ty.to_string(), name.to_string())) {
                            return v.clone();
                        }
                    }
                }
                let mut v = self.by_method.get(name).cloned().unwrap_or_default();
                v.extend(self.by_free.get(name).cloned().unwrap_or_default());
                v
            }
        }
    }

    /// Node indices whose `(file, name)` matches a predicate — the usual
    /// way rules pick BFS roots.
    pub fn roots(&self, mut pred: impl FnMut(&Node) -> bool) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| pred(&self.nodes[i])).collect()
    }

    /// Breadth-first reachability from `root`, not descending into nodes
    /// for which `skip` is true. Returns the parent map (`reached[n]` =
    /// node we arrived from), with `root` mapped to itself.
    pub fn reach(&self, root: usize, mut skip: impl FnMut(&Node) -> bool) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        parent.insert(root, root);
        let mut q = VecDeque::from([root]);
        while let Some(n) = q.pop_front() {
            for targets in &self.edges[n] {
                for &t in targets {
                    if parent.contains_key(&t) || skip(&self.nodes[t]) {
                        continue;
                    }
                    parent.insert(t, n);
                    q.push_back(t);
                }
            }
        }
        parent
    }

    /// [`reach`] from several seeds at once (each mapped to itself) —
    /// the shape call-site rules need: BFS from a call's candidate
    /// targets rather than from the caller.
    pub fn reach_many(
        &self,
        seeds: &[usize],
        mut skip: impl FnMut(&Node) -> bool,
    ) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut q = VecDeque::new();
        for &s in seeds {
            if !parent.contains_key(&s) && !skip(&self.nodes[s]) {
                parent.insert(s, s);
                q.push_back(s);
            }
        }
        while let Some(n) = q.pop_front() {
            for targets in &self.edges[n] {
                for &t in targets {
                    if parent.contains_key(&t) || skip(&self.nodes[t]) {
                        continue;
                    }
                    parent.insert(t, n);
                    q.push_back(t);
                }
            }
        }
        parent
    }

    /// The call chain `root → … → node` out of a [`reach`] parent map,
    /// rendered as `a → B::b → c`.
    pub fn chain(&self, parent: &HashMap<usize, usize>, node: usize) -> String {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter().map(|&i| self.nodes[i].label()).collect::<Vec<_>>().join(" -> ")
    }

    /// Cycles among `members`: for each member `n`, a shortest path from
    /// one of `n`'s successors back to `n` (edges restricted to the set)
    /// witnesses a cycle through `n`. Returned as node-index paths
    /// `n → … → n` (first == last), deduplicated by member set, so every
    /// strongly-connected component yields at least one witness.
    pub fn cycles_within(&self, members: &HashSet<usize>) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut seen_sets: HashSet<Vec<usize>> = HashSet::new();
        let mut ordered: Vec<usize> = members.iter().copied().collect();
        ordered.sort_unstable();
        for start in ordered {
            // BFS from start's successors, looking for a path back.
            let mut parent: HashMap<usize, usize> = HashMap::new();
            let mut q = VecDeque::new();
            for targets in &self.edges[start] {
                for &t in targets {
                    if members.contains(&t) && !parent.contains_key(&t) {
                        parent.insert(t, start);
                        q.push_back(t);
                    }
                }
            }
            if !parent.contains_key(&start) {
                while let Some(n) = q.pop_front() {
                    if n == start {
                        break;
                    }
                    for targets in &self.edges[n] {
                        for &t in targets {
                            if members.contains(&t) && !parent.contains_key(&t) {
                                parent.insert(t, n);
                                q.push_back(t);
                            }
                        }
                    }
                }
            }
            if !parent.contains_key(&start) {
                continue;
            }
            let mut cyc = vec![start];
            let mut cur = start;
            loop {
                cur = parent[&cur];
                cyc.push(cur);
                if cur == start {
                    break;
                }
            }
            cyc.reverse();
            let mut key = cyc.clone();
            key.sort_unstable();
            key.dedup();
            if seen_sets.insert(key) {
                out.push(cyc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&[SourceFile::new("crates/x/src/lib.rs", src)])
    }

    fn idx(g: &CallGraph, label: &str) -> usize {
        (0..g.nodes.len()).find(|&i| g.nodes[i].label() == label).expect("node")
    }

    #[test]
    fn resolves_free_method_and_assoc_calls() {
        let g = graph(
            "
            fn top() { helper(); S::make(); }
            fn helper() {}
            struct S;
            impl S {
                fn make() -> S { S }
                fn go(&self) { self.step(); }
                fn step(&self) {}
            }
        ",
        );
        let top = idx(&g, "top");
        let reach = g.reach(top, |_| false);
        assert!(reach.contains_key(&idx(&g, "helper")));
        assert!(reach.contains_key(&idx(&g, "S::make")));
        assert!(!reach.contains_key(&idx(&g, "S::step")));
        let go = idx(&g, "S::go");
        assert!(g.reach(go, |_| false).contains_key(&idx(&g, "S::step")));
    }

    #[test]
    fn skip_methods_produce_no_edges() {
        let g = graph(
            "
            fn top(x: It) { x.next(); }
            struct It;
            impl It { fn next(&self) { dangerous(); } }
            fn dangerous() {}
        ",
        );
        let reach = g.reach(idx(&g, "top"), |_| false);
        assert!(!reach.contains_key(&idx(&g, "dangerous")));
    }

    #[test]
    fn chains_render_root_to_leaf() {
        let g = graph(
            "
            fn a() { b(); }
            fn b() { c(); }
            fn c() {}
        ",
        );
        let a = idx(&g, "a");
        let reach = g.reach(a, |_| false);
        assert_eq!(g.chain(&reach, idx(&g, "c")), "a -> b -> c");
    }

    #[test]
    fn finds_cycles_including_self_loops() {
        let g = graph(
            "
            fn a() { b(); }
            fn b() { a(); }
            fn solo() { solo(); }
            fn line() {}
        ",
        );
        let members: HashSet<usize> = (0..g.nodes.len()).collect();
        let cycles = g.cycles_within(&members);
        assert_eq!(cycles.len(), 2, "a<->b and solo: {cycles:?}");
        assert!(cycles.iter().any(|c| c.len() == 2 && c[0] == idx(&g, "solo")));
    }
}
