//! `inflow-lint`: a zero-dependency static checker for the inflow
//! workspace's source-level invariants.
//!
//! The serving and storage layers rest on properties no unit test can
//! pin down exhaustively: floats ordered totally (IL001), panic-freedom
//! in durable paths (IL002), no mutex guard held across I/O (IL003), a
//! single definition per format magic and one framing module doing all
//! raw parses (IL004), and observability coverage of query entry points
//! (IL005). This crate lexes every workspace source (no syn, no external
//! dependencies — same discipline as `crates/obs`) and enforces those as
//! typed, stably-numbered lints with a reasoned `lint.allow` baseline.
//!
//! On top of the token-level catalog sit the *interprocedural* rules:
//! [`ast`] parses items and extracts per-`fn` facts (calls, lock sites,
//! I/O sites, panic sites), [`callgraph`] resolves a workspace call
//! graph over them, [`interproc`] implements lock-order cycles (IL006),
//! delta-loop purity (IL009) and the call-chain deepenings of
//! IL002/IL003, and [`wire`] checks every protocol codec pair against a
//! declared layout table (IL007) plus unchecked wire arithmetic (IL008).
//!
//! Library layout: [`lexer`] turns source text into a token stream with
//! test-scope flags, [`items`] indexes `fn` items for the call-graph
//! lint, [`rules`] implements IL001–IL005 over those and drives the
//! whole catalog, and [`allow`] handles the baseline file.
//! [`collect_sources`] + [`analyze`] is the whole pipeline; the binary
//! in `main.rs` adds flags and exit codes.

pub mod allow;
pub mod ast;
pub mod callgraph;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod wire;

pub use allow::Allowlist;
pub use rules::{analyze, Finding, SourceFile};

use std::io;
use std::path::{Path, PathBuf};

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut cur = start.canonicalize().ok()?;
    loop {
        let manifest = cur.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(cur);
                }
            }
        }
        if !cur.pop() {
            return None;
        }
    }
}

/// Collects the lintable sources of a workspace: `src/` and `examples/`
/// at the root, plus `src/` and `benches/` of every crate under
/// `crates/`. Integration `tests/` directories and fixture trees are
/// excluded — the lints guard production code, and fixtures are
/// violations on purpose.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut roots = vec![root.join("src"), root.join("examples")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            roots.push(m.join("src"));
            roots.push(m.join("benches"));
        }
    }
    let mut files = Vec::new();
    for r in roots {
        if r.is_dir() {
            walk(root, &r, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|s| s.to_str()).unwrap_or_default();
        if p.is_dir() {
            if matches!(name, "target" | "tests" | "fixtures") {
                continue;
            }
            walk(root, &p, out)?;
        } else if name.ends_with(".rs") {
            let src = std::fs::read_to_string(&p)?;
            let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
            out.push(SourceFile::new(rel, &src));
        }
    }
    Ok(())
}

/// Minimal JSON string escaping for `--json` output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
