//! The server-wide metrics registry.
//!
//! Every pipeline stage reports here: the router counts sharded readings,
//! shard workers report applied readings, queue depths and delta batch
//! sizes, the flow engine reports recompute latencies and notification
//! fan-out. Counters are the fixed [`Counter`] registry the rest of the
//! workspace uses; latencies and sizes go into the same log₂
//! [`Histogram`] the per-query profiles use, so `p99` here means the same
//! thing it means in `--profile` output.

use crate::sync::lock_or_recover;
use inflow_obs::{Counter, CounterSet, Histogram, Timer};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Shared, thread-safe metrics for one server instance.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    counters: Mutex<CounterSet>,
    /// Per-object incremental recompute latency ([`Timer::ServeRecompute`]).
    recompute_ns: Mutex<Histogram>,
    /// Notification fan-out latency ([`Timer::ServeNotify`]).
    notify_ns: Mutex<Histogram>,
    /// Shard ingestion-queue depth sampled at every dequeue (a value
    /// histogram: the "ns" axis carries message counts).
    queue_depth: Mutex<Histogram>,
    /// Object deltas per emitted batch (value histogram).
    delta_batch: Mutex<Histogram>,
}

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    pub fn add(&self, counter: Counter, n: u64) {
        lock_or_recover(&self.counters).add(counter, n);
    }

    pub fn counter(&self, counter: Counter) -> u64 {
        lock_or_recover(&self.counters).get(counter)
    }

    /// A copy of all counters (render / assertions).
    pub fn counters(&self) -> CounterSet {
        lock_or_recover(&self.counters).clone()
    }

    pub fn observe_recompute_ns(&self, ns: u64) {
        lock_or_recover(&self.recompute_ns).observe(ns);
    }

    pub fn observe_notify_ns(&self, ns: u64) {
        lock_or_recover(&self.notify_ns).observe(ns);
    }

    pub fn observe_queue_depth(&self, depth: u64) {
        lock_or_recover(&self.queue_depth).observe(depth);
    }

    pub fn observe_delta_batch(&self, objects: u64) {
        lock_or_recover(&self.delta_batch).observe(objects);
    }

    /// p99 of the incremental recompute latency, ns.
    pub fn recompute_p99_ns(&self) -> u64 {
        lock_or_recover(&self.recompute_ns).quantile_ns(0.99)
    }

    /// p99 of the notification fan-out latency, ns.
    pub fn notify_p99_ns(&self) -> u64 {
        lock_or_recover(&self.notify_ns).quantile_ns(0.99)
    }

    /// Human-readable registry dump (the `STATS` reply and `watch --stats`
    /// output).
    pub fn render(&self) -> String {
        let mut out = String::from("serve metrics\n");
        for (c, v) in self.counters().iter() {
            if v > 0 && c.name().starts_with("serve_") {
                let _ = writeln!(out, "  {:<32} {v}", c.name());
            }
        }
        let hist = |h: &Mutex<Histogram>| lock_or_recover(h).clone();
        for (name, h, unit) in [
            (Timer::ServeRecompute.name(), hist(&self.recompute_ns), "ns"),
            (Timer::ServeNotify.name(), hist(&self.notify_ns), "ns"),
            ("shard_queue_depth", hist(&self.queue_depth), "msgs"),
            ("delta_batch_objects", hist(&self.delta_batch), "objects"),
        ] {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<32} n={} mean={} p99={} max={} {unit}",
                name,
                h.count(),
                h.mean_ns(),
                h.quantile_ns(0.99),
                h.max_ns(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_touched_series_only() {
        let m = ServiceMetrics::new();
        m.add(Counter::ServeReadingsApplied, 3);
        m.observe_recompute_ns(1_000);
        m.observe_recompute_ns(3_000);
        let text = m.render();
        assert!(text.contains("serve_readings_applied"));
        assert!(text.contains("serve_recompute"));
        assert!(!text.contains("serve_notify"), "untouched histogram rendered:\n{text}");
        assert!(m.recompute_p99_ns() >= 1_000);
    }
}
