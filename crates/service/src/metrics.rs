//! The server-wide metrics registry.
//!
//! Every pipeline stage reports here: the router counts sharded readings,
//! shard workers report applied readings, queue depths and delta batch
//! sizes, the flow engine reports recompute latencies and notification
//! fan-out. Counters are the fixed [`Counter`] registry the rest of the
//! workspace uses; latencies and sizes go into the same log₂
//! [`Histogram`] the per-query profiles use, so `p99` here means the same
//! thing it means in `--profile` output.
//!
//! # Histogram axes
//!
//! The registry mixes two kinds of histograms. The bucket layout is
//! identical (log₂, exact bounds exposed in the snapshot) but the unit
//! of the observed axis differs, and the JSON snapshot labels each
//! series with its `unit` so consumers never have to guess:
//!
//! * **Latency histograms** — axis is *nanoseconds*: `serve_recompute`,
//!   `serve_notify`, the six per-stage trace segments
//!   ([`inflow_obs::SEGMENTS`]: queue, wal, apply, engine_queue,
//!   recompute, notify) and the end-to-end `e2e` series.
//! * **Value histograms** — axis is a *count*, not a duration:
//!   `shard_queue_depth` observes queued messages at each dequeue
//!   (unit `msgs`), `delta_batch_objects` observes object deltas per
//!   emitted batch (unit `objects`).

use crate::sync::lock_or_recover;
use inflow_obs::{Counter, CounterSet, Histogram, Timer, TraceChain, SEGMENTS};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Completed notification traces kept for the `TRACE` snapshot.
const TRACE_RING: usize = 64;

/// Slow traces (total ≥ the configured threshold) kept for the
/// slow-request log.
const SLOW_RING: usize = 32;

/// One completed end-to-end notification trace.
#[derive(Debug, Clone, Copy)]
pub struct CompletedTrace {
    pub chain: TraceChain,
    /// Subscription the notification went to.
    pub sub_id: u64,
}

impl CompletedTrace {
    fn to_json(self) -> String {
        let mut s = String::from("{\"sub_id\":");
        s.push_str(&self.sub_id.to_string());
        s.push_str(",\"trace\":");
        s.push_str(&self.chain.to_json());
        s.push('}');
        s
    }
}

#[derive(Debug, Default)]
struct TraceLog {
    /// Most recent completed traces, newest last (bounded ring).
    recent: Vec<CompletedTrace>,
    /// Most recent traces whose total exceeded the slow threshold.
    slow: Vec<CompletedTrace>,
}

/// Shared, thread-safe metrics for one server instance.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    counters: Mutex<CounterSet>,
    /// Per-object incremental recompute latency ([`Timer::ServeRecompute`]),
    /// ns.
    recompute_ns: Mutex<Histogram>,
    /// Notification fan-out latency ([`Timer::ServeNotify`]), ns.
    notify_ns: Mutex<Histogram>,
    /// Shard ingestion-queue depth sampled at every dequeue. Value
    /// histogram: the axis is queued *messages*, not ns.
    queue_depth: Mutex<Histogram>,
    /// Object deltas per emitted batch. Value histogram: the axis is
    /// *objects*, not ns.
    delta_batch: Mutex<Histogram>,
    /// Per-stage latency decomposition of completed notification
    /// traces, indexed like [`SEGMENTS`]; ns.
    stage_ns: Mutex<[Histogram; SEGMENTS.len()]>,
    /// End-to-end router → notified latency of completed traces, ns.
    e2e_ns: Mutex<Histogram>,
    /// Recent completed / slow traces for the `TRACE` snapshot.
    traces: Mutex<TraceLog>,
    /// Traces with `total_ns` at or above this land in the slow log.
    slow_threshold_ns: AtomicU64,
}

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        let m = ServiceMetrics::default();
        m.slow_threshold_ns.store(10_000_000, Ordering::Relaxed); // 10 ms
        m
    }

    pub fn add(&self, counter: Counter, n: u64) {
        lock_or_recover(&self.counters).add(counter, n);
    }

    pub fn counter(&self, counter: Counter) -> u64 {
        lock_or_recover(&self.counters).get(counter)
    }

    /// A copy of all counters (render / assertions).
    pub fn counters(&self) -> CounterSet {
        lock_or_recover(&self.counters).clone()
    }

    pub fn observe_recompute_ns(&self, ns: u64) {
        lock_or_recover(&self.recompute_ns).observe(ns);
    }

    pub fn observe_notify_ns(&self, ns: u64) {
        lock_or_recover(&self.notify_ns).observe(ns);
    }

    pub fn observe_queue_depth(&self, depth: u64) {
        lock_or_recover(&self.queue_depth).observe(depth);
    }

    pub fn observe_delta_batch(&self, objects: u64) {
        lock_or_recover(&self.delta_batch).observe(objects);
    }

    /// Set the slow-request threshold (ns); traces at or above it are
    /// kept in the slow log.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Fold one completed notification trace into the per-stage and
    /// end-to-end histograms and the trace/slow rings.
    pub fn observe_trace(&self, chain: &TraceChain, sub_id: u64) {
        {
            let mut stages = lock_or_recover(&self.stage_ns);
            for (name, ns) in chain.segments() {
                if let Some(i) = SEGMENTS.iter().position(|&s| s == name) {
                    if let Some(h) = stages.get_mut(i) {
                        h.observe(ns);
                    }
                }
            }
        }
        let total = match chain.total_ns() {
            Some(t) => t,
            None => return,
        };
        lock_or_recover(&self.e2e_ns).observe(total);
        self.add(Counter::ServeTracesCompleted, 1);
        let entry = CompletedTrace { chain: *chain, sub_id };
        let mut log = lock_or_recover(&self.traces);
        log.recent.push(entry);
        if log.recent.len() > TRACE_RING {
            log.recent.remove(0);
        }
        if total >= self.slow_threshold_ns() {
            log.slow.push(entry);
            if log.slow.len() > SLOW_RING {
                log.slow.remove(0);
            }
        }
    }

    /// Most recent completed traces (oldest first).
    pub fn recent_traces(&self) -> Vec<CompletedTrace> {
        lock_or_recover(&self.traces).recent.clone()
    }

    /// p99 of the incremental recompute latency, ns.
    pub fn recompute_p99_ns(&self) -> u64 {
        lock_or_recover(&self.recompute_ns).quantile_ns(0.99)
    }

    /// p99 of the notification fan-out latency, ns.
    pub fn notify_p99_ns(&self) -> u64 {
        lock_or_recover(&self.notify_ns).quantile_ns(0.99)
    }

    /// p99 of the end-to-end notification latency, ns.
    pub fn e2e_p99_ns(&self) -> u64 {
        lock_or_recover(&self.e2e_ns).quantile_ns(0.99)
    }

    /// Human-readable registry dump (the `STATS` reply and `watch --stats`
    /// output).
    pub fn render(&self) -> String {
        let mut out = String::from("serve metrics\n");
        for (c, v) in self.counters().iter() {
            if v > 0 && c.name().starts_with("serve_") {
                let _ = writeln!(out, "  {:<32} {v}", c.name());
            }
        }
        for (name, h, unit) in self.histograms() {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<32} n={} mean={} p99={} max={} {unit}",
                name,
                h.count(),
                h.mean(),
                h.quantile(0.99),
                h.maximum(),
            );
        }
        out
    }

    /// All histogram series as `(name, snapshot, unit)` in display order.
    fn histograms(&self) -> Vec<(String, Histogram, &'static str)> {
        let mut out = vec![
            (
                Timer::ServeRecompute.name().to_string(),
                lock_or_recover(&self.recompute_ns).clone(),
                "ns",
            ),
            (Timer::ServeNotify.name().to_string(), lock_or_recover(&self.notify_ns).clone(), "ns"),
            ("shard_queue_depth".to_string(), lock_or_recover(&self.queue_depth).clone(), "msgs"),
            (
                "delta_batch_objects".to_string(),
                lock_or_recover(&self.delta_batch).clone(),
                "objects",
            ),
        ];
        {
            let stages = lock_or_recover(&self.stage_ns);
            for (i, name) in SEGMENTS.iter().enumerate() {
                if let Some(h) = stages.get(i) {
                    out.push((format!("stage_{name}"), h.clone(), "ns"));
                }
            }
        }
        out.push(("e2e".to_string(), lock_or_recover(&self.e2e_ns).clone(), "ns"));
        out
    }

    /// The `METRICS` snapshot: one JSON object with every counter, every
    /// histogram (exact inclusive bucket bounds plus summary quantiles,
    /// each labeled with its axis `unit`), per-shard queue depths and
    /// the slow-request threshold.
    pub fn snapshot_json(&self, shard_depths: &[u64], uptime_ns: u64) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"version\":1,\"uptime_ns\":");
        s.push_str(&uptime_ns.to_string());
        s.push_str(",\"slow_threshold_ns\":");
        s.push_str(&self.slow_threshold_ns().to_string());
        s.push_str(",\"counters\":{");
        let mut first = true;
        for (c, v) in self.counters().iter() {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{v}", c.name());
        }
        s.push_str("},\"histograms\":[");
        for (i, (name, h, unit)) in self.histograms().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{name}\",\"unit\":\"{unit}\",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.maximum(),
            );
            for (j, (lo, hi, n)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"lo\":{lo},\"hi\":{hi},\"n\":{n}}}");
            }
            s.push_str("]}");
        }
        s.push_str("],\"shards\":[");
        for (i, d) in shard_depths.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"shard\":{i},\"queue_depth\":{d}}}");
        }
        s.push_str("]}");
        s
    }

    /// The `TRACE` snapshot: recent completed traces plus the slow log,
    /// each with per-hop timestamps and named segments.
    pub fn traces_json(&self) -> String {
        let log = lock_or_recover(&self.traces);
        let mut s = String::with_capacity(1024);
        s.push_str("{\"version\":1,\"slow_threshold_ns\":");
        s.push_str(&self.slow_threshold_ns().to_string());
        s.push_str(",\"recent\":[");
        for (i, t) in log.recent.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("],\"slow\":[");
        for (i, t) in log.slow.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_obs::{Hop, Json};

    #[test]
    fn render_lists_touched_series_only() {
        let m = ServiceMetrics::new();
        m.add(Counter::ServeReadingsApplied, 3);
        m.observe_recompute_ns(1_000);
        m.observe_recompute_ns(3_000);
        let text = m.render();
        assert!(text.contains("serve_readings_applied"));
        assert!(text.contains("serve_recompute"));
        assert!(!text.contains("serve_notify"), "untouched histogram rendered:\n{text}");
        assert!(m.recompute_p99_ns() >= 1_000);
    }

    fn chain(total_ns: u64) -> TraceChain {
        let mut c = TraceChain::new(5);
        let step = total_ns / 6;
        for (i, &h) in Hop::ALL.iter().enumerate() {
            c.stamp(h, 1 + step * i as u64);
        }
        c
    }

    #[test]
    fn observed_traces_feed_stage_histograms_and_rings() {
        let m = ServiceMetrics::new();
        m.set_slow_threshold_ns(1_000_000);
        m.observe_trace(&chain(600), 1); // fast
        m.observe_trace(&chain(60_000_000), 2); // slow
        assert_eq!(m.counter(Counter::ServeTracesCompleted), 2);
        assert_eq!(m.recent_traces().len(), 2);
        let traces = Json::parse(&m.traces_json()).expect("valid trace json");
        assert_eq!(traces.get("recent").and_then(|r| r.as_arr()).map(|r| r.len()), Some(2));
        let slow = traces.get("slow").and_then(|r| r.as_arr()).expect("slow log");
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].get("sub_id").and_then(|v| v.as_u64()), Some(2));
        let seg = slow[0]
            .get("trace")
            .and_then(|t| t.get("segments"))
            .and_then(|s| s.as_obj())
            .expect("segments");
        assert_eq!(seg.len(), SEGMENTS.len());
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let m = ServiceMetrics::new();
        m.add(Counter::ServeReadingsSharded, 10);
        m.observe_queue_depth(3);
        m.observe_trace(&chain(6_000), 1);
        let snap = Json::parse(&m.snapshot_json(&[2, 0], 1_234)).expect("valid metrics json");
        assert_eq!(snap.get("version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(snap.get("uptime_ns").and_then(|v| v.as_u64()), Some(1_234));
        let counters = snap.get("counters").and_then(|c| c.as_obj()).expect("counters");
        assert_eq!(counters.get("serve_readings_sharded").and_then(|v| v.as_u64()), Some(10));
        let hists = snap.get("histograms").and_then(|h| h.as_arr()).expect("histograms");
        // Value histograms carry non-ns units.
        let qd = hists
            .iter()
            .find(|h| h.get("name").and_then(|n| n.as_str()) == Some("shard_queue_depth"))
            .expect("queue depth series");
        assert_eq!(qd.get("unit").and_then(|u| u.as_str()), Some("msgs"));
        let buckets = qd.get("buckets").and_then(|b| b.as_arr()).expect("buckets");
        assert_eq!(buckets[0].get("lo").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(buckets[0].get("hi").and_then(|v| v.as_u64()), Some(3));
        // Every trace segment series is present with unit ns.
        for name in SEGMENTS {
            let s = hists
                .iter()
                .find(|h| {
                    h.get("name").and_then(|n| n.as_str()) == Some(&format!("stage_{name}")[..])
                })
                .unwrap_or_else(|| panic!("missing stage_{name}"));
            assert_eq!(s.get("unit").and_then(|u| u.as_str()), Some("ns"));
        }
        let shards = snap.get("shards").and_then(|x| x.as_arr()).expect("shards");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("queue_depth").and_then(|v| v.as_u64()), Some(2));
    }
}
