//! The TCP flow-monitoring server.
//!
//! Topology: one accept thread feeds accepted sockets to a fixed pool of
//! connection threads; each connection gets a dedicated writer thread
//! (replies and pushed `UPDATE` frames serialize through one channel, so
//! a client that issues a barrier and reads its ack has already received
//! every update the barrier flushed). Readings are routed by
//! `object % shards` to shard worker threads; row deltas flow from
//! shards to the single engine thread, which owns all subscription
//! state.
//!
//! The barrier protocol gives tests and clients a deterministic sync
//! point: flush every shard (acks guarantee all prior publishes were
//! ingested and their deltas *enqueued* to the engine), then bounce a
//! message off the engine (FIFO order guarantees those deltas were
//! *applied* and their notifications enqueued to writers before the ack
//! frame, which the single writer serializes after the updates).
//!
//! Shard workers are individually crash- and restart-able through
//! [`ServerHandle::crash_shard`] / [`ServerHandle::restart_shard`]: the
//! message queue lives in the handle, so no publish is lost, and the
//! restarted worker recovers from its WAL and re-emits full deltas.

use crate::engine::{spawn_engine, EngineConfig, EngineMsg};
use crate::metrics::ServiceMetrics;
use crate::protocol::{self, tag};
use crate::shard::{spawn_shard, ShardConfig, ShardMsg};
use crate::sync::lock_or_recover;
use inflow_obs::Counter;
use inflow_uncertainty::{IndoorContext, UrConfig};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. `port: 0` binds an ephemeral port (tests);
/// `store_dir` gets one `shard-<i>` subdirectory per shard.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub shards: usize,
    pub max_gap: f64,
    pub lateness: Option<f64>,
    pub ur: UrConfig,
    pub store_dir: PathBuf,
    pub sync_each_reading: bool,
    pub snapshot_every: Option<u64>,
    pub pool: usize,
    pub port: u16,
}

impl ServeConfig {
    pub fn new(store_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            shards: 2,
            max_gap: 60.0,
            lateness: None,
            ur: UrConfig::default(),
            store_dir,
            sync_each_reading: false,
            snapshot_every: Some(1024),
            pool: 4,
            port: 0,
        }
    }
}

/// One shard's routing endpoint: the sender the router publishes into,
/// the shared receiver a (re)started worker drains, and the live worker
/// handle.
struct Shard {
    tx: Sender<ShardMsg>,
    rx: Arc<Mutex<Receiver<ShardMsg>>>,
    queue_depth: Arc<AtomicUsize>,
    dir: PathBuf,
    worker: Option<JoinHandle<()>>,
}

/// State shared by every connection thread.
struct Shared {
    shards: Mutex<Vec<Shard>>,
    engine_tx: Sender<EngineMsg>,
    metrics: Arc<ServiceMetrics>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    /// Routes one reading to its owning shard. Per-object ordering holds
    /// because routing is a pure function of the object id.
    fn route(&self, r: inflow_tracking::RawReading) {
        let shards = lock_or_recover(&self.shards);
        let idx = r.object.0 as usize % shards.len().max(1);
        let Some(shard) = shards.get(idx) else { return };
        shard.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.metrics.add(Counter::ServeReadingsSharded, 1);
        let _ = shard.tx.send(ShardMsg::Publish(r));
    }

    /// Barrier half one: flush every shard, wait for all acks.
    fn flush_shards(&self) {
        let acks: Vec<Receiver<()>> = {
            let shards = lock_or_recover(&self.shards);
            shards
                .iter()
                .map(|s| {
                    let (ack_tx, ack_rx) = channel();
                    s.queue_depth.fetch_add(1, Ordering::Relaxed);
                    let _ = s.tx.send(ShardMsg::Flush(ack_tx));
                    ack_rx
                })
                .collect()
        };
        for ack in acks {
            // A crashed (not yet restarted) shard can't ack; its queue is
            // intact, so the barrier still guarantees every *applied*
            // reading is reflected — which is all a crashed epoch promises.
            let _ = ack.recv_timeout(Duration::from_secs(5));
        }
    }
}

/// A running server. Dropping the handle does not stop the server; call
/// [`ServerHandle::shutdown`] (or send a `SHUTDOWN` frame) then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    cfg: ServeConfig,
    accept: Option<JoinHandle<()>>,
    pool: Vec<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

pub struct Server;

impl Server {
    /// Builds the full pipeline and starts listening on 127.0.0.1.
    pub fn start(ctx: Arc<IndoorContext>, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let metrics = Arc::new(ServiceMetrics::new());
        let (engine_tx, engine_rx) = channel();
        let engine =
            spawn_engine(engine_rx, EngineConfig { ctx, ur: cfg.ur }, Arc::clone(&metrics))?;

        let shard_cfg = ShardConfig {
            max_gap: cfg.max_gap,
            lateness: cfg.lateness,
            sync_each_reading: cfg.sync_each_reading,
            snapshot_every: cfg.snapshot_every,
        };
        let mut shards = Vec::with_capacity(cfg.shards.max(1));
        for i in 0..cfg.shards.max(1) {
            let (tx, rx) = channel();
            let rx = Arc::new(Mutex::new(rx));
            let queue_depth = Arc::new(AtomicUsize::new(0));
            let dir = cfg.store_dir.join(format!("shard-{i}"));
            std::fs::create_dir_all(&dir)?;
            let worker = spawn_shard(
                i,
                dir.clone(),
                Arc::clone(&rx),
                Arc::clone(&queue_depth),
                engine_tx.clone(),
                Arc::clone(&metrics),
                shard_cfg.clone(),
            )?;
            shards.push(Shard { tx, rx, queue_depth, dir, worker: Some(worker) });
        }

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards: Mutex::new(shards),
            engine_tx,
            metrics,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            addr,
        });

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut pool = Vec::with_capacity(cfg.pool.max(1));
        for i in 0..cfg.pool.max(1) {
            let rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            pool.push(std::thread::Builder::new().name(format!("inflow-conn-{i}")).spawn(
                move || loop {
                    let stream = {
                        let guard = lock_or_recover(&rx);
                        match guard.recv() {
                            Ok(s) => s,
                            Err(_) => break,
                        }
                    };
                    serve_connection(stream, &shared);
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                },
            )?);
        }

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new().name("inflow-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if conn_tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            // conn_tx drops here: idle pool threads unblock and exit.
        })?;

        Ok(ServerHandle { shared, cfg, accept: Some(accept), pool, engine: Some(engine) })
    }
}

impl ServerHandle {
    /// The bound listen address (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Kills shard `i` abruptly: no snapshot, no drain — the WAL is the
    /// only survivor, exactly like a process crash. Queued messages stay
    /// in the shared receiver for the restarted worker.
    pub fn crash_shard(&self, i: usize) {
        let (worker, tx) = {
            let mut shards = lock_or_recover(&self.shared.shards);
            let Some(s) = shards.get_mut(i) else { return };
            s.queue_depth.fetch_add(1, Ordering::Relaxed);
            let _ = s.tx.send(ShardMsg::Crash);
            (s.worker.take(), s.tx.clone())
        };
        drop(tx);
        if let Some(w) = worker {
            let _ = w.join();
        }
    }

    /// Restarts shard `i` on the same queue and store directory. The new
    /// worker recovers from the WAL and re-emits full deltas before
    /// draining whatever queued up during the outage.
    pub fn restart_shard(&self, i: usize) -> io::Result<()> {
        let mut shards = lock_or_recover(&self.shared.shards);
        let Some(s) = shards.get_mut(i) else {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, format!("no shard {i}")));
        };
        if let Some(w) = s.worker.take() {
            // A still-running worker would race the new one on the store;
            // crash it first.
            s.queue_depth.fetch_add(1, Ordering::Relaxed);
            let _ = s.tx.send(ShardMsg::Crash);
            let _ = w.join();
        }
        let cfg = ShardConfig {
            max_gap: self.cfg.max_gap,
            lateness: self.cfg.lateness,
            sync_each_reading: self.cfg.sync_each_reading,
            snapshot_every: self.cfg.snapshot_every,
        };
        let worker = spawn_shard(
            i,
            s.dir.clone(),
            Arc::clone(&s.rx),
            Arc::clone(&s.queue_depth),
            self.shared.engine_tx.clone(),
            self.shared.metrics.clone(),
            cfg,
        )?;
        s.worker = Some(worker);
        self.shared.metrics.add(Counter::ServeShardRestarts, 1);
        Ok(())
    }

    /// Initiates shutdown (also reachable via a `SHUTDOWN` frame).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Blocks until the server has fully stopped (accept loop, pool,
    /// shards snapshotted, engine drained). Call after [`shutdown`] or
    /// after a client sent `SHUTDOWN`.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn wait(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for p in self.pool.drain(..) {
            let _ = p.join();
        }
        // Stop shards cleanly (snapshot) before the engine.
        let stops: Vec<(Receiver<()>, Option<JoinHandle<()>>)> = {
            let mut shards = lock_or_recover(&self.shared.shards);
            shards
                .iter_mut()
                .map(|s| {
                    let (ack_tx, ack_rx) = channel();
                    s.queue_depth.fetch_add(1, Ordering::Relaxed);
                    let _ = s.tx.send(ShardMsg::Stop(ack_tx));
                    (ack_rx, s.worker.take())
                })
                .collect()
        };
        for (ack, worker) in stops {
            let _ = ack.recv_timeout(Duration::from_secs(5));
            if let Some(w) = worker {
                let _ = w.join();
            }
        }
        let _ = self.shared.engine_tx.send(EngineMsg::Stop);
        if let Some(e) = self.engine.take() {
            let _ = e.join();
        }
    }
}

/// Reads frames off one client connection until EOF, error, or server
/// shutdown. Replies (and engine-pushed updates) go through a dedicated
/// writer thread so they never interleave mid-frame.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let Ok(write_half) = stream.try_clone() else { return };
    let (writer_tx, writer_rx) = channel::<Vec<u8>>();
    let writer = std::thread::Builder::new()
        .name(format!("inflow-writer-{conn_id}"))
        .spawn(move || write_loop(write_half, writer_rx));
    let Ok(writer) = writer else { return };

    read_loop(stream, shared, conn_id, &writer_tx);

    // Reader done: detach the engine's handle on this connection, then
    // close the writer channel so the writer thread drains and exits.
    let _ = shared.engine_tx.send(EngineMsg::DropConn(conn_id));
    drop(writer_tx);
    let _ = writer.join();
}

fn write_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>) {
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}

/// Queues one reply frame on the connection's writer.
fn reply(writer: &Sender<Vec<u8>>, tag_byte: u8, payload: &[u8]) {
    let mut frame = Vec::with_capacity(9 + payload.len());
    inflow_tracking::store::frame::write_frame(&mut frame, tag_byte, payload);
    let _ = writer.send(frame);
}

fn read_loop(mut stream: TcpStream, shared: &Shared, conn_id: u64, writer: &Sender<Vec<u8>>) {
    // Short read timeout on the *tag byte only* so the loop can poll the
    // shutdown flag; `read_tag`/`read_body` never split a frame across a
    // timeout.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    loop {
        let tag_byte = match protocol::read_tag(&mut stream) {
            Ok(Some(t)) => t,
            Ok(None) => break, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let body = match protocol::read_body(&mut stream, tag_byte) {
            Ok(b) => b,
            Err(_) => {
                reply(writer, tag::ERROR, b"malformed frame");
                break;
            }
        };
        match tag_byte {
            tag::PUBLISH => match protocol::decode_publish(&body) {
                Ok(readings) => {
                    for r in readings {
                        shared.route(r);
                    }
                    reply(writer, tag::ACK, &[]);
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::SUBSCRIBE => match protocol::decode_subspec(&body) {
                Ok(spec) => {
                    let _ = shared.engine_tx.send(EngineMsg::Subscribe {
                        spec,
                        conn: conn_id,
                        writer: writer.clone(),
                    });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::UNSUBSCRIBE => match protocol::decode_u64(&body) {
                Ok(sub_id) => {
                    let _ = shared
                        .engine_tx
                        .send(EngineMsg::Unsubscribe { sub_id, writer: writer.clone() });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::CURRENT => match protocol::decode_u64(&body) {
                Ok(sub_id) => {
                    let _ = shared
                        .engine_tx
                        .send(EngineMsg::Current { sub_id, writer: writer.clone() });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::QUERY => match protocol::decode_subspec(&body) {
                Ok(spec) => {
                    let _ =
                        shared.engine_tx.send(EngineMsg::Query { spec, writer: writer.clone() });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::BARRIER => {
                shared.flush_shards();
                let _ = shared.engine_tx.send(EngineMsg::Barrier { writer: writer.clone() });
            }
            tag::DUMP_ROWS => {
                let _ = shared.engine_tx.send(EngineMsg::DumpRows { writer: writer.clone() });
            }
            tag::STATS => {
                let _ = shared.engine_tx.send(EngineMsg::Stats { writer: writer.clone() });
            }
            tag::SHUTDOWN => {
                reply(writer, tag::ACK, &[]);
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
                break;
            }
            other => {
                reply(writer, tag::ERROR, format!("unknown request tag {other}").as_bytes());
            }
        }
    }
}
