//! The TCP flow-monitoring server.
//!
//! Topology: one accept thread feeds accepted sockets to a fixed pool of
//! connection threads; each connection gets a dedicated writer thread
//! (replies and pushed `UPDATE` frames serialize through one channel, so
//! a client that issues a barrier and reads its ack has already received
//! every update the barrier flushed). Readings are routed by
//! `object % shards` to shard worker threads; row deltas flow from
//! shards to the single engine thread, which owns all subscription
//! state.
//!
//! The barrier protocol gives tests and clients a deterministic sync
//! point: flush every shard (acks guarantee all prior publishes were
//! ingested and their deltas *enqueued* to the engine), then bounce a
//! message off the engine (FIFO order guarantees those deltas were
//! *applied* and their notifications enqueued to writers before the ack
//! frame, which the single writer serializes after the updates).
//!
//! Shard workers are individually crash- and restart-able through
//! [`ServerHandle::crash_shard`] / [`ServerHandle::restart_shard`]: the
//! message queue lives in the handle, so no publish is lost, and the
//! restarted worker recovers from its WAL and re-emits full deltas.

use crate::engine::{spawn_engine, EngineConfig, EngineMsg};
use crate::metrics::ServiceMetrics;
use crate::protocol::{self, tag, PROTOCOL_VERSION};
use crate::shard::{spawn_shard, ShardConfig, ShardMsg};
use crate::sync::lock_or_recover;
use inflow_obs::{Counter, FlightEventKind, FlightRecorder, Hop, TraceChain, TraceClock};
use inflow_uncertainty::{IndoorContext, UrConfig};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. `port: 0` binds an ephemeral port (tests);
/// `store_dir` gets one `shard-<i>` subdirectory per shard.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub shards: usize,
    pub max_gap: f64,
    pub lateness: Option<f64>,
    pub ur: UrConfig,
    pub store_dir: PathBuf,
    pub sync_each_reading: bool,
    pub snapshot_every: Option<u64>,
    /// Per-shard segment tier: seal closed rows into immutable segments
    /// every this many rows (`None` keeps everything in WAL+snapshots).
    pub compact_every: Option<u64>,
    /// Per-shard background scrub cadence, in ingested readings.
    pub scrub_every: Option<u64>,
    pub pool: usize,
    pub port: u16,
    /// Assign each PUBLISH batch a trace id and carry per-hop timestamp
    /// chains through the pipeline (on by default; the flight recorder
    /// is always on regardless).
    pub trace: bool,
    /// Completed traces with end-to-end latency at or above this land in
    /// the slow-request log.
    pub slow_ms: u64,
    /// Flight-recorder ring capacity (events; rounded up to a power of
    /// two).
    pub flight_capacity: usize,
    /// Backpressure bound: a `PUBLISH` arriving while any shard queue is
    /// at least this deep is refused with an `OVERLOADED` frame instead
    /// of being routed (0 refuses every publish — tests use that for a
    /// deterministic overload).
    pub max_queue: usize,
    /// Admission bound: connections beyond this many concurrently open
    /// are sent a single `OVERLOADED` frame and dropped at accept.
    pub max_conns: usize,
}

impl ServeConfig {
    pub fn new(store_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            shards: 2,
            max_gap: 60.0,
            lateness: None,
            ur: UrConfig::default(),
            store_dir,
            sync_each_reading: false,
            snapshot_every: Some(1024),
            compact_every: Some(4096),
            scrub_every: Some(1024),
            pool: 4,
            port: 0,
            trace: true,
            slow_ms: 10,
            flight_capacity: 4096,
            max_queue: 16_384,
            max_conns: 1024,
        }
    }
}

/// One panic-hook registration: the ring to dump and where to write it.
type PanicDump = (Weak<FlightRecorder>, PathBuf);

/// Flight recorders registered for the process-wide panic hook, with
/// the postmortem path each should dump to. `Weak` so a stopped server
/// doesn't pin its ring (a dead entry is skipped).
static PANIC_DUMPS: OnceLock<Mutex<Vec<PanicDump>>> = OnceLock::new();

/// Chains the flight-recorder dump onto the default panic hook: any
/// panic anywhere in the process writes each live registered ring to
/// its `postmortem-panic.jsonl` before the usual backtrace output.
fn register_panic_dump(flight: &Arc<FlightRecorder>, path: PathBuf) {
    static HOOK: OnceLock<()> = OnceLock::new();
    let registry = PANIC_DUMPS.get_or_init(|| Mutex::new(Vec::new()));
    {
        let mut reg = lock_or_recover(registry);
        reg.retain(|(w, _)| w.upgrade().is_some());
        reg.push((Arc::downgrade(flight), path));
    }
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(registry) = PANIC_DUMPS.get() {
                // Copy the entries out so no lock is held while dumping.
                let entries: Vec<PanicDump> = lock_or_recover(registry).clone();
                for (weak, path) in entries {
                    if let Some(flight) = weak.upgrade() {
                        let _ = std::fs::write(&path, flight.dump_jsonl());
                    }
                }
            }
            prev(info);
        }));
    });
}

/// One shard's routing endpoint: the sender the router publishes into,
/// the shared receiver a (re)started worker drains, and the live worker
/// handle.
struct Shard {
    tx: Sender<ShardMsg>,
    rx: Arc<Mutex<Receiver<ShardMsg>>>,
    queue_depth: Arc<AtomicUsize>,
    dir: PathBuf,
    worker: Option<JoinHandle<()>>,
}

/// State shared by every connection thread.
struct Shared {
    shards: Mutex<Vec<Shard>>,
    engine_tx: Sender<EngineMsg>,
    metrics: Arc<ServiceMetrics>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    addr: SocketAddr,
    /// Server-epoch clock all trace stamps and flight events share.
    clock: TraceClock,
    /// The always-on event ring.
    flight: Arc<FlightRecorder>,
    /// Router-assigned trace ids (0 reserved for "no trace").
    next_trace: AtomicU64,
    /// Per-hop tracing enabled (`ServeConfig::trace`).
    trace: bool,
    /// Shard-queue depth at which publishes are refused (`OVERLOADED`).
    max_queue: usize,
    /// Currently open (admitted) connections, for the accept bound.
    conns: AtomicUsize,
}

impl Shared {
    /// Routes one `PUBLISH` batch: partitions the readings by owning
    /// shard (a pure function of the object id, so per-object ordering
    /// holds) and hands each shard its whole slice as one message. Each
    /// slice yields one delta batch, so subscription refresh cost scales
    /// with publishes rather than readings — and the slicing follows
    /// client publish boundaries, keeping the cadence deterministic
    /// under record/replay.
    fn route_batch(&self, readings: Vec<inflow_tracking::RawReading>, trace: Option<TraceChain>) {
        let shards = lock_or_recover(&self.shards);
        let n = shards.len().max(1);
        let mut slices: Vec<Vec<inflow_tracking::RawReading>> = vec![Vec::new(); n];
        for r in readings {
            if let Some(slice) = slices.get_mut(r.object.0 as usize % n) {
                slice.push(r);
            }
        }
        for (idx, slice) in slices.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let Some(shard) = shards.get(idx) else { continue };
            shard.queue_depth.fetch_add(slice.len(), Ordering::Relaxed);
            self.metrics.add(Counter::ServeReadingsSharded, slice.len() as u64);
            let _ = shard.tx.send(ShardMsg::Publish(slice, trace));
        }
    }

    /// A fresh router-stamped trace chain, or `None` when tracing is off.
    fn new_trace(&self) -> Option<TraceChain> {
        if !self.trace {
            return None;
        }
        let id = self.next_trace.fetch_add(1, Ordering::Relaxed);
        let mut chain = TraceChain::new(id);
        chain.stamp(Hop::Router, self.clock.now_ns());
        Some(chain)
    }

    /// Current queue depth of every shard, in shard order.
    fn shard_depths(&self) -> Vec<u64> {
        let shards = lock_or_recover(&self.shards);
        shards.iter().map(|s| s.queue_depth.load(Ordering::Relaxed) as u64).collect()
    }

    /// Barrier half one: flush every shard, wait for all acks.
    fn flush_shards(&self) {
        let acks: Vec<Receiver<()>> = {
            let shards = lock_or_recover(&self.shards);
            shards
                .iter()
                .map(|s| {
                    let (ack_tx, ack_rx) = channel();
                    s.queue_depth.fetch_add(1, Ordering::Relaxed);
                    let _ = s.tx.send(ShardMsg::Flush(ack_tx));
                    ack_rx
                })
                .collect()
        };
        for ack in acks {
            // A crashed (not yet restarted) shard can't ack; its queue is
            // intact, so the barrier still guarantees every *applied*
            // reading is reflected — which is all a crashed epoch promises.
            let _ = ack.recv_timeout(Duration::from_secs(5));
        }
    }
}

/// A running server. Dropping the handle does not stop the server; call
/// [`ServerHandle::shutdown`] (or send a `SHUTDOWN` frame) then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    cfg: ServeConfig,
    accept: Option<JoinHandle<()>>,
    pool: Vec<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

pub struct Server;

impl Server {
    /// Builds the full pipeline and starts listening on 127.0.0.1.
    pub fn start(ctx: Arc<IndoorContext>, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let metrics = Arc::new(ServiceMetrics::new());
        metrics.set_slow_threshold_ns(cfg.slow_ms.saturating_mul(1_000_000));
        let clock = TraceClock::new();
        let flight = Arc::new(FlightRecorder::new(clock.clone(), cfg.flight_capacity));
        register_panic_dump(&flight, cfg.store_dir.join("postmortem-panic.jsonl"));
        let (engine_tx, engine_rx) = channel();
        let engine = spawn_engine(
            engine_rx,
            EngineConfig { ctx, ur: cfg.ur, flight: Arc::clone(&flight) },
            Arc::clone(&metrics),
        )?;

        let shard_cfg = ShardConfig {
            max_gap: cfg.max_gap,
            lateness: cfg.lateness,
            sync_each_reading: cfg.sync_each_reading,
            snapshot_every: cfg.snapshot_every,
            compact_every: cfg.compact_every,
            scrub_every: cfg.scrub_every,
        };
        let mut shards = Vec::with_capacity(cfg.shards.max(1));
        for i in 0..cfg.shards.max(1) {
            let (tx, rx) = channel();
            let rx = Arc::new(Mutex::new(rx));
            let queue_depth = Arc::new(AtomicUsize::new(0));
            let dir = cfg.store_dir.join(format!("shard-{i}"));
            std::fs::create_dir_all(&dir)?;
            let worker = spawn_shard(
                i,
                dir.clone(),
                Arc::clone(&rx),
                Arc::clone(&queue_depth),
                engine_tx.clone(),
                Arc::clone(&metrics),
                Arc::clone(&flight),
                shard_cfg.clone(),
            )?;
            shards.push(Shard { tx, rx, queue_depth, dir, worker: Some(worker) });
        }

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards: Mutex::new(shards),
            engine_tx,
            metrics,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            addr,
            clock,
            flight,
            next_trace: AtomicU64::new(1),
            trace: cfg.trace,
            max_queue: cfg.max_queue,
            conns: AtomicUsize::new(0),
        });

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut pool = Vec::with_capacity(cfg.pool.max(1));
        for i in 0..cfg.pool.max(1) {
            let rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            pool.push(std::thread::Builder::new().name(format!("inflow-conn-{i}")).spawn(
                move || loop {
                    let stream = {
                        let guard = lock_or_recover(&rx);
                        match guard.recv() {
                            Ok(s) => s,
                            Err(_) => break,
                        }
                    };
                    serve_connection(stream, &shared);
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                },
            )?);
        }

        let accept_shared = Arc::clone(&shared);
        let max_conns = cfg.max_conns.max(1);
        let accept = std::thread::Builder::new().name("inflow-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(mut s) => {
                        if accept_shared.conns.load(Ordering::Relaxed) >= max_conns {
                            // Over the admission bound: tell the client
                            // explicitly (one OVERLOADED frame) and drop
                            // the socket rather than queueing it blind.
                            accept_shared.metrics.add(Counter::ServeConnsRejected, 1);
                            accept_shared.flight.record(
                                FlightEventKind::ConnRejected,
                                0,
                                max_conns as u64,
                                0,
                            );
                            let mut frame = Vec::new();
                            inflow_tracking::store::frame::write_frame(
                                &mut frame,
                                tag::OVERLOADED,
                                &protocol::encode_u64(max_conns as u64),
                            );
                            let _ = s.write_all(&frame);
                            continue;
                        }
                        accept_shared.conns.fetch_add(1, Ordering::Relaxed);
                        if conn_tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            // conn_tx drops here: idle pool threads unblock and exit.
        })?;

        Ok(ServerHandle { shared, cfg, accept: Some(accept), pool, engine: Some(engine) })
    }
}

impl ServerHandle {
    /// The bound listen address (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Kills shard `i` abruptly: no snapshot, no drain — the WAL is the
    /// only survivor, exactly like a process crash. Queued messages stay
    /// in the shared receiver for the restarted worker.
    pub fn crash_shard(&self, i: usize) {
        let (worker, tx) = {
            let mut shards = lock_or_recover(&self.shared.shards);
            let Some(s) = shards.get_mut(i) else { return };
            s.queue_depth.fetch_add(1, Ordering::Relaxed);
            let _ = s.tx.send(ShardMsg::Crash);
            (s.worker.take(), s.tx.clone())
        };
        drop(tx);
        if let Some(w) = worker {
            let _ = w.join();
        }
    }

    /// Restarts shard `i` on the same queue and store directory. The new
    /// worker recovers from the WAL and re-emits full deltas before
    /// draining whatever queued up during the outage.
    pub fn restart_shard(&self, i: usize) -> io::Result<()> {
        // Take what the respawn needs under the lock, then release it:
        // joining the old worker and reopening the store both block, and
        // the router locks `shards` on every batch (same discipline as
        // `crash_shard`). Concurrent restarts of the *same* shard are the
        // caller's responsibility, as before.
        let (old_worker, dir, rx, queue_depth) = {
            let mut shards = lock_or_recover(&self.shared.shards);
            let Some(s) = shards.get_mut(i) else {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, format!("no shard {i}")));
            };
            let w = s.worker.take();
            if w.is_some() {
                // A still-running worker would race the new one on the
                // store; crash it first.
                s.queue_depth.fetch_add(1, Ordering::Relaxed);
                let _ = s.tx.send(ShardMsg::Crash);
            }
            (w, s.dir.clone(), Arc::clone(&s.rx), Arc::clone(&s.queue_depth))
        };
        if let Some(w) = old_worker {
            let _ = w.join();
        }
        let cfg = ShardConfig {
            max_gap: self.cfg.max_gap,
            lateness: self.cfg.lateness,
            sync_each_reading: self.cfg.sync_each_reading,
            snapshot_every: self.cfg.snapshot_every,
            compact_every: self.cfg.compact_every,
            scrub_every: self.cfg.scrub_every,
        };
        let worker = spawn_shard(
            i,
            dir,
            rx,
            queue_depth,
            self.shared.engine_tx.clone(),
            self.shared.metrics.clone(),
            Arc::clone(&self.shared.flight),
            cfg,
        )?;
        let mut shards = lock_or_recover(&self.shared.shards);
        if let Some(s) = shards.get_mut(i) {
            s.worker = Some(worker);
        }
        drop(shards);
        self.shared.metrics.add(Counter::ServeShardRestarts, 1);
        self.shared.flight.record(FlightEventKind::ShardRestart, 0, i as u64, 0);
        Ok(())
    }

    /// The server's always-on flight recorder (tests and embedding
    /// harnesses inspect or dump it directly).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    /// Abruptly stops the whole server: no shard snapshots, no clean
    /// drains — every shard exits as if the process died and the WALs
    /// are the only survivors. Open client connections are severed.
    /// Restart with [`Server::start`] on the same store directory (and
    /// an explicit port to come back on the same address); recovery
    /// replays the WALs. This is the fault-injection primitive the
    /// reconnect/resume suites drive.
    pub fn crash(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for p in self.pool.drain(..) {
            let _ = p.join();
        }
        let workers: Vec<Option<JoinHandle<()>>> = {
            let mut shards = lock_or_recover(&self.shared.shards);
            shards
                .iter_mut()
                .map(|s| {
                    s.queue_depth.fetch_add(1, Ordering::Relaxed);
                    let _ = s.tx.send(ShardMsg::Crash);
                    s.worker.take()
                })
                .collect()
        };
        for w in workers.into_iter().flatten() {
            let _ = w.join();
        }
        let _ = self.shared.engine_tx.send(EngineMsg::Stop);
        if let Some(e) = self.engine.take() {
            let _ = e.join();
        }
    }

    /// Initiates shutdown (also reachable via a `SHUTDOWN` frame).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Blocks until the server has fully stopped (accept loop, pool,
    /// shards snapshotted, engine drained). Call after [`shutdown`] or
    /// after a client sent `SHUTDOWN`.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn wait(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for p in self.pool.drain(..) {
            let _ = p.join();
        }
        // Stop shards cleanly (snapshot) before the engine.
        let stops: Vec<(Receiver<()>, Option<JoinHandle<()>>)> = {
            let mut shards = lock_or_recover(&self.shared.shards);
            shards
                .iter_mut()
                .map(|s| {
                    let (ack_tx, ack_rx) = channel();
                    s.queue_depth.fetch_add(1, Ordering::Relaxed);
                    let _ = s.tx.send(ShardMsg::Stop(ack_tx));
                    (ack_rx, s.worker.take())
                })
                .collect()
        };
        for (ack, worker) in stops {
            let _ = ack.recv_timeout(Duration::from_secs(5));
            if let Some(w) = worker {
                let _ = w.join();
            }
        }
        let _ = self.shared.engine_tx.send(EngineMsg::Stop);
        if let Some(e) = self.engine.take() {
            let _ = e.join();
        }
    }
}

/// Reads frames off one client connection until EOF, error, or server
/// shutdown. Replies (and engine-pushed updates) go through a dedicated
/// writer thread so they never interleave mid-frame.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let Ok(write_half) = stream.try_clone() else {
        shared.conns.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    let (writer_tx, writer_rx) = channel::<Vec<u8>>();
    let writer = std::thread::Builder::new()
        .name(format!("inflow-writer-{conn_id}"))
        .spawn(move || write_loop(write_half, writer_rx));
    let Ok(writer) = writer else {
        shared.conns.fetch_sub(1, Ordering::Relaxed);
        return;
    };

    shared.flight.record(FlightEventKind::ConnOpened, 0, conn_id, 0);
    read_loop(stream, shared, conn_id, &writer_tx);
    shared.flight.record(FlightEventKind::ConnClosed, 0, conn_id, 0);

    // Reader done: detach the engine's handle on this connection, then
    // close the writer channel so the writer thread drains and exits.
    let _ = shared.engine_tx.send(EngineMsg::DropConn(conn_id));
    drop(writer_tx);
    let _ = writer.join();
    shared.conns.fetch_sub(1, Ordering::Relaxed);
}

fn write_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>) {
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}

/// Queues one reply frame on the connection's writer.
fn reply(writer: &Sender<Vec<u8>>, tag_byte: u8, payload: &[u8]) {
    let mut frame = Vec::with_capacity(9 + payload.len());
    inflow_tracking::store::frame::write_frame(&mut frame, tag_byte, payload);
    let _ = writer.send(frame);
}

fn read_loop(mut stream: TcpStream, shared: &Shared, conn_id: u64, writer: &Sender<Vec<u8>>) {
    // Short read timeout on the *tag byte only* so the loop can poll the
    // shutdown flag; `read_tag`/`read_body` never split a frame across a
    // timeout.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    // Until a HELLO arrives the connection speaks v1 (pre-tracing wire
    // format) so old clients keep working unchanged.
    let mut conn_version: u32 = 1;
    loop {
        let tag_byte = match protocol::read_tag(&mut stream) {
            Ok(Some(t)) => t,
            Ok(None) => break, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let body = match protocol::read_body(&mut stream, tag_byte) {
            Ok(b) => b,
            Err(_) => {
                reply(writer, tag::ERROR, b"malformed frame");
                break;
            }
        };
        match tag_byte {
            tag::PUBLISH => match protocol::decode_publish(&body) {
                Ok(readings) => {
                    let deepest = shared.shard_depths().into_iter().max().unwrap_or(0);
                    if deepest >= shared.max_queue as u64 {
                        // Explicit backpressure: refuse the batch rather
                        // than letting the queues grow without bound.
                        shared.metrics.add(Counter::ServeOverloads, 1);
                        shared.flight.record(FlightEventKind::Overloaded, 0, conn_id, deepest);
                        reply(writer, tag::OVERLOADED, &protocol::encode_u64(deepest));
                        continue;
                    }
                    let trace = shared.new_trace();
                    shared.flight.record(
                        FlightEventKind::PublishRouted,
                        trace.map_or(0, |t| t.id),
                        conn_id,
                        readings.len() as u64,
                    );
                    shared.route_batch(readings, trace);
                    // v2 connections learn the batch's trace id.
                    match trace {
                        Some(chain) if conn_version >= 2 => {
                            reply(writer, tag::ACK, &protocol::encode_u64(chain.id))
                        }
                        _ => reply(writer, tag::ACK, &[]),
                    }
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::HELLO => match protocol::decode_u32(&body) {
                Ok(client_version) => {
                    conn_version = client_version.clamp(1, PROTOCOL_VERSION);
                    reply(writer, tag::HELLO_ACK, &protocol::encode_u32(conn_version));
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::METRICS => handle_metrics(shared, conn_id, writer),
            tag::TRACE => handle_trace(shared, conn_id, writer),
            tag::FLIGHT => handle_flight(shared, conn_id, writer),
            tag::SUBSCRIBE => match protocol::decode_subscribe(&body) {
                Ok((spec, resume)) => {
                    let _ = shared.engine_tx.send(EngineMsg::Subscribe {
                        spec,
                        conn: conn_id,
                        trace_v2: conn_version >= 2,
                        resume,
                        writer: writer.clone(),
                    });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::UNSUBSCRIBE => match protocol::decode_u64(&body) {
                Ok(sub_id) => {
                    let _ = shared
                        .engine_tx
                        .send(EngineMsg::Unsubscribe { sub_id, writer: writer.clone() });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::CURRENT => match protocol::decode_u64(&body) {
                Ok(sub_id) => {
                    let _ = shared
                        .engine_tx
                        .send(EngineMsg::Current { sub_id, writer: writer.clone() });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::QUERY => match protocol::decode_subspec(&body) {
                Ok(spec) => {
                    let _ =
                        shared.engine_tx.send(EngineMsg::Query { spec, writer: writer.clone() });
                }
                Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
            },
            tag::DISTRIB => handle_distrib(shared, conn_id, &body, writer),
            tag::BARRIER => {
                shared.flush_shards();
                let _ = shared.engine_tx.send(EngineMsg::Barrier { writer: writer.clone() });
            }
            tag::STATE_HASH => handle_state_hash(shared, conn_id, writer),
            tag::DUMP_ROWS => {
                let _ = shared.engine_tx.send(EngineMsg::DumpRows { writer: writer.clone() });
            }
            tag::STATS => {
                let _ = shared.engine_tx.send(EngineMsg::Stats { writer: writer.clone() });
            }
            tag::SHUTDOWN => {
                reply(writer, tag::ACK, &[]);
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
                break;
            }
            other => {
                reply(writer, tag::ERROR, format!("unknown request tag {other}").as_bytes());
            }
        }
    }
}

/// `DISTRIB`: one-shot count-distribution detail. Decoded on the
/// connection thread, answered by the engine (the reply needs the
/// pipeline-ordered row state).
fn handle_distrib(shared: &Shared, conn_id: u64, body: &[u8], writer: &Sender<Vec<u8>>) {
    shared.metrics.add(Counter::ServeDistribQueries, 1);
    shared.flight.record(FlightEventKind::DistribQuery, 0, conn_id, 0);
    match protocol::decode_subspec(body) {
        Ok(spec) => {
            let _ = shared.engine_tx.send(EngineMsg::Distrib { spec, writer: writer.clone() });
        }
        Err(e) => reply(writer, tag::ERROR, e.to_string().as_bytes()),
    }
}

/// `METRICS`: counters, histograms with exact bucket bounds, per-shard
/// queue depths — answered on the connection thread (a snapshot, not a
/// pipeline-ordered reply, so it never queues behind the engine).
fn handle_metrics(shared: &Shared, conn_id: u64, writer: &Sender<Vec<u8>>) {
    shared.metrics.add(Counter::ServeMetricsQueries, 1);
    shared.flight.record(FlightEventKind::MetricsQuery, 0, conn_id, 0);
    let depths = shared.shard_depths();
    let json = shared.metrics.snapshot_json(&depths, shared.clock.now_ns());
    reply(writer, tag::METRICS_JSON, json.as_bytes());
}

/// `TRACE`: recent completed notification traces plus the slow-request
/// log.
fn handle_trace(shared: &Shared, conn_id: u64, writer: &Sender<Vec<u8>>) {
    shared.metrics.add(Counter::ServeTraceQueries, 1);
    shared.flight.record(FlightEventKind::TraceQuery, 0, conn_id, 0);
    reply(writer, tag::TRACE_JSON, shared.metrics.traces_json().as_bytes());
}

/// `FLIGHT`: dump the flight recorder — the protocol-triggered
/// postmortem (the moral equivalent of `SIGUSR1` on a wire protocol).
fn handle_flight(shared: &Shared, conn_id: u64, writer: &Sender<Vec<u8>>) {
    shared.metrics.add(Counter::ServeFlightDumps, 1);
    shared.flight.record(FlightEventKind::FlightDump, 0, conn_id, 0);
    reply(writer, tag::FLIGHT_JSONL, shared.flight.dump_jsonl().as_bytes());
}

/// `STATE_HASH`: a barrier plus a deterministic digest of the whole
/// pipeline — every shard tracker's canonical checkpoint encoding and
/// the engine's rows + per-subscription answers. The record/replay
/// verifier compares these digests at every recorded barrier.
///
/// Ordering: the flush guarantees every prior publish's deltas are
/// *enqueued* to the engine; the shard hash then reflects all of them;
/// the engine message, FIFO-ordered after those deltas, hashes after
/// they are *applied*.
fn handle_state_hash(shared: &Shared, conn_id: u64, writer: &Sender<Vec<u8>>) {
    shared.metrics.add(Counter::ServeStateHashes, 1);
    shared.flight.record(FlightEventKind::StateHash, 0, conn_id, 0);
    shared.flush_shards();
    let replies: Vec<Receiver<u64>> = {
        let shards = lock_or_recover(&shared.shards);
        shards
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                s.queue_depth.fetch_add(1, Ordering::Relaxed);
                let _ = s.tx.send(ShardMsg::StateHash(tx));
                rx
            })
            .collect()
    };
    let shard_hashes: Vec<u64> = replies
        .into_iter()
        // A crashed (not yet restarted) shard can't answer; 0 is its
        // deterministic sentinel, identical on record and replay.
        .map(|rx| rx.recv_timeout(Duration::from_secs(5)).unwrap_or(0))
        .collect();
    let _ = shared.engine_tx.send(EngineMsg::StateHash { shard_hashes, writer: writer.clone() });
}
