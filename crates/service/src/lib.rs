//! `inflow-service`: a sharded continuous flow-monitoring server over
//! symbolic indoor tracking streams.
//!
//! The batch crates answer "which POIs were most visited?" over a fixed
//! [`ObjectTrackingTable`](inflow_tracking::ObjectTrackingTable). This
//! crate keeps that answer *live* while readings stream in:
//!
//! * **Sharded ingestion** ([`shard`]): readings route by object id to
//!   worker threads, each owning a crash-consistent WAL-backed store and
//!   online tracker, emitting per-object row deltas with an *affected
//!   start* bound.
//! * **Incremental engine** ([`engine`], internal): per-subscription
//!   per-object contribution maps, recomputed only for changed objects
//!   and only when the query time can be affected; flows re-summed
//!   deterministically so the materialized top-k matches a from-scratch
//!   batch run.
//! * **Continuous subscriptions** ([`protocol`], [`client`]): snapshot
//!   or interval top-k with a result-change threshold ε, pushed as
//!   `UPDATE` frames over a length-prefixed, CRC-checked TCP protocol;
//!   plus one-shot queries, row dumps, stats, and a deterministic
//!   pipeline barrier.
//! * **Observability** ([`metrics`]): every stage reports into the
//!   workspace [`Counter`](inflow_obs::Counter)/histogram registry —
//!   queue depths, delta batch sizes, recompute and notification
//!   latencies.
//!
//! Everything is `std` only: `std::net` sockets, `std::thread` workers,
//! `mpsc` channels.

pub mod client;
mod engine;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod resilient;
mod server;
mod shard;
mod sync;

pub use client::{Client, Update, DEFAULT_TIMEOUT};
pub use error::ServiceError;
pub use metrics::ServiceMetrics;
pub use protocol::{hash_ranked, Resume, StateHash, SubKind, SubSpec};
pub use resilient::{BackoffConfig, ResilientClient};
pub use server::{ServeConfig, Server, ServerHandle};
pub use shard::{DeltaBatch, ObjectDelta, ShardConfig};
