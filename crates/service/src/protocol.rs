//! The wire protocol: length-prefixed, CRC-checksummed frames over TCP.
//!
//! Every message reuses the durable-store frame layout
//! ([`inflow_tracking::store::frame`]):
//!
//! ```text
//! tag: u8 | len: u32 LE | payload: [u8; len] | crc32: u32 LE
//! ```
//!
//! with the CRC covering tag, length and payload — the same self-verifying
//! envelope the WAL uses on disk, so a truncated or bit-flipped frame is a
//! typed error on both media. Payload encodings are fixed-width
//! little-endian via the shared [`frame`] codecs (readings are the WAL's
//! 16-byte records, OTT rows the 24-byte snapshot records).
//!
//! Requests receive exactly one reply frame each, in request order.
//! [`tag::UPDATE`] frames are *pushed* asynchronously on a connection that
//! registered a subscription and may interleave with replies; clients
//! demultiplex by tag (see [`crate::Client`]).

use inflow_indoor::PoiId;
use inflow_obs::{Hop, TraceChain};
use inflow_tracking::store::frame::{self, Frame};
use inflow_tracking::{ObjectId, OttRow, RawReading, StoreError};
use std::io::{self, Read, Write};

/// Frame tags. Requests are < 64, replies >= 64.
pub mod tag {
    /// Client → server: a batch of raw readings to ingest.
    pub const PUBLISH: u8 = 1;
    /// Client → server: register a continuous top-k subscription.
    pub const SUBSCRIBE: u8 = 2;
    /// Client → server: drop a subscription by id.
    pub const UNSUBSCRIBE: u8 = 3;
    /// Client → server: one-shot snapshot/interval top-k query.
    pub const QUERY: u8 = 4;
    /// Client → server: flush all shards into the engine, then ack —
    /// after the ack, every previously published reading is reflected.
    pub const BARRIER: u8 = 5;
    /// Client → server: dump every object's current rows (testing /
    /// inspection; the batch-equivalence oracle).
    pub const DUMP_ROWS: u8 = 6;
    /// Client → server: render the server metrics registry.
    pub const STATS: u8 = 7;
    /// Client → server: the subscription's current materialized top-k
    /// (regardless of the ε notification gate).
    pub const CURRENT: u8 = 8;
    /// Client → server: shut the server down.
    pub const SHUTDOWN: u8 = 9;
    /// Client → server: protocol version negotiation; payload is the
    /// client's highest supported version (u32). Servers predating this
    /// tag answer `ERROR`, which clients treat as version 1.
    pub const HELLO: u8 = 10;
    /// Client → server: machine-readable telemetry snapshot (counters,
    /// histograms with exact bucket bounds, shard queue depths).
    pub const METRICS: u8 = 11;
    /// Client → server: recent completed notification traces plus the
    /// slow-request log, as JSON.
    pub const TRACE: u8 = 12;
    /// Client → server: dump the flight recorder (recent pipeline
    /// events) as JSONL — the protocol-triggered postmortem.
    pub const FLIGHT: u8 = 13;
    /// Client → server: barrier + deterministic state digest. The server
    /// flushes every shard, then replies [`HASH`] with the engine digest
    /// and one per-shard tracker digest — the record/replay harness's
    /// per-barrier comparison point.
    pub const STATE_HASH: u8 = 14;
    /// Client → server: one-shot count-distribution query; payload is a
    /// subspec with a `Distrib` kind. Unlike `QUERY` (which answers any
    /// kind with its ranked top-k), this returns the full per-POI
    /// Poisson-binomial detail as [`DISTRIB_JSON`].
    pub const DISTRIB: u8 = 15;

    /// Server → client: request acknowledged.
    pub const ACK: u8 = 64;
    /// Server → client: a ranked top-k result.
    pub const RESULT: u8 = 65;
    /// Server → client (pushed): a subscription's new top-k.
    pub const UPDATE: u8 = 66;
    /// Server → client: the row dump.
    pub const ROWS: u8 = 67;
    /// Server → client: request failed; payload is a UTF-8 message.
    pub const ERROR: u8 = 68;
    /// Server → client: rendered metrics text.
    pub const STATS_TEXT: u8 = 69;
    /// Server → client: subscription registered; payload is its id.
    pub const SUB_ACK: u8 = 70;
    /// Server → client: negotiated protocol version (u32).
    pub const HELLO_ACK: u8 = 71;
    /// Server → client: telemetry snapshot; payload is a UTF-8 JSON
    /// object (see `ServiceMetrics::snapshot_json`).
    pub const METRICS_JSON: u8 = 72;
    /// Server → client: trace snapshot; payload is a UTF-8 JSON object.
    pub const TRACE_JSON: u8 = 73;
    /// Server → client: flight-recorder dump; payload is UTF-8 JSONL.
    pub const FLIGHT_JSONL: u8 = 74;
    /// Server → client: barrier state digest
    /// (`engine u64 | n u32 | n × shard u64`).
    pub const HASH: u8 = 75;
    /// Server → client: request refused under overload; payload is the
    /// deepest shard queue depth (u64). Backpressure, not failure — the
    /// client should back off and retry.
    pub const OVERLOADED: u8 = 76;
    /// Server → client: full count-distribution detail; payload is a
    /// UTF-8 JSON object (per-POI pmf, tail mass, `P(count ≥ kq)`,
    /// expectation, median).
    pub const DISTRIB_JSON: u8 = 77;
}

/// Highest protocol version this build speaks.
///
/// * **v1** — the PR 4/5 wire format: no `HELLO`, `UPDATE` carries
///   `sub_id | seq | ranked` only.
/// * **v2** — adds `HELLO`/`METRICS`/`TRACE`/`FLIGHT` and an optional
///   trace-chain section trailing the `UPDATE` payload. The section is
///   only sent to connections that negotiated v2, so v1 clients keep
///   decoding byte-identical frames.
/// * **v3** — adds `STATE_HASH`/`HASH` (per-barrier state digests for
///   record/replay), `OVERLOADED` backpressure replies, and an optional
///   resume section trailing the `SUBSCRIBE` payload
///   (`last_seq u64 | last_hash u64`) for sequence-numbered
///   reconnection. All additions are new tags or optional trailing
///   sections, so v1/v2 frames stay byte-identical.
/// * **v4** — adds the `Distrib`/`LongVisit` subscription kinds (wire
///   kind bytes 2/3 with kind-specific parameter sections) and the
///   `DISTRIB`/`DISTRIB_JSON` one-shot distribution-detail verb. Kinds
///   0/1 keep their exact v1 byte layout, so older clients and recorded
///   replay logs parse unchanged.
pub const PROTOCOL_VERSION: u32 = 4;

/// Upper bound a decoded subscription `k` (top-k size) is clamped to.
/// `k` is the one wire-derived quantity that sizes work without sizing
/// payload, so the decoder bounds it instead of trusting the peer; no
/// legitimate query asks for more ranked POIs than this.
pub const MAX_SUB_K: u32 = 4096;

/// The time parameter of a subscription or one-shot query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubKind {
    /// Continuous snapshot top-k at time `t`.
    Snapshot { t: f64 },
    /// Continuous interval top-k over `[ts, te]`.
    Interval { ts: f64, te: f64 },
    /// Continuous count-distribution top-k at time `t`: POIs ranked by
    /// `P(count ≥ kq)` under the Poisson-binomial distribution of the
    /// snapshot count, convolved with tail bound `kmax` (v4).
    Distrib { t: f64, kq: u32, kmax: u32 },
    /// Continuous long-visit top-k over `[ts, te]`: POIs ranked by the
    /// number of objects whose expected dwell reaches `d` (v4).
    LongVisit { ts: f64, te: f64, d: f64 },
}

impl SubKind {
    /// The largest time the query depends on; row changes strictly after
    /// it can still affect the answer (successor records shape the
    /// uncertainty region), changes strictly before its matching rows
    /// cannot un-happen.
    pub fn end_time(&self) -> f64 {
        match *self {
            SubKind::Snapshot { t } => t,
            SubKind::Interval { te, .. } => te,
            SubKind::Distrib { t, .. } => t,
            SubKind::LongVisit { te, .. } => te,
        }
    }
}

/// A subscription / one-shot query specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SubSpec {
    pub kind: SubKind,
    /// Result size.
    pub k: usize,
    /// Result-change threshold: an update is pushed only when the top-k
    /// membership changes or some member's flow moved by more than ε
    /// since the last pushed result. `0.0` pushes every change.
    pub epsilon: f64,
    /// Query POI set; empty means *all* POIs of the floor plan.
    pub pois: Vec<PoiId>,
}

/// A `SUBSCRIBE` resume section: re-registers a subscription after a
/// reconnect without duplicating or losing updates. `last_seq` is the
/// highest sequence number the client received for the original
/// subscription; `last_hash` is [`hash_ranked`] of that update's result.
/// The server continues numbering from `last_seq`, and suppresses the
/// initial push when the materialized result still hashes to
/// `last_hash` (the client already has it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resume {
    pub last_seq: u64,
    pub last_hash: u64,
}

/// Order-sensitive 64-bit digest of a ranked result (FNV-1a over each
/// entry's POI id and the flow's exact bit pattern). Used by the resume
/// protocol and the replay harness's answer digests; equality means the
/// two results are bitwise identical.
pub fn hash_ranked(ranked: &[(PoiId, f64)]) -> u64 {
    let mut bytes = Vec::with_capacity(ranked.len() * 12);
    for &(p, f) in ranked {
        bytes.extend_from_slice(&p.0.to_le_bytes());
        bytes.extend_from_slice(&f.to_bits().to_le_bytes());
    }
    frame::fnv1a(&bytes)
}

/// Writes one frame to a stream.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(9 + payload.len());
    frame::write_frame(&mut buf, tag, payload);
    w.write_all(&buf)
}

fn bad(reason: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.into())
}

/// Reads the next frame's tag byte. `Ok(None)` on clean EOF at a frame
/// boundary; timeouts surface as `WouldBlock`/`TimedOut` errors with no
/// bytes consumed, so the caller can poll a shutdown flag and retry.
pub fn read_tag(r: &mut impl Read) -> io::Result<Option<u8>> {
    let mut b = [0u8; 1];
    match r.read(&mut b) {
        Ok(0) => Ok(None),
        Ok(_) => {
            let [byte] = b;
            Ok(Some(byte))
        }
        Err(e) => Err(e),
    }
}

/// Reads the remainder of a frame whose tag was already consumed,
/// verifying length bound and checksum. Raw length/CRC parsing lives in
/// the shared [`frame`] module — the single place allowed to touch wire
/// bytes directly.
pub fn read_body(r: &mut impl Read, tag: u8) -> io::Result<Vec<u8>> {
    frame::read_body_from(r, tag)
}

/// Reads one whole frame; `Ok(None)` on clean EOF.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    match read_tag(r)? {
        None => Ok(None),
        Some(tag) => Ok(Some((tag, read_body(r, tag)?))),
    }
}

/// Wraps a payload slice so the shared [`frame::Cursor`] codecs apply.
fn cursor(payload: &[u8]) -> frame::Cursor<'_> {
    // Offset 0: wire frames don't carry a file position.
    frame::Cursor::new(&Frame { offset: 0, tag: 0, payload })
}

fn decode_err(e: StoreError) -> io::Error {
    bad(format!("malformed payload: {e}"))
}

// ---- payload codecs ------------------------------------------------------

/// `PUBLISH`: `count u32 | count × reading (16 B)`.
pub fn encode_publish(readings: &[RawReading]) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + readings.len() * 16);
    b.extend_from_slice(&(readings.len() as u32).to_le_bytes());
    for r in readings {
        b.extend_from_slice(&frame::encode_reading(r));
    }
    b
}

pub fn decode_publish(payload: &[u8]) -> io::Result<Vec<RawReading>> {
    let mut c = cursor(payload);
    let n = c.count("reading count", 16).map_err(decode_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let object = ObjectId(c.u32("object").map_err(decode_err)?);
        let device = inflow_indoor::DeviceId(c.u32("device").map_err(decode_err)?);
        let t = c.finite_f64("t").map_err(decode_err)?;
        out.push(RawReading { object, device, t });
    }
    c.done().map_err(decode_err)?;
    Ok(out)
}

/// `SUBSCRIBE` / `QUERY`:
/// `kind u8 | kind params | k u32 | epsilon f64 | n u32 | n × poi u32`.
///
/// Kind parameter sections (everything after them — the common trailer —
/// is shared):
///
/// * kind 0, `Snapshot`: `t f64 | 0.0 f64` (byte-identical to v1);
/// * kind 1, `Interval`: `ts f64 | te f64` (byte-identical to v1);
/// * kind 2, `Distrib` (v4): `t f64 | kq u32 | kmax u32`;
/// * kind 3, `LongVisit` (v4): `ts f64 | te f64 | d f64`.
pub fn encode_subspec(spec: &SubSpec) -> Vec<u8> {
    let mut b = Vec::with_capacity(41 + spec.pois.len() * 4);
    match spec.kind {
        SubKind::Snapshot { t } => {
            b.push(0u8);
            b.extend_from_slice(&t.to_le_bytes());
            b.extend_from_slice(&0.0f64.to_le_bytes());
        }
        SubKind::Interval { ts, te } => {
            b.push(1u8);
            b.extend_from_slice(&ts.to_le_bytes());
            b.extend_from_slice(&te.to_le_bytes());
        }
        SubKind::Distrib { t, kq, kmax } => {
            b.push(2u8);
            b.extend_from_slice(&t.to_le_bytes());
            b.extend_from_slice(&kq.to_le_bytes());
            b.extend_from_slice(&kmax.to_le_bytes());
        }
        SubKind::LongVisit { ts, te, d } => {
            b.push(3u8);
            b.extend_from_slice(&ts.to_le_bytes());
            b.extend_from_slice(&te.to_le_bytes());
            b.extend_from_slice(&d.to_le_bytes());
        }
    }
    b.extend_from_slice(&(spec.k as u32).to_le_bytes());
    b.extend_from_slice(&spec.epsilon.to_le_bytes());
    b.extend_from_slice(&(spec.pois.len() as u32).to_le_bytes());
    for p in &spec.pois {
        b.extend_from_slice(&p.0.to_le_bytes());
    }
    b
}

pub fn decode_subspec(payload: &[u8]) -> io::Result<SubSpec> {
    let (spec, resume) = decode_subscribe(payload)?;
    if resume.is_some() {
        return Err(bad("unexpected resume section"));
    }
    Ok(spec)
}

/// `SUBSCRIBE` (v3): the subspec payload followed by an optional resume
/// section `last_seq u64 | last_hash u64`. Absent section decodes as
/// `None`, so v1/v2 frames parse unchanged.
pub fn encode_subscribe(spec: &SubSpec, resume: Option<&Resume>) -> Vec<u8> {
    let mut b = encode_subspec(spec);
    if let Some(r) = resume {
        b.extend_from_slice(&r.last_seq.to_le_bytes());
        b.extend_from_slice(&r.last_hash.to_le_bytes());
    }
    b
}

pub fn decode_subscribe(payload: &[u8]) -> io::Result<(SubSpec, Option<Resume>)> {
    let mut c = cursor(payload);
    let kind_byte = c.u8("kind").map_err(decode_err)?;
    let kind = match kind_byte {
        0 => {
            let t = c.finite_f64("t").map_err(decode_err)?;
            c.f64("pad").map_err(decode_err)?;
            SubKind::Snapshot { t }
        }
        1 => {
            let ts = c.finite_f64("ts").map_err(decode_err)?;
            let te = c.f64("te").map_err(decode_err)?;
            if !te.is_finite() || te < ts {
                return Err(bad(format!("invalid interval [{ts}, {te}]")));
            }
            SubKind::Interval { ts, te }
        }
        2 => {
            let t = c.finite_f64("t").map_err(decode_err)?;
            let kq = c.u32("kq").map_err(decode_err)?;
            let kmax = c.u32("kmax").map_err(decode_err)?;
            if kmax == 0 {
                return Err(bad("kmax must be at least 1"));
            }
            SubKind::Distrib { t, kq, kmax }
        }
        3 => {
            let ts = c.finite_f64("ts").map_err(decode_err)?;
            let te = c.f64("te").map_err(decode_err)?;
            if !te.is_finite() || te < ts {
                return Err(bad(format!("invalid interval [{ts}, {te}]")));
            }
            let d = c.f64("d").map_err(decode_err)?;
            if !d.is_finite() || d < 0.0 {
                return Err(bad(format!("invalid dwell threshold {d}")));
            }
            SubKind::LongVisit { ts, te, d }
        }
        other => return Err(bad(format!("unknown query kind {other}"))),
    };
    let k = c.u32("k").map_err(decode_err)?.min(MAX_SUB_K) as usize;
    let epsilon = c.f64("epsilon").map_err(decode_err)?;
    let n = c.count("poi count", 4).map_err(decode_err)?;
    let mut pois = Vec::with_capacity(n);
    for _ in 0..n {
        pois.push(PoiId(c.u32("poi").map_err(decode_err)?));
    }
    let resume = if c.is_empty() {
        None
    } else {
        let last_seq = c.u64("resume last_seq").map_err(decode_err)?;
        let last_hash = c.u64("resume last_hash").map_err(decode_err)?;
        Some(Resume { last_seq, last_hash })
    };
    c.done().map_err(decode_err)?;
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(bad(format!("invalid epsilon {epsilon}")));
    }
    Ok((SubSpec { kind, k, epsilon, pois }, resume))
}

/// `RESULT`: `count u32 | count × (poi u32 | flow f64)`.
pub fn encode_ranked(ranked: &[(PoiId, f64)]) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + ranked.len() * 12);
    b.extend_from_slice(&(ranked.len() as u32).to_le_bytes());
    for &(p, f) in ranked {
        b.extend_from_slice(&p.0.to_le_bytes());
        b.extend_from_slice(&f.to_le_bytes());
    }
    b
}

pub fn decode_ranked(payload: &[u8]) -> io::Result<Vec<(PoiId, f64)>> {
    let mut c = cursor(payload);
    let n = c.count("entry count", 12).map_err(decode_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let p = PoiId(c.u32("poi").map_err(decode_err)?);
        let f = c.finite_f64("flow").map_err(decode_err)?;
        out.push((p, f));
    }
    c.done().map_err(decode_err)?;
    Ok(out)
}

/// `UPDATE` (v1): `sub_id u64 | seq u64 | ranked`. Byte-identical to
/// the pre-tracing wire format.
pub fn encode_update(sub_id: u64, seq: u64, ranked: &[(PoiId, f64)]) -> Vec<u8> {
    encode_update_traced(sub_id, seq, ranked, None)
}

/// `UPDATE` (v2): the v1 payload followed, when `trace` is given, by
/// `trace_id u64 | hop_count u8 | hop_count × (hop code u8 | at_ns u64)`.
/// Only sent to connections that negotiated protocol v2.
pub fn encode_update_traced(
    sub_id: u64,
    seq: u64,
    ranked: &[(PoiId, f64)],
    trace: Option<&TraceChain>,
) -> Vec<u8> {
    let mut b = Vec::with_capacity(20 + ranked.len() * 12 + trace.map_or(0, |_| 9 + 7 * 9));
    b.extend_from_slice(&sub_id.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(&encode_ranked(ranked));
    if let Some(chain) = trace {
        b.extend_from_slice(&chain.id.to_le_bytes());
        b.push(chain.hop_count() as u8);
        for (hop, at_ns) in chain.hops() {
            b.push(hop.code());
            b.extend_from_slice(&at_ns.to_le_bytes());
        }
    }
    b
}

/// Decoded `UPDATE` payload: `(sub_id, seq, ranked, trace)`. `trace` is
/// `None` for v1 frames.
pub type UpdateParts = (u64, u64, Vec<(PoiId, f64)>, Option<TraceChain>);

pub fn decode_update(payload: &[u8]) -> io::Result<UpdateParts> {
    let mut c = cursor(payload);
    let sub_id = c.u64("sub id").map_err(decode_err)?;
    let seq = c.u64("seq").map_err(decode_err)?;
    let n = c.count("entry count", 12).map_err(decode_err)?;
    let mut ranked = Vec::with_capacity(n);
    for _ in 0..n {
        let p = PoiId(c.u32("poi").map_err(decode_err)?);
        let f = c.finite_f64("flow").map_err(decode_err)?;
        ranked.push((p, f));
    }
    let trace = if c.is_empty() {
        None
    } else {
        let id = c.u64("trace id").map_err(decode_err)?;
        let hops = c.u8("hop count").map_err(decode_err)?;
        let mut chain = TraceChain::new(id);
        for _ in 0..hops {
            let code = c.u8("hop code").map_err(decode_err)?;
            let at_ns = c.u64("hop at_ns").map_err(decode_err)?;
            // Unknown codes (a newer server) are skipped, not fatal.
            if let Some(hop) = Hop::from_code(code) {
                chain.stamp(hop, at_ns);
            }
        }
        Some(chain)
    };
    c.done().map_err(decode_err)?;
    Ok((sub_id, seq, ranked, trace))
}

/// `ROWS`: `count u32 | count × row (24 B)`.
pub fn encode_rows(rows: &[OttRow]) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + rows.len() * 24);
    b.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for r in rows {
        b.extend_from_slice(&frame::encode_row(r));
    }
    b
}

pub fn decode_rows(payload: &[u8]) -> io::Result<Vec<OttRow>> {
    let mut c = cursor(payload);
    let n = c.count("row count", 24).map_err(decode_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(OttRow {
            object: ObjectId(c.u32("object").map_err(decode_err)?),
            device: inflow_indoor::DeviceId(c.u32("device").map_err(decode_err)?),
            ts: c.finite_f64("ts").map_err(decode_err)?,
            te: c.finite_f64("te").map_err(decode_err)?,
        });
    }
    c.done().map_err(decode_err)?;
    Ok(out)
}

/// `SUB_ACK` / `UNSUBSCRIBE` / `CURRENT`: one u64 id.
pub fn encode_u64(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

pub fn decode_u64(payload: &[u8]) -> io::Result<u64> {
    let mut c = cursor(payload);
    let v = c.u64("id").map_err(decode_err)?;
    c.done().map_err(decode_err)?;
    Ok(v)
}

/// A barrier state digest: the engine's combined digest (rows + every
/// subscription's materialized answer) plus one tracker digest per
/// shard, in shard order. A crashed, not-yet-restarted shard reports 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateHash {
    pub engine: u64,
    pub shards: Vec<u64>,
}

/// `HASH`: `engine u64 | n u32 | n × shard u64`.
pub fn encode_state_hash(h: &StateHash) -> Vec<u8> {
    let mut b = Vec::with_capacity(12 + h.shards.len() * 8);
    b.extend_from_slice(&h.engine.to_le_bytes());
    b.extend_from_slice(&(h.shards.len() as u32).to_le_bytes());
    for &s in &h.shards {
        b.extend_from_slice(&s.to_le_bytes());
    }
    b
}

pub fn decode_state_hash(payload: &[u8]) -> io::Result<StateHash> {
    let mut c = cursor(payload);
    let engine = c.u64("engine hash").map_err(decode_err)?;
    let n = c.count("shard count", 8).map_err(decode_err)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(c.u64("shard hash").map_err(decode_err)?);
    }
    c.done().map_err(decode_err)?;
    Ok(StateHash { engine, shards })
}

/// `HELLO` / `HELLO_ACK`: one u32 protocol version.
pub fn encode_u32(v: u32) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

pub fn decode_u32(payload: &[u8]) -> io::Result<u32> {
    let mut c = cursor(payload);
    let v = c.u32("version").map_err(decode_err)?;
    c.done().map_err(decode_err)?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let spec = SubSpec {
            kind: SubKind::Interval { ts: 10.0, te: 90.0 },
            k: 5,
            epsilon: 0.25,
            pois: vec![PoiId(3), PoiId(1)],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::SUBSCRIBE, &encode_subspec(&spec)).unwrap();
        write_frame(&mut buf, tag::BARRIER, &[]).unwrap();
        let mut r = buf.as_slice();
        let (t1, p1) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(t1, tag::SUBSCRIBE);
        assert_eq!(decode_subspec(&p1).unwrap(), spec);
        let (t2, p2) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((t2, p2.len()), (tag::BARRIER, 0));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::PUBLISH, &encode_publish(&[])).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn publish_and_rows_round_trip() {
        let readings = vec![
            RawReading { object: ObjectId(7), device: inflow_indoor::DeviceId(2), t: 1.5 },
            RawReading { object: ObjectId(1), device: inflow_indoor::DeviceId(0), t: 2.25 },
        ];
        assert_eq!(decode_publish(&encode_publish(&readings)).unwrap(), readings);
        let rows = vec![OttRow {
            object: ObjectId(7),
            device: inflow_indoor::DeviceId(2),
            ts: 1.5,
            te: 9.0,
        }];
        assert_eq!(decode_rows(&encode_rows(&rows)).unwrap(), rows);
        let ranked = vec![(PoiId(4), 1.25), (PoiId(0), 0.5)];
        let up = encode_update(9, 3, &ranked);
        assert_eq!(decode_update(&up).unwrap(), (9, 3, ranked, None));
    }

    #[test]
    fn traced_update_round_trips_and_v1_stays_byte_identical() {
        let ranked = vec![(PoiId(4), 1.25)];
        let mut chain = TraceChain::new(42);
        for (i, &h) in Hop::ALL.iter().enumerate() {
            chain.stamp(h, 1000 + i as u64);
        }
        let v2 = encode_update_traced(9, 3, &ranked, Some(&chain));
        let (sub, seq, got_ranked, got_trace) = decode_update(&v2).unwrap();
        assert_eq!((sub, seq), (9, 3));
        assert_eq!(got_ranked, ranked);
        assert_eq!(got_trace, Some(chain));
        // The untraced encoding is exactly the old layout: the traced
        // payload minus its trailing section.
        let v1 = encode_update(9, 3, &ranked);
        assert_eq!(v1.as_slice(), &v2[..v1.len()]);
    }

    #[test]
    fn hello_version_round_trips() {
        assert_eq!(decode_u32(&encode_u32(PROTOCOL_VERSION)).unwrap(), 4);
        assert!(decode_u32(&[1, 2]).is_err());
    }

    #[test]
    fn v4_kinds_round_trip() {
        for kind in [
            SubKind::Distrib { t: 120.0, kq: 3, kmax: 16 },
            SubKind::LongVisit { ts: 10.0, te: 90.0, d: 12.5 },
        ] {
            let spec =
                SubSpec { kind, k: 4, epsilon: 0.125, pois: vec![PoiId(5), PoiId(0), PoiId(2)] };
            assert_eq!(decode_subspec(&encode_subspec(&spec)).unwrap(), spec);
            let resume = Resume { last_seq: 9, last_hash: 0xF00D };
            let b = encode_subscribe(&spec, Some(&resume));
            assert_eq!(decode_subscribe(&b).unwrap(), (spec.clone(), Some(resume)));
        }
        // Invalid v4 parameters are typed errors, not misparses.
        let mut bad_kmax = encode_subspec(&SubSpec {
            kind: SubKind::Distrib { t: 1.0, kq: 1, kmax: 1 },
            k: 1,
            epsilon: 0.0,
            pois: vec![],
        });
        // kmax u32 sits at offset 1 (kind) + 8 (t) + 4 (kq).
        bad_kmax[13..17].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_subspec(&bad_kmax).is_err());
        let bad_d = SubSpec {
            kind: SubKind::LongVisit { ts: 0.0, te: 1.0, d: -1.0 },
            k: 1,
            epsilon: 0.0,
            pois: vec![],
        };
        assert!(decode_subspec(&encode_subspec(&bad_d)).is_err());
    }

    #[test]
    fn v1_kinds_keep_their_exact_byte_layout() {
        // The pre-v4 encoder wrote `kind u8 | t/ts f64 | te f64 | trailer`
        // for every kind. Kinds 0/1 must still produce those exact bytes
        // so recorded replay logs and old clients stay compatible.
        let spec = SubSpec {
            kind: SubKind::Interval { ts: 10.0, te: 90.0 },
            k: 5,
            epsilon: 0.25,
            pois: vec![PoiId(3)],
        };
        let mut legacy = vec![1u8];
        legacy.extend_from_slice(&10.0f64.to_le_bytes());
        legacy.extend_from_slice(&90.0f64.to_le_bytes());
        legacy.extend_from_slice(&5u32.to_le_bytes());
        legacy.extend_from_slice(&0.25f64.to_le_bytes());
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.extend_from_slice(&3u32.to_le_bytes());
        assert_eq!(encode_subspec(&spec), legacy);

        let snap =
            SubSpec { kind: SubKind::Snapshot { t: 42.0 }, k: 1, epsilon: 0.0, pois: vec![] };
        let mut legacy = vec![0u8];
        legacy.extend_from_slice(&42.0f64.to_le_bytes());
        legacy.extend_from_slice(&0.0f64.to_le_bytes());
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.extend_from_slice(&0.0f64.to_le_bytes());
        legacy.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(encode_subspec(&snap), legacy);
    }

    #[test]
    fn subscribe_resume_section_round_trips_and_plain_stays_identical() {
        let spec = SubSpec {
            kind: SubKind::Snapshot { t: 42.0 },
            k: 3,
            epsilon: 0.5,
            pois: vec![PoiId(2)],
        };
        // No resume: byte-identical to the v1/v2 encoding.
        assert_eq!(encode_subscribe(&spec, None), encode_subspec(&spec));
        assert_eq!(decode_subscribe(&encode_subspec(&spec)).unwrap(), (spec.clone(), None));

        let resume = Resume { last_seq: 17, last_hash: 0xDEAD_BEEF };
        let b = encode_subscribe(&spec, Some(&resume));
        assert_eq!(decode_subscribe(&b).unwrap(), (spec.clone(), Some(resume)));
        // The strict decoder refuses a resume section (QUERY payloads).
        assert!(decode_subspec(&b).is_err());
        // A truncated resume section is rejected, not misparsed.
        let mut torn = b.clone();
        torn.pop();
        assert!(decode_subscribe(&torn).is_err());
    }

    #[test]
    fn state_hash_round_trips() {
        let h = StateHash { engine: 7, shards: vec![1, 2, 3] };
        assert_eq!(decode_state_hash(&encode_state_hash(&h)).unwrap(), h);
        assert!(decode_state_hash(&[0u8; 3]).is_err());
    }

    #[test]
    fn hash_ranked_is_order_and_bit_sensitive() {
        let a = vec![(PoiId(1), 0.5), (PoiId(2), 0.25)];
        let mut b = a.clone();
        b.swap(0, 1);
        assert_ne!(hash_ranked(&a), hash_ranked(&b));
        let mut c = a.clone();
        c[0].1 = 0.5 + f64::EPSILON;
        assert_ne!(hash_ranked(&a), hash_ranked(&c));
        assert_eq!(hash_ranked(&a), hash_ranked(&a.clone()));
    }

    #[test]
    fn truncated_trace_section_is_rejected() {
        let ranked = vec![(PoiId(1), 0.5)];
        let mut chain = TraceChain::new(7);
        chain.stamp(Hop::Router, 10);
        let mut b = encode_update_traced(1, 1, &ranked, Some(&chain));
        b.pop();
        assert!(decode_update(&b).is_err());
    }
}
