//! A self-healing wrapper around [`Client`].
//!
//! The plain client reports a typed error and leaves recovery to the
//! caller. [`ResilientClient`] owns the recovery policy instead: on any
//! connection-class failure (timeout, reset, server restart) it
//! reconnects with capped exponential backoff plus deterministic
//! jitter, re-issues `HELLO`, and re-subscribes every registered
//! subscription with a [`Resume`] point — the last sequence number and
//! top-k digest it saw — so the resumed stream carries *exactly* the
//! updates a never-disconnected client would have received: no
//! duplicates (the server suppresses the re-initial push when the
//! answer is unchanged) and no gaps (a changed answer arrives as
//! `last_seq + 1`).
//!
//! Subscriptions are addressed by a stable client-side id: the server
//! assigns a fresh internal id on every (re)subscribe, and the wrapper
//! remaps pushed updates back, so callers never observe the churn.
//!
//! [`ServiceError::Overloaded`] — explicit backpressure — is retried
//! with the same backoff schedule *without* reconnecting: the server is
//! healthy, just refusing work.

use crate::client::{Client, Update, DEFAULT_TIMEOUT};
use crate::error::ServiceError;
use crate::protocol::{hash_ranked, Resume, SubSpec};
use inflow_indoor::PoiId;
use inflow_tracking::RawReading;
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::time::Duration;

/// Reconnect/retry policy. Deterministic given `seed`: the jitter comes
/// from a seeded xorshift, so chaos tests replay identically.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// First retry delay.
    pub base_ms: u64,
    /// Delay ceiling (the cap in "capped exponential").
    pub cap_ms: u64,
    /// Attempts before giving up and surfacing the underlying error.
    pub max_retries: u32,
    /// Jitter seed; same seed → same delay schedule.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig { base_ms: 10, cap_ms: 2_000, max_retries: 20, seed: 0x5eed }
    }
}

/// One registered subscription's client-side record.
struct SubState {
    spec: SubSpec,
    /// The server's current id for it (changes on every resubscribe).
    server_id: u64,
    /// Sequence number of the last update surfaced to the caller.
    last_seq: u64,
    /// Digest of that update's ranked answer (the resume handshake's
    /// duplicate-suppression key).
    last_hash: u64,
}

pub struct ResilientClient {
    addr: SocketAddr,
    timeout: Option<Duration>,
    backoff: BackoffConfig,
    /// xorshift64 state for jitter.
    rng: u64,
    inner: Client,
    /// Stable external id → subscription record.
    subs: HashMap<u64, SubState>,
    /// Current server id → external id (rebuilt on resubscribe).
    by_server: HashMap<u64, u64>,
    next_ext: u64,
    /// Deduplicated, external-id updates awaiting the caller.
    pending: VecDeque<Update>,
    reconnects: u64,
}

impl ResilientClient {
    pub fn connect(addr: SocketAddr) -> Result<ResilientClient, ServiceError> {
        ResilientClient::connect_with(addr, Some(DEFAULT_TIMEOUT), BackoffConfig::default())
    }

    pub fn connect_with(
        addr: SocketAddr,
        timeout: Option<Duration>,
        backoff: BackoffConfig,
    ) -> Result<ResilientClient, ServiceError> {
        let inner = Client::connect_with(addr, timeout)?;
        let rng = backoff.seed | 1; // xorshift must not start at 0
        Ok(ResilientClient {
            addr,
            timeout,
            backoff,
            rng,
            inner,
            subs: HashMap::new(),
            by_server: HashMap::new(),
            next_ext: 1,
            pending: VecDeque::new(),
            reconnects: 0,
        })
    }

    /// How many times the wrapper has had to reconnect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn next_jitter(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Capped exponential delay for retry `attempt` (0-based), with
    /// up-to-50% deterministic jitter.
    fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self.backoff.base_ms.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.backoff.cap_ms).max(1);
        let jitter = self.next_jitter() % (capped / 2 + 1);
        Duration::from_millis(capped + jitter)
    }

    /// Re-establishes the connection and the whole subscription set.
    ///
    /// Order matters: the barrier first, so a restarted server has
    /// finished applying its WAL-recovery deltas before the resumed
    /// subscriptions materialize their initial answers (the shard flush
    /// queues behind recovery re-emission, and the engine bounce queues
    /// behind the re-emitted deltas).
    fn reconnect(&mut self) -> Result<(), ServiceError> {
        let mut last_err = ServiceError::Closed;
        for attempt in 0..self.backoff.max_retries {
            std::thread::sleep(self.delay(attempt));
            let mut client = match Client::connect_with(self.addr, self.timeout) {
                Ok(c) => c,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match Self::resume_all(&mut client, &mut self.subs, &mut self.by_server) {
                Ok(()) => {
                    self.inner = client;
                    self.reconnects += 1;
                    self.drain_inner();
                    return Ok(());
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn resume_all(
        client: &mut Client,
        subs: &mut HashMap<u64, SubState>,
        by_server: &mut HashMap<u64, u64>,
    ) -> Result<(), ServiceError> {
        client.barrier()?;
        by_server.clear();
        let mut exts: Vec<u64> = subs.keys().copied().collect();
        exts.sort_unstable();
        for ext in exts {
            let Some(state) = subs.get_mut(&ext) else { continue };
            let resume = Resume { last_seq: state.last_seq, last_hash: state.last_hash };
            let server_id = client.subscribe_resume(&state.spec, &resume)?;
            state.server_id = server_id;
            by_server.insert(server_id, ext);
        }
        Ok(())
    }

    /// Moves the inner client's buffered updates into the external
    /// queue: remap server ids, drop stale/duplicate sequence numbers,
    /// advance each subscription's resume point.
    fn drain_inner(&mut self) {
        for mut u in self.inner.take_updates() {
            let Some(&ext) = self.by_server.get(&u.sub_id) else { continue };
            let Some(state) = self.subs.get_mut(&ext) else { continue };
            if u.seq <= state.last_seq {
                continue; // replayed duplicate
            }
            state.last_seq = u.seq;
            state.last_hash = hash_ranked(&u.ranked);
            u.sub_id = ext;
            self.pending.push_back(u);
        }
    }

    /// Runs one operation, healing the connection (and retrying) on
    /// connection-class errors, backing off and retrying in place on
    /// `Overloaded`. Other errors surface immediately.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let mut attempt: u32 = 0;
        loop {
            match op(&mut self.inner) {
                Ok(v) => {
                    self.drain_inner();
                    return Ok(v);
                }
                Err(e) if e.is_connection_error() => {
                    self.reconnect()?;
                }
                Err(ServiceError::Overloaded { depth }) => {
                    if attempt >= self.backoff.max_retries {
                        return Err(ServiceError::Overloaded { depth });
                    }
                    let d = self.delay(attempt);
                    std::thread::sleep(d);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Publishes a batch, transparently reconnecting or backing off as
    /// needed.
    ///
    /// Note the at-least-once caveat every reconnecting publisher has:
    /// if the connection dies *after* the server routed the batch but
    /// before the ack arrived, the retry re-publishes it. The tracker's
    /// duplicate-reading handling makes identical re-publishes
    /// idempotent at the stream layer.
    pub fn publish(&mut self, readings: &[RawReading]) -> Result<Option<u64>, ServiceError> {
        self.with_retry(|c| c.publish(readings))
    }

    /// Registers a subscription under a stable client-side id (returned)
    /// that survives reconnects.
    pub fn subscribe(&mut self, spec: &SubSpec) -> Result<u64, ServiceError> {
        let spec_clone = spec.clone();
        let server_id = self.with_retry(|c| c.subscribe(&spec_clone))?;
        let ext = self.next_ext;
        self.next_ext += 1;
        self.subs
            .insert(ext, SubState { spec: spec.clone(), server_id, last_seq: 0, last_hash: 0 });
        self.by_server.insert(server_id, ext);
        // The initial update (seq 1) may already be buffered; drain it
        // through the dedup path now that the mapping exists.
        self.drain_inner();
        Ok(ext)
    }

    pub fn unsubscribe(&mut self, ext: u64) -> Result<(), ServiceError> {
        let Some(state) = self.subs.remove(&ext) else {
            return Err(ServiceError::Protocol(format!("unknown subscription {ext}")));
        };
        self.by_server.remove(&state.server_id);
        let server_id = state.server_id;
        self.with_retry(|c| c.unsubscribe(server_id))
    }

    /// Full pipeline sync (see [`Client::barrier`]), surviving restarts.
    pub fn barrier(&mut self) -> Result<(), ServiceError> {
        self.with_retry(|c| c.barrier())
    }

    /// One-shot query, surviving restarts.
    pub fn query(&mut self, spec: &SubSpec) -> Result<Vec<(PoiId, f64)>, ServiceError> {
        let spec = spec.clone();
        self.with_retry(|c| c.query(&spec))
    }

    /// The subscription's current materialized top-k, by external id.
    pub fn current(&mut self, ext: u64) -> Result<Vec<(PoiId, f64)>, ServiceError> {
        let server_id = self
            .subs
            .get(&ext)
            .map(|s| s.server_id)
            .ok_or_else(|| ServiceError::Protocol(format!("unknown subscription {ext}")))?;
        // The server id may change under a reconnect inside the retry
        // loop; re-resolve on each attempt.
        let mut attempt_id = server_id;
        loop {
            let r = self.with_retry(|c| c.current(attempt_id));
            match r {
                Err(ServiceError::Remote(_)) => {
                    let now =
                        self.subs.get(&ext).map(|s| s.server_id).ok_or(ServiceError::Closed)?;
                    if now == attempt_id {
                        return r;
                    }
                    attempt_id = now;
                }
                other => return other,
            }
        }
    }

    /// Drains every deduplicated update, in arrival order, with
    /// `sub_id` rewritten to the stable external id.
    pub fn take_updates(&mut self) -> Vec<Update> {
        self.drain_inner();
        self.pending.drain(..).collect()
    }
}
