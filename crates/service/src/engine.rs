//! The incremental flow engine.
//!
//! One thread owns the materialized query state: every object's current
//! rows (from shard deltas) and, per subscription, a map of per-object
//! flow contributions. When a delta arrives, only the changed object's
//! contribution is recomputed — via the *same* per-object primitive the
//! batch iterative algorithms use ([`inflow_core::object_snapshot_flows`]
//! / [`inflow_core::object_interval_flows`]) — so the maintained result
//! provably tracks a from-scratch batch computation over the same rows.
//!
//! Two consequences of that design are load-bearing:
//!
//! * **Skip soundness.** A subscription whose query end time `t_q`
//!   satisfies `t_q < delta.affected_start` is skipped: rows before the
//!   affected start are unchanged, and resolving an object's state at
//!   `t_q` only consults records at or adjacent to `t_q` — all unchanged.
//!   Times at or after the frontier must recompute (a growing open run
//!   extends coverage, and a new successor record reshapes the inactive
//!   uncertainty region).
//! * **Drift-free flows.** Per-POI flows are re-summed from the
//!   contribution map (objects in ascending id order) on every refresh
//!   rather than maintained by `+= new − old`, so repeated updates cannot
//!   accumulate floating-point drift away from the batch answer.
//!
//! The engine also answers one-shot queries by assembling a full
//! [`FlowAnalytics`] over the union of all rows — the reference batch
//! path — and serves row dumps so tests can compute the same reference
//! externally.

use crate::metrics::ServiceMetrics;
use crate::protocol::{self, hash_ranked, tag, Resume, SubKind, SubSpec};
use crate::shard::DeltaBatch;
use inflow_core::{
    object_interval_flows, object_snapshot_flows, rank_topk, CountDistribution, DistribQuery,
    DistribState, DwellState, FlowAnalytics, IntervalQuery, LongVisitQuery, SnapshotQuery,
};
use inflow_indoor::PoiId;
use inflow_obs::{Counter, FlightEventKind, FlightRecorder, Hop, TraceChain};
use inflow_rtree::RTree;
use inflow_tracking::{ObjectId, ObjectTrackingTable, OttRow};
use inflow_uncertainty::{IndoorContext, UrConfig, UrEngine};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Messages the engine consumes. Reply frames go through the requesting
/// connection's writer channel (already-encoded frames), which serializes
/// them with any pushed `UPDATE` frames.
pub enum EngineMsg {
    Delta(DeltaBatch),
    Subscribe {
        spec: SubSpec,
        conn: u64,
        /// Whether the subscriber negotiated protocol v2 and should
        /// receive the trace-chain section on its `UPDATE` frames.
        trace_v2: bool,
        /// A v3 reconnecting subscriber's resume point: the sequence
        /// number and top-k digest of the last update it saw. The engine
        /// continues the sequence from there and suppresses the initial
        /// push when the current answer still matches the digest.
        resume: Option<Resume>,
        writer: Sender<Vec<u8>>,
    },
    Unsubscribe {
        sub_id: u64,
        writer: Sender<Vec<u8>>,
    },
    Current {
        sub_id: u64,
        writer: Sender<Vec<u8>>,
    },
    Query {
        spec: SubSpec,
        writer: Sender<Vec<u8>>,
    },
    /// One-shot count-distribution detail: answers with a
    /// `DISTRIB_JSON` frame carrying every query POI's full
    /// Poisson-binomial pmf, tail mass, `P(count ≥ kq)`, expectation and
    /// median (the `QUERY` verb answers the same spec with its ranked
    /// top-k only).
    Distrib {
        spec: SubSpec,
        writer: Sender<Vec<u8>>,
    },
    DumpRows {
        writer: Sender<Vec<u8>>,
    },
    Stats {
        writer: Sender<Vec<u8>>,
    },
    /// Ack after everything enqueued before it is applied (the barrier
    /// protocol's second half; shards flushed first).
    Barrier {
        writer: Sender<Vec<u8>>,
    },
    /// Reply with a `HASH` frame digesting the engine's deterministic
    /// state (rows + per-subscription current answers) alongside the
    /// already-collected per-shard tracker hashes. Ordered after the
    /// shard flush, so every pre-barrier delta is applied first.
    StateHash {
        shard_hashes: Vec<u64>,
        writer: Sender<Vec<u8>>,
    },
    /// A connection closed: drop its subscriptions.
    DropConn(u64),
    Stop,
}

/// One registered continuous subscription.
struct Sub {
    id: u64,
    conn: u64,
    kind: SubKind,
    k: usize,
    epsilon: f64,
    pois: Vec<PoiId>,
    rp: RTree<PoiId>,
    /// Per-object contributions `(poi, presence)`; absent = empty.
    contrib: HashMap<ObjectId, Vec<(PoiId, f64)>>,
    /// Per-object incremental dwell caches (long-visit subscriptions
    /// only): the settled prefix of the dwell integral, so per-delta
    /// recompute touches only the tail of the window. Entries are
    /// dropped whenever a delta rewrites an object's history instead of
    /// appending to it.
    dwell: HashMap<ObjectId, DwellState>,
    /// Incremental per-POI score cache (distrib subscriptions only):
    /// refolds a POI's Poisson binomial only when a delta touched it,
    /// kept in sync with `contrib` by [`Sub::store_contrib`].
    distrib: Option<DistribState>,
    /// The current materialized top-k (updated on every refresh, sent or
    /// not).
    current: Vec<(PoiId, f64)>,
    /// The last top-k actually pushed (the ε gate's reference point).
    last_sent: Option<Vec<(PoiId, f64)>>,
    seq: u64,
    /// v2 connections get the trace section on their updates.
    trace_v2: bool,
    writer: Sender<Vec<u8>>,
}

impl Sub {
    /// Whether a delta with this affected start can change the result.
    fn affected_by(&self, affected_start: f64) -> bool {
        self.kind.end_time() >= affected_start
    }

    /// Installs one object's recomputed contribution, keeping the
    /// distrib score cache in sync with the contribution map.
    fn store_contrib(&mut self, object: ObjectId, contrib: Vec<(PoiId, f64)>) {
        if let Some(state) = &mut self.distrib {
            let old = self.contrib.get(&object).map(Vec::as_slice).unwrap_or(&[]);
            state.update(object, old, &contrib);
        }
        if contrib.is_empty() {
            self.contrib.remove(&object);
        } else {
            self.contrib.insert(object, contrib);
        }
    }

    /// Re-ranks from the contribution map. Returns the ranked top-k.
    ///
    /// Every kind folds objects in ascending id order — the same order
    /// the batch paths walk their candidates — so the maintained values
    /// are bit-identical to a from-scratch recomputation:
    ///
    /// * `Snapshot`/`Interval`: per-POI flow = Σ presences;
    /// * `Distrib`: per-POI Poisson-binomial convolution of presences,
    ///   scored by `P(count ≥ kq)`;
    /// * `LongVisit`: per-POI count of objects whose stored dwell
    ///   reaches `d` (integer increments — drift-free by construction).
    fn rank(&mut self) -> Vec<(PoiId, f64)> {
        let mut objects: Vec<ObjectId> = self.contrib.keys().copied().collect();
        objects.sort_unstable();
        let scores: Vec<(PoiId, f64)> = match self.kind {
            SubKind::Snapshot { .. } | SubKind::Interval { .. } => {
                let mut flows: HashMap<PoiId, f64> = self.pois.iter().map(|&p| (p, 0.0)).collect();
                for o in objects {
                    let Some(contrib) = self.contrib.get(&o) else { continue };
                    for &(p, presence) in contrib {
                        // contrib_of only ever yields POIs from the query
                        // set; a stranger POI is skipped rather than
                        // trusted with a panic.
                        if let Some(flow) = flows.get_mut(&p) {
                            *flow += presence;
                        }
                    }
                }
                flows.into_iter().collect()
            }
            SubKind::Distrib { kq, kmax, .. } => match &mut self.distrib {
                // Fast path: refold only the POIs deltas touched since
                // the last rank (kept in sync by `store_contrib`).
                Some(state) => state.scores(&self.pois),
                // Reference fold, bit-identical to the fast path: every
                // POI's Poisson binomial from scratch, candidates in
                // ascending object-id order.
                None => {
                    let mut dists: HashMap<PoiId, CountDistribution> = self
                        .pois
                        .iter()
                        .map(|&p| (p, CountDistribution::new(kmax as usize)))
                        .collect();
                    for o in objects {
                        let Some(contrib) = self.contrib.get(&o) else { continue };
                        for &(p, presence) in contrib {
                            if let Some(dist) = dists.get_mut(&p) {
                                dist.push(presence);
                            }
                        }
                    }
                    dists.into_iter().map(|(p, d)| (p, d.p_ge(kq as usize))).collect()
                }
            },
            SubKind::LongVisit { d, .. } => {
                let mut counts: HashMap<PoiId, f64> = self.pois.iter().map(|&p| (p, 0.0)).collect();
                for o in objects {
                    let Some(contrib) = self.contrib.get(&o) else { continue };
                    for &(p, dwell) in contrib {
                        if dwell >= d {
                            if let Some(count) = counts.get_mut(&p) {
                                *count += 1.0;
                            }
                        }
                    }
                }
                counts.into_iter().collect()
            }
        };
        rank_topk(scores, self.k)
    }

    /// Whether `ranked` crosses the ε gate relative to the last pushed
    /// result: membership (or order) changed, or some member's flow moved
    /// by more than ε.
    fn crosses_gate(&self, ranked: &[(PoiId, f64)]) -> bool {
        let Some(prev) = &self.last_sent else { return true };
        if prev.len() != ranked.len() {
            return true;
        }
        for (&(pp, pf), &(np, nf)) in prev.iter().zip(ranked) {
            if pp != np || (nf - pf).abs() > self.epsilon {
                return true;
            }
        }
        false
    }
}

pub struct EngineConfig {
    pub ctx: Arc<IndoorContext>,
    pub ur: UrConfig,
    pub flight: Arc<FlightRecorder>,
}

/// Spawns the engine thread.
pub fn spawn_engine(
    rx: Receiver<EngineMsg>,
    cfg: EngineConfig,
    metrics: Arc<ServiceMetrics>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("inflow-engine".into())
        .spawn(move || run_engine(rx, cfg, metrics))
}

struct Engine {
    ctx: Arc<IndoorContext>,
    ur_cfg: UrConfig,
    ur: UrEngine,
    rows: HashMap<ObjectId, Vec<OttRow>>,
    subs: HashMap<u64, Sub>,
    next_sub: u64,
    metrics: Arc<ServiceMetrics>,
    flight: Arc<FlightRecorder>,
}

impl Engine {
    /// Resolves a spec's POI set (empty = all plan POIs) and prebuilds
    /// its R-tree.
    fn resolve_pois(&self, pois: &[PoiId]) -> (Vec<PoiId>, RTree<PoiId>) {
        let plan = self.ctx.plan();
        let pois: Vec<PoiId> = if pois.is_empty() {
            plan.pois().iter().map(|p| p.id).collect()
        } else {
            pois.to_vec()
        };
        let rp = RTree::bulk_load(pois.iter().map(|&p| (plan.poi(p).mbr(), p)).collect());
        (pois, rp)
    }

    /// Recomputes one object's contribution for one subscription.
    /// Takes the subscription mutably because a long-visit recompute
    /// advances its per-object incremental dwell cache.
    fn contrib_of(
        ur: &UrEngine,
        sub: &mut Sub,
        ott: &ObjectTrackingTable,
        object: ObjectId,
    ) -> Vec<(PoiId, f64)> {
        match sub.kind {
            SubKind::Snapshot { t } => object_snapshot_flows(ur, ott, object, t, &sub.rp),
            SubKind::Interval { ts, te } => object_interval_flows(ur, ott, object, ts, te, &sub.rp),
            // A distrib subscription stores the same per-object snapshot
            // presences a Snapshot one does (the distribution shape is
            // applied at rank time), so its per-delta recompute cost is
            // identical — the bench9 overhead gate leans on this.
            SubKind::Distrib { t, .. } => object_snapshot_flows(ur, ott, object, t, &sub.rp),
            // A long-visit subscription stores expected dwell per POI;
            // the threshold count is applied at rank time so ε/`d` never
            // influence what is cached. The dwell integral is maintained
            // incrementally — appends only change presence past the last
            // record's start, so only the window tail is re-integrated.
            SubKind::LongVisit { ts, te, .. } => {
                let Sub { dwell, rp, .. } = sub;
                dwell.entry(object).or_default().recompute(ur, ott, object, ts, te, rp)
            }
        }
    }

    fn apply_delta(&mut self, batch: DeltaBatch, dirty: &mut HashSet<u64>) {
        for delta in batch.deltas {
            let prev = self.rows.insert(delta.object, delta.rows.clone());
            if self.subs.is_empty() {
                continue;
            }
            // Appends — including the tracker growing its open last
            // record's `te` in place — keep incremental dwell caches
            // valid; anything else (repair rewriting history) resets
            // them for this object.
            let extends = prev.is_none_or(|old| rows_extend(&old, &delta.rows));
            // One single-object table per delta, shared by every affected
            // subscription. Tracker-produced rows always satisfy the OTT
            // invariants (ordered, non-overlapping per object); a batch
            // that doesn't is dropped and counted, never trusted.
            let ott = match ObjectTrackingTable::from_rows(delta.rows) {
                Ok(o) => o,
                Err(_) => {
                    self.metrics.add(Counter::ServeDeltaRowsInvalid, 1);
                    continue;
                }
            };
            let sub_ids: Vec<u64> = self.subs.keys().copied().collect();
            for id in sub_ids {
                let Some(sub) = self.subs.get_mut(&id) else { continue };
                if !extends {
                    sub.dwell.remove(&delta.object);
                }
                if !sub.affected_by(delta.affected_start) {
                    continue;
                }
                let t0 = Instant::now();
                let contrib = Self::contrib_of(&self.ur, sub, &ott, delta.object);
                self.metrics.observe_recompute_ns(t0.elapsed().as_nanos() as u64);
                self.metrics.add(Counter::ServeRecomputes, 1);
                sub.store_contrib(delta.object, contrib);
                dirty.insert(id);
            }
        }
    }

    /// Re-ranks a dirty subscription and pushes an update if it crosses
    /// the ε gate. `trace` is the context of the delta that dirtied the
    /// subscription; every notification it produces gets its own copy
    /// with a per-subscriber `notified` stamp.
    fn refresh(&mut self, sub_id: u64, trace: Option<&TraceChain>) {
        let Some(sub) = self.subs.get_mut(&sub_id) else { return };
        let ranked = sub.rank();
        sub.current = ranked.clone();
        if sub.crosses_gate(&ranked) {
            let t0 = Instant::now();
            sub.seq += 1;
            let chain = trace.map(|t| {
                let mut chain = *t;
                chain.stamp(Hop::Notified, self.flight.clock().now_ns());
                chain
            });
            let wire_trace = if sub.trace_v2 { chain.as_ref() } else { None };
            let payload = protocol::encode_update_traced(sub.id, sub.seq, &ranked, wire_trace);
            let mut frame = Vec::with_capacity(9 + payload.len());
            inflow_tracking::store::frame::write_frame(&mut frame, tag::UPDATE, &payload);
            let delivered = sub.writer.send(frame).is_ok();
            sub.last_sent = Some(ranked);
            self.metrics.observe_notify_ns(t0.elapsed().as_nanos() as u64);
            self.metrics.add(Counter::ServeNotifications, 1);
            let seq = sub.seq;
            if let Some(chain) = chain.as_ref() {
                self.metrics.observe_trace(chain, sub_id);
                self.flight.record(FlightEventKind::NotifySent, chain.id, sub_id, seq);
            } else {
                self.flight.record(FlightEventKind::NotifySent, 0, sub_id, seq);
            }
            if !delivered {
                // The connection is gone; the DropConn cleanup will
                // remove the subscription shortly.
            }
        } else {
            self.metrics.add(Counter::ServeNotificationsSuppressed, 1);
            self.flight.record(
                FlightEventKind::NotifySuppressed,
                trace.map_or(0, |t| t.id),
                sub_id,
                0,
            );
        }
    }

    fn subscribe(
        &mut self,
        spec: SubSpec,
        conn: u64,
        trace_v2: bool,
        resume: Option<Resume>,
        writer: Sender<Vec<u8>>,
    ) {
        let (pois, rp) = self.resolve_pois(&spec.pois);
        let id = self.next_sub;
        self.next_sub += 1;
        let mut sub = Sub {
            id,
            conn,
            kind: spec.kind,
            k: spec.k,
            epsilon: spec.epsilon,
            pois,
            rp,
            contrib: HashMap::new(),
            dwell: HashMap::new(),
            distrib: match spec.kind {
                SubKind::Distrib { kq, kmax, .. } => {
                    Some(DistribState::new(kq as usize, kmax as usize))
                }
                _ => None,
            },
            current: Vec::new(),
            last_sent: None,
            seq: 0,
            trace_v2,
            writer,
        };
        // Initial materialization over every known object.
        for (&object, rows) in &self.rows {
            let ott = match ObjectTrackingTable::from_rows(rows.clone()) {
                Ok(o) => o,
                Err(_) => {
                    self.metrics.add(Counter::ServeDeltaRowsInvalid, 1);
                    continue;
                }
            };
            let t0 = Instant::now();
            let contrib = Self::contrib_of(&self.ur, &mut sub, &ott, object);
            self.metrics.observe_recompute_ns(t0.elapsed().as_nanos() as u64);
            self.metrics.add(Counter::ServeRecomputes, 1);
            sub.store_contrib(object, contrib);
        }
        if let Some(r) = resume {
            // Continue the interrupted sequence: the next pushed update
            // carries `last_seq + 1`. When the current answer still
            // digests to what the client last saw, pre-seed the ε gate's
            // reference so the initial refresh suppresses the duplicate;
            // otherwise the refresh pushes the missed state.
            sub.seq = r.last_seq;
            let ranked = sub.rank();
            if hash_ranked(&ranked) == r.last_hash {
                sub.last_sent = Some(ranked);
            }
            self.metrics.add(Counter::ServeResumedSubscriptions, 1);
            self.flight.record(FlightEventKind::SubResumed, 0, id, r.last_seq);
        }
        send_frame(&sub.writer, tag::SUB_ACK, &protocol::encode_u64(id));
        self.metrics.add(Counter::ServeSubscriptions, 1);
        self.metrics.add(
            match sub.kind {
                SubKind::Snapshot { .. } => Counter::ServeSnapshotSubscriptions,
                SubKind::Interval { .. } => Counter::ServeIntervalSubscriptions,
                SubKind::Distrib { .. } => Counter::ServeDistribSubscriptions,
                SubKind::LongVisit { .. } => Counter::ServeLongvisitSubscriptions,
            },
            1,
        );
        self.flight.record(FlightEventKind::Subscribed, 0, id, conn);
        self.subs.insert(id, sub);
        // The initial result counts as the first update (seq 1); a
        // resumed subscription either continues its sequence or stays
        // silent until the answer moves.
        self.refresh(id, None);
    }

    /// Digests the engine's replay-deterministic state: every object's
    /// rows (ascending object id, canonical 24-byte row encoding) and
    /// every subscription's current top-k (ascending id). Sequence
    /// numbers and ε-gate reference points are deliberately excluded —
    /// they depend on delta interleaving, which barriers do not fix.
    fn state_hash(&self) -> u64 {
        let frame = inflow_tracking::store::frame::encode_row;
        let mut buf = Vec::new();
        let mut objects: Vec<ObjectId> = self.rows.keys().copied().collect();
        objects.sort_unstable();
        for o in objects {
            let Some(rows) = self.rows.get(&o) else { continue };
            for row in rows {
                buf.extend_from_slice(&frame(row));
            }
        }
        let mut ids: Vec<u64> = self.subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let Some(sub) = self.subs.get(&id) else { continue };
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&hash_ranked(&sub.current).to_le_bytes());
        }
        inflow_tracking::store::frame::fnv1a(&buf)
    }

    /// One-shot query: the reference batch path over the union of all
    /// current rows.
    fn one_shot(&self, spec: &SubSpec, writer: &Sender<Vec<u8>>) {
        let mut rows: Vec<OttRow> = self.rows.values().flatten().copied().collect();
        rows.sort_by(|a, b| {
            a.object.cmp(&b.object).then(a.ts.total_cmp(&b.ts)).then(a.te.total_cmp(&b.te))
        });
        let ott = match ObjectTrackingTable::from_rows(rows) {
            Ok(o) => o,
            Err(e) => {
                send_frame(writer, tag::ERROR, format!("inconsistent rows: {e}").as_bytes());
                return;
            }
        };
        let fa = FlowAnalytics::new(Arc::clone(&self.ctx), ott, self.ur_cfg);
        let (pois, _) = self.resolve_pois(&spec.pois);
        let ranked = match spec.kind {
            SubKind::Snapshot { t } => {
                fa.snapshot_topk_iterative(&SnapshotQuery::new(t, pois, spec.k)).ranked
            }
            SubKind::Interval { ts, te } => {
                fa.interval_topk_iterative(&IntervalQuery::new(ts, te, pois, spec.k)).ranked
            }
            SubKind::Distrib { t, kq, kmax } => {
                fa.distrib_topk(&DistribQuery::at(t, pois, kq as usize, kmax as usize, spec.k))
                    .ranked
            }
            SubKind::LongVisit { ts, te, d } => {
                fa.longvisit_topk(&LongVisitQuery::new(ts, te, d, pois, spec.k)).ranked
            }
        };
        self.metrics.add(Counter::ServeOneShotQueries, 1);
        send_frame(writer, tag::RESULT, &protocol::encode_ranked(&ranked));
    }

    /// Full count-distribution detail for a one-shot `DISTRIB` request:
    /// the batch distribution over the union of all current rows,
    /// serialized as JSON (per-POI pmf, tail, `P(count ≥ kq)`,
    /// expectation and median, plus the ranked top-k).
    fn distrib_detail(&self, spec: &SubSpec, writer: &Sender<Vec<u8>>) {
        let SubKind::Distrib { t, kq, kmax } = spec.kind else {
            send_frame(writer, tag::ERROR, b"DISTRIB requires a distrib query kind");
            return;
        };
        let mut rows: Vec<OttRow> = self.rows.values().flatten().copied().collect();
        rows.sort_by(|a, b| {
            a.object.cmp(&b.object).then(a.ts.total_cmp(&b.ts)).then(a.te.total_cmp(&b.te))
        });
        let ott = match ObjectTrackingTable::from_rows(rows) {
            Ok(o) => o,
            Err(e) => {
                send_frame(writer, tag::ERROR, format!("inconsistent rows: {e}").as_bytes());
                return;
            }
        };
        let fa = FlowAnalytics::new(Arc::clone(&self.ctx), ott, self.ur_cfg);
        let (pois, _) = self.resolve_pois(&spec.pois);
        let q = DistribQuery::at(t, pois, kq as usize, kmax as usize, spec.k);
        let res = fa.distrib_topk(&q);
        let mut json = String::with_capacity(256);
        json.push_str(&format!("{{\"version\":1,\"t\":{t},\"kq\":{kq},\"kmax\":{kmax},\"pois\":["));
        for (i, (poi, dist)) in res.distributions.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"poi\":{},\"p_ge\":{},\"expectation\":{},\"median\":{},\"tail\":{},\"pmf\":[",
                poi.0,
                dist.p_ge(kq as usize),
                dist.expectation(),
                dist.quantile(0.5),
                dist.tail_mass()
            ));
            for k in 0..=dist.kmax() {
                if k > 0 {
                    json.push(',');
                }
                json.push_str(&format!("{}", dist.pmf(k)));
            }
            json.push_str("]}");
        }
        json.push_str("],\"ranked\":[");
        for (i, (poi, score)) in res.ranked.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("[{},{}]", poi.0, score));
        }
        json.push_str("]}");
        send_frame(writer, tag::DISTRIB_JSON, json.as_bytes());
    }

    fn dump_rows(&self, writer: &Sender<Vec<u8>>) {
        let mut rows: Vec<OttRow> = self.rows.values().flatten().copied().collect();
        rows.sort_by(|a, b| {
            a.object.cmp(&b.object).then(a.ts.total_cmp(&b.ts)).then(a.te.total_cmp(&b.te))
        });
        send_frame(writer, tag::ROWS, &protocol::encode_rows(&rows));
    }
}

/// Whether `new` merely extends `old`: every row but `old`'s last is
/// unchanged, and the last keeps its identity — the online tracker
/// grows an open record's `te` in place as readings merge into it.
/// Incremental dwell caches tolerate exactly these shapes (presence
/// before the last record's start is unaffected by either); any other
/// change is a history rewrite and must reset them.
fn rows_extend(old: &[OttRow], new: &[OttRow]) -> bool {
    let Some((last, stable)) = old.split_last() else { return true };
    if new.get(..stable.len()) != Some(stable) {
        return false;
    }
    let Some(n) = new.get(stable.len()) else { return false };
    n.object == last.object && n.device == last.device && n.ts == last.ts && n.te >= last.te
}

/// Encodes and enqueues one reply frame; a dead connection is ignored
/// (its reader already initiated cleanup).
fn send_frame(writer: &Sender<Vec<u8>>, tag_byte: u8, payload: &[u8]) {
    let mut frame = Vec::with_capacity(9 + payload.len());
    inflow_tracking::store::frame::write_frame(&mut frame, tag_byte, payload);
    let _ = writer.send(frame);
}

fn run_engine(rx: Receiver<EngineMsg>, cfg: EngineConfig, metrics: Arc<ServiceMetrics>) {
    let ur = UrEngine::new(Arc::clone(&cfg.ctx), cfg.ur);
    let mut engine = Engine {
        ctx: cfg.ctx,
        ur_cfg: cfg.ur,
        ur,
        rows: HashMap::new(),
        subs: HashMap::new(),
        next_sub: 1,
        metrics,
        flight: cfg.flight,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            EngineMsg::Delta(mut batch) => {
                let clock = engine.flight.clock().clone();
                if let Some(chain) = batch.trace.as_mut() {
                    chain.stamp(Hop::EngineDequeue, clock.now_ns());
                }
                let mut trace = batch.trace;
                let shard = batch.shard as u64;
                let objects = batch.deltas.len() as u64;
                let mut dirty = HashSet::new();
                engine.apply_delta(batch, &mut dirty);
                if let Some(chain) = trace.as_mut() {
                    chain.stamp(Hop::Recomputed, clock.now_ns());
                }
                engine.flight.record(
                    FlightEventKind::DeltaApplied,
                    trace.map_or(0, |t| t.id),
                    shard,
                    objects,
                );
                let mut ids: Vec<u64> = dirty.into_iter().collect();
                ids.sort_unstable();
                for id in ids {
                    engine.refresh(id, trace.as_ref());
                }
            }
            EngineMsg::Subscribe { spec, conn, trace_v2, resume, writer } => {
                engine.subscribe(spec, conn, trace_v2, resume, writer)
            }
            EngineMsg::Unsubscribe { sub_id, writer } => {
                engine.subs.remove(&sub_id);
                engine.flight.record(FlightEventKind::Unsubscribed, 0, sub_id, 0);
                send_frame(&writer, tag::ACK, &[]);
            }
            EngineMsg::Current { sub_id, writer } => match engine.subs.get(&sub_id) {
                Some(sub) => {
                    send_frame(&writer, tag::RESULT, &protocol::encode_ranked(&sub.current))
                }
                None => send_frame(&writer, tag::ERROR, b"unknown subscription"),
            },
            EngineMsg::Query { spec, writer } => engine.one_shot(&spec, &writer),
            EngineMsg::Distrib { spec, writer } => engine.distrib_detail(&spec, &writer),
            EngineMsg::DumpRows { writer } => engine.dump_rows(&writer),
            EngineMsg::Stats { writer } => {
                send_frame(&writer, tag::STATS_TEXT, engine.metrics.render().as_bytes())
            }
            EngineMsg::Barrier { writer } => send_frame(&writer, tag::ACK, &[]),
            EngineMsg::StateHash { shard_hashes, writer } => {
                let hash =
                    protocol::StateHash { engine: engine.state_hash(), shards: shard_hashes };
                send_frame(&writer, tag::HASH, &protocol::encode_state_hash(&hash));
            }
            EngineMsg::DropConn(conn) => engine.subs.retain(|_, s| s.conn != conn),
            EngineMsg::Stop => break,
        }
    }
}
