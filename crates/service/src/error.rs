//! Typed client-side service errors.
//!
//! The client distinguishes failure classes callers react to
//! differently: a [`ServiceError::Timeout`] or [`ServiceError::Closed`]
//! means the connection is suspect and a resilient caller should
//! reconnect; [`ServiceError::Overloaded`] is explicit backpressure —
//! the server is healthy but refusing work, so back off and retry;
//! [`ServiceError::Remote`] is the server saying the *request* was bad,
//! which no retry will fix.

use std::fmt;
use std::io;

/// What went wrong talking to the flow-monitoring server.
#[derive(Debug)]
pub enum ServiceError {
    /// Transport-level failure (connect refused, reset, …).
    Io(io::Error),
    /// A configured read/write deadline elapsed.
    Timeout,
    /// The server refused the request with an `OVERLOADED` frame;
    /// `depth` is the queue depth (or connection bound) it reported.
    Overloaded { depth: u64 },
    /// The server answered with an `ERROR` frame.
    Remote(String),
    /// The reply violated the wire protocol (wrong tag, bad payload).
    Protocol(String),
    /// The server closed the connection mid-exchange.
    Closed,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Timeout => write!(f, "request timed out"),
            ServiceError::Overloaded { depth } => {
                write!(f, "server overloaded (reported depth {depth})")
            }
            ServiceError::Remote(msg) => write!(f, "server error: {msg}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> ServiceError {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ServiceError::Timeout,
            io::ErrorKind::UnexpectedEof => ServiceError::Closed,
            _ => ServiceError::Io(e),
        }
    }
}

impl From<ServiceError> for io::Error {
    fn from(e: ServiceError) -> io::Error {
        match e {
            ServiceError::Io(inner) => inner,
            ServiceError::Timeout => io::Error::new(io::ErrorKind::TimedOut, e.to_string()),
            ServiceError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
            other => io::Error::other(other.to_string()),
        }
    }
}

impl ServiceError {
    /// Whether the connection itself is suspect (reconnect-worthy), as
    /// opposed to the request being refused or malformed.
    pub fn is_connection_error(&self) -> bool {
        matches!(self, ServiceError::Io(_) | ServiceError::Timeout | ServiceError::Closed)
    }
}
