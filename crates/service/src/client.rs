//! A blocking client for the flow-monitoring protocol.
//!
//! One TCP connection, request/reply with pushed `UPDATE` frames
//! interleaved: any update that arrives while waiting for a reply is
//! buffered into an internal queue and surfaced via
//! [`Client::take_updates`]. Because the server serializes every frame
//! for a connection through one writer, a [`Client::barrier`] round-trip
//! guarantees that all updates triggered by this connection's earlier
//! publishes have already been read into the buffer when it returns.
//!
//! On connect the client sends `HELLO` with [`protocol::PROTOCOL_VERSION`]
//! and adopts whatever the server acks. A v1 server replies `ERROR` to
//! the unknown tag — the client swallows that and stays on v1, so new
//! clients interoperate with old servers (and vice versa: the trace
//! section a v2 server appends to `UPDATE` is only sent to connections
//! that negotiated v2).

use crate::protocol::{self, tag, SubSpec};
use inflow_indoor::PoiId;
use inflow_obs::TraceChain;
use inflow_tracking::{OttRow, RawReading};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};

/// One pushed subscription notification.
#[derive(Debug, Clone)]
pub struct Update {
    pub sub_id: u64,
    /// Per-subscription sequence number (1 = initial result).
    pub seq: u64,
    pub ranked: Vec<(PoiId, f64)>,
    /// Hop-stamped trace of the publish that triggered this update
    /// (v2 connections with tracing on; `None` otherwise — including
    /// initial results and recovery re-emissions, which no single
    /// publish caused).
    pub trace: Option<TraceChain>,
}

pub struct Client {
    stream: TcpStream,
    updates: VecDeque<Update>,
    /// Negotiated protocol version (1 when talking to a pre-`HELLO`
    /// server).
    version: u32,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream, updates: VecDeque::new(), version: 1 };
        // Old servers reply ERROR to the unknown HELLO tag; treat that
        // as "speaks v1" rather than a failure.
        match client.rpc(
            tag::HELLO,
            &protocol::encode_u32(protocol::PROTOCOL_VERSION),
            tag::HELLO_ACK,
        ) {
            Ok(body) => client.version = protocol::decode_u32(&body)?.max(1),
            Err(_) => client.version = 1,
        }
        Ok(client)
    }

    /// The protocol version negotiated with the server.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Sends one request frame and reads frames until a non-`UPDATE`
    /// reply arrives, buffering updates along the way. An `ERROR` reply
    /// becomes an `io::Error`.
    fn request(&mut self, tag_byte: u8, payload: &[u8]) -> io::Result<(u8, Vec<u8>)> {
        let mut frame = Vec::with_capacity(9 + payload.len());
        inflow_tracking::store::frame::write_frame(&mut frame, tag_byte, payload);
        self.stream.write_all(&frame)?;
        loop {
            let Some((reply_tag, body)) = protocol::read_frame(&mut self.stream)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            };
            if reply_tag == tag::UPDATE {
                let (sub_id, seq, ranked, trace) = protocol::decode_update(&body)?;
                self.updates.push_back(Update { sub_id, seq, ranked, trace });
                continue;
            }
            if reply_tag == tag::ERROR {
                return Err(io::Error::other(String::from_utf8_lossy(&body).into_owned()));
            }
            return Ok((reply_tag, body));
        }
    }

    fn rpc(&mut self, req: u8, payload: &[u8], want: u8) -> io::Result<Vec<u8>> {
        let (got, body) = self.request(req, payload)?;
        if got != want {
            return Err(io::Error::other(format!(
                "protocol error: expected reply tag {want}, got {got}"
            )));
        }
        Ok(body)
    }

    /// Publishes a batch of readings (acked once *routed*; use
    /// [`Client::barrier`] to wait until applied). On a v2 connection
    /// with tracing on, returns the trace id the router assigned to the
    /// batch — correlate it with [`Client::trace_json`] output.
    pub fn publish(&mut self, readings: &[RawReading]) -> io::Result<Option<u64>> {
        let body = self.rpc(tag::PUBLISH, &protocol::encode_publish(readings), tag::ACK)?;
        if body.len() == 8 {
            return Ok(Some(protocol::decode_u64(&body)?));
        }
        Ok(None)
    }

    /// Registers a continuous subscription; returns its id. The initial
    /// result arrives as the subscription's first `UPDATE` (seq 1).
    pub fn subscribe(&mut self, spec: &SubSpec) -> io::Result<u64> {
        let body = self.rpc(tag::SUBSCRIBE, &protocol::encode_subspec(spec), tag::SUB_ACK)?;
        protocol::decode_u64(&body)
    }

    pub fn unsubscribe(&mut self, sub_id: u64) -> io::Result<()> {
        self.rpc(tag::UNSUBSCRIBE, &protocol::encode_u64(sub_id), tag::ACK)?;
        Ok(())
    }

    /// Full pipeline sync: every reading this connection published before
    /// the barrier is ingested, its deltas applied, and the resulting
    /// updates are buffered client-side when this returns.
    pub fn barrier(&mut self) -> io::Result<()> {
        self.rpc(tag::BARRIER, &[], tag::ACK)?;
        Ok(())
    }

    /// One-shot query answered by the batch reference path server-side.
    pub fn query(&mut self, spec: &SubSpec) -> io::Result<Vec<(PoiId, f64)>> {
        let body = self.rpc(tag::QUERY, &protocol::encode_subspec(spec), tag::RESULT)?;
        protocol::decode_ranked(&body)
    }

    /// The subscription's current materialized top-k (sent or not).
    pub fn current(&mut self, sub_id: u64) -> io::Result<Vec<(PoiId, f64)>> {
        let body = self.rpc(tag::CURRENT, &protocol::encode_u64(sub_id), tag::RESULT)?;
        protocol::decode_ranked(&body)
    }

    /// Every row the engine currently holds, sorted by (object, ts, te) —
    /// the exact input a from-scratch batch computation would see.
    pub fn dump_rows(&mut self) -> io::Result<Vec<OttRow>> {
        let body = self.rpc(tag::DUMP_ROWS, &[], tag::ROWS)?;
        protocol::decode_rows(&body)
    }

    /// The server's metrics registry, rendered.
    pub fn stats(&mut self) -> io::Result<String> {
        let body = self.rpc(tag::STATS, &[], tag::STATS_TEXT)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Machine-readable metrics snapshot (counters, histograms with
    /// exact bucket bounds, per-shard queue depths) as a JSON document.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        let body = self.rpc(tag::METRICS, &[], tag::METRICS_JSON)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Recent completed notification traces plus the slow-request log,
    /// as a JSON document.
    pub fn trace_json(&mut self) -> io::Result<String> {
        let body = self.rpc(tag::TRACE, &[], tag::TRACE_JSON)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// The server's flight recorder contents as JSONL, oldest first.
    pub fn flight_dump(&mut self) -> io::Result<String> {
        let body = self.rpc(tag::FLIGHT, &[], tag::FLIGHT_JSONL)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Asks the server to stop accepting and wind down.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.rpc(tag::SHUTDOWN, &[], tag::ACK)?;
        Ok(())
    }

    /// Drains every buffered update, in arrival order.
    pub fn take_updates(&mut self) -> Vec<Update> {
        self.updates.drain(..).collect()
    }
}
