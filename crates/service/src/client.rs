//! A blocking client for the flow-monitoring protocol.
//!
//! One TCP connection, request/reply with pushed `UPDATE` frames
//! interleaved: any update that arrives while waiting for a reply is
//! buffered into an internal queue and surfaced via
//! [`Client::take_updates`]. Because the server serializes every frame
//! for a connection through one writer, a [`Client::barrier`] round-trip
//! guarantees that all updates triggered by this connection's earlier
//! publishes have already been read into the buffer when it returns.
//!
//! On connect the client sends `HELLO` with [`protocol::PROTOCOL_VERSION`]
//! and adopts whatever the server acks. A v1 server replies `ERROR` to
//! the unknown tag — the client swallows that and stays on v1, so new
//! clients interoperate with old servers (and vice versa: the trace
//! section a v2 server appends to `UPDATE` is only sent to connections
//! that negotiated v2).
//!
//! Every exchange is bounded by a read/write deadline
//! ([`DEFAULT_TIMEOUT`] unless overridden via [`Client::connect_with`]);
//! an elapsed deadline surfaces as the typed [`ServiceError::Timeout`],
//! and an `OVERLOADED` backpressure frame as
//! [`ServiceError::Overloaded`] — callers (notably
//! [`ResilientClient`](crate::ResilientClient)) react to each
//! differently.

use crate::error::ServiceError;
use crate::protocol::{self, tag, Resume, StateHash, SubSpec};
use inflow_indoor::PoiId;
use inflow_obs::TraceChain;
use inflow_tracking::{OttRow, RawReading};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default read/write deadline for every client exchange.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// One pushed subscription notification.
#[derive(Debug, Clone)]
pub struct Update {
    pub sub_id: u64,
    /// Per-subscription sequence number (1 = initial result).
    pub seq: u64,
    pub ranked: Vec<(PoiId, f64)>,
    /// Hop-stamped trace of the publish that triggered this update
    /// (v2 connections with tracing on; `None` otherwise — including
    /// initial results and recovery re-emissions, which no single
    /// publish caused).
    pub trace: Option<TraceChain>,
}

pub struct Client {
    stream: TcpStream,
    updates: VecDeque<Update>,
    /// Negotiated protocol version (1 when talking to a pre-`HELLO`
    /// server).
    version: u32,
}

impl Client {
    /// Connects with the [`DEFAULT_TIMEOUT`] read/write deadline.
    pub fn connect(addr: SocketAddr) -> Result<Client, ServiceError> {
        Client::connect_with(addr, Some(DEFAULT_TIMEOUT))
    }

    /// Connects with an explicit read/write deadline (`None` = block
    /// forever, the pre-timeout behaviour).
    pub fn connect_with(
        addr: SocketAddr,
        timeout: Option<Duration>,
    ) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(ServiceError::from)?;
        stream.set_nodelay(true).map_err(ServiceError::from)?;
        stream.set_read_timeout(timeout).map_err(ServiceError::from)?;
        stream.set_write_timeout(timeout).map_err(ServiceError::from)?;
        let mut client = Client { stream, updates: VecDeque::new(), version: 1 };
        // Old servers reply ERROR to the unknown HELLO tag; treat that
        // as "speaks v1" rather than a failure. Anything else (timeout,
        // closed, transport) is a real failure and propagates.
        match client.rpc(
            tag::HELLO,
            &protocol::encode_u32(protocol::PROTOCOL_VERSION),
            tag::HELLO_ACK,
        ) {
            Ok(body) => client.version = protocol::decode_u32(&body)?.max(1),
            Err(ServiceError::Remote(_)) => client.version = 1,
            Err(e) => return Err(e),
        }
        Ok(client)
    }

    /// The protocol version negotiated with the server.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Sends one request frame and reads frames until a non-`UPDATE`
    /// reply arrives, buffering updates along the way. An `ERROR` reply
    /// becomes [`ServiceError::Remote`]; an `OVERLOADED` frame becomes
    /// [`ServiceError::Overloaded`].
    fn request(&mut self, tag_byte: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ServiceError> {
        let mut frame = Vec::with_capacity(9 + payload.len());
        inflow_tracking::store::frame::write_frame(&mut frame, tag_byte, payload);
        self.stream.write_all(&frame).map_err(ServiceError::from)?;
        loop {
            let Some((reply_tag, body)) =
                protocol::read_frame(&mut self.stream).map_err(ServiceError::from)?
            else {
                return Err(ServiceError::Closed);
            };
            if reply_tag == tag::UPDATE {
                let (sub_id, seq, ranked, trace) = protocol::decode_update(&body)?;
                self.updates.push_back(Update { sub_id, seq, ranked, trace });
                continue;
            }
            if reply_tag == tag::ERROR {
                return Err(ServiceError::Remote(String::from_utf8_lossy(&body).into_owned()));
            }
            if reply_tag == tag::OVERLOADED {
                let depth = protocol::decode_u64(&body).unwrap_or(0);
                return Err(ServiceError::Overloaded { depth });
            }
            return Ok((reply_tag, body));
        }
    }

    fn rpc(&mut self, req: u8, payload: &[u8], want: u8) -> Result<Vec<u8>, ServiceError> {
        let (got, body) = self.request(req, payload)?;
        if got != want {
            return Err(ServiceError::Protocol(format!("expected reply tag {want}, got {got}")));
        }
        Ok(body)
    }

    /// Publishes a batch of readings (acked once *routed*; use
    /// [`Client::barrier`] to wait until applied). On a v2 connection
    /// with tracing on, returns the trace id the router assigned to the
    /// batch — correlate it with [`Client::trace_json`] output.
    pub fn publish(&mut self, readings: &[RawReading]) -> Result<Option<u64>, ServiceError> {
        let body = self.rpc(tag::PUBLISH, &protocol::encode_publish(readings), tag::ACK)?;
        if body.len() == 8 {
            return Ok(Some(protocol::decode_u64(&body)?));
        }
        Ok(None)
    }

    /// Registers a continuous subscription; returns its id. The initial
    /// result arrives as the subscription's first `UPDATE` (seq 1).
    pub fn subscribe(&mut self, spec: &SubSpec) -> Result<u64, ServiceError> {
        let body = self.rpc(tag::SUBSCRIBE, &protocol::encode_subspec(spec), tag::SUB_ACK)?;
        Ok(protocol::decode_u64(&body)?)
    }

    /// Re-registers a subscription after a reconnect, resuming its
    /// update sequence from `resume.last_seq`. The server suppresses the
    /// initial push when the current answer still digests to
    /// `resume.last_hash`, so the client sees neither a duplicate nor a
    /// gap. Requires a v3 server.
    pub fn subscribe_resume(
        &mut self,
        spec: &SubSpec,
        resume: &Resume,
    ) -> Result<u64, ServiceError> {
        let payload = protocol::encode_subscribe(spec, Some(resume));
        let body = self.rpc(tag::SUBSCRIBE, &payload, tag::SUB_ACK)?;
        Ok(protocol::decode_u64(&body)?)
    }

    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<(), ServiceError> {
        self.rpc(tag::UNSUBSCRIBE, &protocol::encode_u64(sub_id), tag::ACK)?;
        Ok(())
    }

    /// Full pipeline sync: every reading this connection published before
    /// the barrier is ingested, its deltas applied, and the resulting
    /// updates are buffered client-side when this returns.
    pub fn barrier(&mut self) -> Result<(), ServiceError> {
        self.rpc(tag::BARRIER, &[], tag::ACK)?;
        Ok(())
    }

    /// Barrier plus deterministic state digest: the engine hash (rows +
    /// per-subscription answers) and every shard tracker's hash. The
    /// record/replay machinery compares these across runs.
    pub fn state_hash(&mut self) -> Result<StateHash, ServiceError> {
        let body = self.rpc(tag::STATE_HASH, &[], tag::HASH)?;
        Ok(protocol::decode_state_hash(&body)?)
    }

    /// One-shot query answered by the batch reference path server-side.
    pub fn query(&mut self, spec: &SubSpec) -> Result<Vec<(PoiId, f64)>, ServiceError> {
        let body = self.rpc(tag::QUERY, &protocol::encode_subspec(spec), tag::RESULT)?;
        Ok(protocol::decode_ranked(&body)?)
    }

    /// The subscription's current materialized top-k (sent or not).
    pub fn current(&mut self, sub_id: u64) -> Result<Vec<(PoiId, f64)>, ServiceError> {
        let body = self.rpc(tag::CURRENT, &protocol::encode_u64(sub_id), tag::RESULT)?;
        Ok(protocol::decode_ranked(&body)?)
    }

    /// Every row the engine currently holds, sorted by (object, ts, te) —
    /// the exact input a from-scratch batch computation would see.
    pub fn dump_rows(&mut self) -> Result<Vec<OttRow>, ServiceError> {
        let body = self.rpc(tag::DUMP_ROWS, &[], tag::ROWS)?;
        Ok(protocol::decode_rows(&body)?)
    }

    /// The server's metrics registry, rendered.
    pub fn stats(&mut self) -> Result<String, ServiceError> {
        let body = self.rpc(tag::STATS, &[], tag::STATS_TEXT)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Machine-readable metrics snapshot (counters, histograms with
    /// exact bucket bounds, per-shard queue depths) as a JSON document.
    pub fn metrics_json(&mut self) -> Result<String, ServiceError> {
        let body = self.rpc(tag::METRICS, &[], tag::METRICS_JSON)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Full count-distribution detail for a `Distrib` spec: per-POI pmf,
    /// tail mass, `P(count ≥ kq)`, expectation and median, as a JSON
    /// document (the plain [`Client::query`] answers the ranked top-k).
    pub fn distrib_json(&mut self, spec: &SubSpec) -> Result<String, ServiceError> {
        let body = self.rpc(tag::DISTRIB, &protocol::encode_subspec(spec), tag::DISTRIB_JSON)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Recent completed notification traces plus the slow-request log,
    /// as a JSON document.
    pub fn trace_json(&mut self) -> Result<String, ServiceError> {
        let body = self.rpc(tag::TRACE, &[], tag::TRACE_JSON)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// The server's flight recorder contents as JSONL, oldest first.
    pub fn flight_dump(&mut self) -> Result<String, ServiceError> {
        let body = self.rpc(tag::FLIGHT, &[], tag::FLIGHT_JSONL)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Asks the server to stop accepting and wind down.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        self.rpc(tag::SHUTDOWN, &[], tag::ACK)?;
        Ok(())
    }

    /// Drains every buffered update, in arrival order.
    pub fn take_updates(&mut self) -> Vec<Update> {
        self.updates.drain(..).collect()
    }
}
