//! A blocking client for the flow-monitoring protocol.
//!
//! One TCP connection, request/reply with pushed `UPDATE` frames
//! interleaved: any update that arrives while waiting for a reply is
//! buffered into an internal queue and surfaced via
//! [`Client::take_updates`]. Because the server serializes every frame
//! for a connection through one writer, a [`Client::barrier`] round-trip
//! guarantees that all updates triggered by this connection's earlier
//! publishes have already been read into the buffer when it returns.

use crate::protocol::{self, tag, SubSpec};
use inflow_indoor::PoiId;
use inflow_tracking::{OttRow, RawReading};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};

/// One pushed subscription notification.
#[derive(Debug, Clone)]
pub struct Update {
    pub sub_id: u64,
    /// Per-subscription sequence number (1 = initial result).
    pub seq: u64,
    pub ranked: Vec<(PoiId, f64)>,
}

pub struct Client {
    stream: TcpStream,
    updates: VecDeque<Update>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, updates: VecDeque::new() })
    }

    /// Sends one request frame and reads frames until a non-`UPDATE`
    /// reply arrives, buffering updates along the way. An `ERROR` reply
    /// becomes an `io::Error`.
    fn request(&mut self, tag_byte: u8, payload: &[u8]) -> io::Result<(u8, Vec<u8>)> {
        let mut frame = Vec::with_capacity(9 + payload.len());
        inflow_tracking::store::frame::write_frame(&mut frame, tag_byte, payload);
        self.stream.write_all(&frame)?;
        loop {
            let Some((reply_tag, body)) = protocol::read_frame(&mut self.stream)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            };
            if reply_tag == tag::UPDATE {
                let (sub_id, seq, ranked) = protocol::decode_update(&body)?;
                self.updates.push_back(Update { sub_id, seq, ranked });
                continue;
            }
            if reply_tag == tag::ERROR {
                return Err(io::Error::other(String::from_utf8_lossy(&body).into_owned()));
            }
            return Ok((reply_tag, body));
        }
    }

    fn rpc(&mut self, req: u8, payload: &[u8], want: u8) -> io::Result<Vec<u8>> {
        let (got, body) = self.request(req, payload)?;
        if got != want {
            return Err(io::Error::other(format!(
                "protocol error: expected reply tag {want}, got {got}"
            )));
        }
        Ok(body)
    }

    /// Publishes a batch of readings (acked once *routed*; use
    /// [`Client::barrier`] to wait until applied).
    pub fn publish(&mut self, readings: &[RawReading]) -> io::Result<()> {
        self.rpc(tag::PUBLISH, &protocol::encode_publish(readings), tag::ACK)?;
        Ok(())
    }

    /// Registers a continuous subscription; returns its id. The initial
    /// result arrives as the subscription's first `UPDATE` (seq 1).
    pub fn subscribe(&mut self, spec: &SubSpec) -> io::Result<u64> {
        let body = self.rpc(tag::SUBSCRIBE, &protocol::encode_subspec(spec), tag::SUB_ACK)?;
        protocol::decode_u64(&body)
    }

    pub fn unsubscribe(&mut self, sub_id: u64) -> io::Result<()> {
        self.rpc(tag::UNSUBSCRIBE, &protocol::encode_u64(sub_id), tag::ACK)?;
        Ok(())
    }

    /// Full pipeline sync: every reading this connection published before
    /// the barrier is ingested, its deltas applied, and the resulting
    /// updates are buffered client-side when this returns.
    pub fn barrier(&mut self) -> io::Result<()> {
        self.rpc(tag::BARRIER, &[], tag::ACK)?;
        Ok(())
    }

    /// One-shot query answered by the batch reference path server-side.
    pub fn query(&mut self, spec: &SubSpec) -> io::Result<Vec<(PoiId, f64)>> {
        let body = self.rpc(tag::QUERY, &protocol::encode_subspec(spec), tag::RESULT)?;
        protocol::decode_ranked(&body)
    }

    /// The subscription's current materialized top-k (sent or not).
    pub fn current(&mut self, sub_id: u64) -> io::Result<Vec<(PoiId, f64)>> {
        let body = self.rpc(tag::CURRENT, &protocol::encode_u64(sub_id), tag::RESULT)?;
        protocol::decode_ranked(&body)
    }

    /// Every row the engine currently holds, sorted by (object, ts, te) —
    /// the exact input a from-scratch batch computation would see.
    pub fn dump_rows(&mut self) -> io::Result<Vec<OttRow>> {
        let body = self.rpc(tag::DUMP_ROWS, &[], tag::ROWS)?;
        protocol::decode_rows(&body)
    }

    /// The server's metrics registry, rendered.
    pub fn stats(&mut self) -> io::Result<String> {
        let body = self.rpc(tag::STATS, &[], tag::STATS_TEXT)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Asks the server to stop accepting and wind down.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.rpc(tag::SHUTDOWN, &[], tag::ACK)?;
        Ok(())
    }

    /// Drains every buffered update, in arrival order.
    pub fn take_updates(&mut self) -> Vec<Update> {
        self.updates.drain(..).collect()
    }
}
