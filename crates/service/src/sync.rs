//! Poison-tolerant locking for the serving layer.
//!
//! `Mutex::lock().expect("poisoned")` turns one panicked thread into a
//! cascade: every subsequent locker panics too, and a single bad reading
//! (or an injected shard crash — `ShardMsg::Crash` is part of the crash
//! test harness) could take the whole server down. All server state
//! guarded by mutexes here (counter sets, histograms, shard senders, the
//! connection writer map) stays internally consistent under panic at any
//! await-free point: updates are single calls on the guarded value, so
//! recovering the poisoned guard observes either the previous or the new
//! state, both valid. Recovering is therefore strictly better than
//! propagating the panic — degraded metrics beat a dead server.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquires `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_after_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock");
            panic!("poison the mutex");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        *lock_or_recover(&m) += 1;
        assert_eq!(*lock_or_recover(&m), 8);
    }
}
