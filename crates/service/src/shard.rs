//! Shard ingestion workers.
//!
//! The server routes each published reading to the shard owning its
//! object (`object.0 % shards` — all of one object's readings hit the
//! same shard, so per-object ordering is preserved). Each shard worker
//! owns one crash-consistent [`IngestStore`] (WAL + snapshots in its own
//! subdirectory) feeding a per-shard [`OnlineTracker`], and emits **row
//! deltas** to the flow engine: for every object whose rows changed, the
//! object's complete current row set plus the *affected start* — the
//! object's previous row frontier, before which nothing changed. The
//! engine uses the affected range to skip subscriptions whose query time
//! lies entirely before it.
//!
//! Workers are restartable mid-stream: the message receiver lives in an
//! `Arc<Mutex<…>>` owned by the server, so a crashed worker's queue
//! survives; the restarted worker recovers its tracker from the store
//! (snapshot + WAL replay), rebuilds its row mirror, and re-emits *full*
//! deltas (affected start −∞) so the engine reconverges no matter what
//! the crash interleaved.
//!
//! Each routed reading may carry a [`TraceChain`]; the worker stamps
//! the dequeue, WAL-durable and applied hops and forwards the chain on
//! the delta batch so the engine can finish the latency decomposition.
//! On an injected crash the worker dumps the flight recorder to
//! `postmortem.jsonl` in its store directory before exiting — the
//! always-on last-N-events window the crash suites assert on.

use crate::engine::EngineMsg;
use crate::metrics::ServiceMetrics;
use crate::sync::lock_or_recover;
use inflow_obs::{Counter, FlightEventKind, FlightRecorder, Hop, TraceChain};
use inflow_tracking::{
    IngestStore, ObjectId, OnlineTracker, OttRow, RawReading, StdFs, StoreError, StoreOptions,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One object's row change: its complete current row set (closed rows
/// plus the open run as an as-of-now row) and the time before which its
/// rows are unchanged.
#[derive(Debug, Clone)]
pub struct ObjectDelta {
    pub object: ObjectId,
    /// The object's rows, in time order. Replaces any previous set.
    pub rows: Vec<OttRow>,
    /// Rows at times `< affected_start` are identical to the previous
    /// delta's; a query whose end time precedes it is unaffected.
    /// `NEG_INFINITY` forces a full recompute (new object or recovery).
    pub affected_start: f64,
}

/// The deltas one ingest step produced, in applied-reading order.
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    pub shard: usize,
    pub deltas: Vec<ObjectDelta>,
    /// Trace context of the reading that produced this batch (absent
    /// for recovery re-emissions and trace-off servers).
    pub trace: Option<TraceChain>,
}

/// Messages a shard worker consumes.
pub enum ShardMsg {
    /// Ingest this shard's slice of one client `PUBLISH` batch (already
    /// routed here), with the batch's router-assigned trace context, if
    /// tracing is on. The whole slice is applied before a single delta
    /// batch is emitted, so the engine refreshes subscriptions once per
    /// publish rather than once per reading — and because the slicing
    /// follows client publish boundaries, the batching (and therefore
    /// the notification cadence) is deterministic under record/replay.
    Publish(Vec<RawReading>, Option<TraceChain>),
    /// Ack once every prior message is applied and its deltas are
    /// enqueued to the engine (the barrier protocol's first half).
    Flush(Sender<()>),
    /// Reply with the FNV-1a digest of this shard's tracker state (the
    /// canonical checkpoint encoding) — the replay verifier's per-shard
    /// hash point. A crashed worker never answers; callers time out and
    /// record the sentinel 0.
    StateHash(Sender<u64>),
    /// Simulate a crash: exit immediately without closing the store.
    Crash,
    /// Clean stop: snapshot the store, then ack and exit.
    Stop(Sender<()>),
}

/// Per-shard tracker/store configuration (a fresh tracker is built from
/// it on first start; recovery carries its own durable config).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    pub max_gap: f64,
    pub lateness: Option<f64>,
    pub sync_each_reading: bool,
    pub snapshot_every: Option<u64>,
    /// Seal closed rows into immutable segments every this many rows
    /// (`None` disables the segment tier for this shard).
    pub compact_every: Option<u64>,
    /// Run a budgeted scrub pass every this many ingested readings
    /// (`None` disables background scrubbing).
    pub scrub_every: Option<u64>,
}

impl ShardConfig {
    fn fresh_tracker(&self) -> OnlineTracker {
        match self.lateness {
            Some(l) => OnlineTracker::with_reorder(self.max_gap, l),
            None => OnlineTracker::new(self.max_gap),
        }
    }

    fn store_options(&self) -> StoreOptions {
        StoreOptions {
            snapshot_every: self.snapshot_every,
            sync_each_reading: self.sync_each_reading,
            compact_every: self.compact_every,
            scrub_every: self.scrub_every,
            ..StoreOptions::default()
        }
    }
}

/// Spawns one shard worker thread. `queue_depth` mirrors the channel's
/// backlog (incremented by the router on send, decremented here on
/// receive) since `mpsc` exposes no length.
#[allow(clippy::too_many_arguments)]
pub fn spawn_shard(
    index: usize,
    dir: PathBuf,
    rx: Arc<Mutex<Receiver<ShardMsg>>>,
    queue_depth: Arc<AtomicUsize>,
    engine_tx: Sender<EngineMsg>,
    metrics: Arc<ServiceMetrics>,
    flight: Arc<FlightRecorder>,
    cfg: ShardConfig,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("inflow-shard-{index}"))
        .spawn(move || run_shard(index, dir, rx, queue_depth, engine_tx, metrics, flight, cfg))
}

struct ShardState {
    index: usize,
    store: IngestStore<StdFs>,
    /// Per-object closed rows, mirrored incrementally from the tracker's
    /// grow-only closed-row log.
    mirror: HashMap<ObjectId, Vec<OttRow>>,
    /// How many closed rows are already mirrored.
    cursor: usize,
    /// Each object's current row frontier (max `te` across its rows);
    /// the next delta's `affected_start`.
    last_te: HashMap<ObjectId, f64>,
    engine_tx: Sender<EngineMsg>,
    metrics: Arc<ServiceMetrics>,
    flight: Arc<FlightRecorder>,
}

impl ShardState {
    /// The object's complete current row set: mirrored closed rows plus
    /// the open run, if any.
    fn rows_of(&self, object: ObjectId) -> Vec<OttRow> {
        let mut rows = self.mirror.get(&object).cloned().unwrap_or_default();
        if let Some(open) = self.store.tracker().open_run_row(object) {
            rows.push(open);
        }
        rows
    }

    /// Pulls newly closed rows from the tracker into the mirror.
    fn sync_mirror(&mut self) {
        let closed = self.store.tracker().closed();
        for row in closed.get(self.cursor..).unwrap_or_default() {
            self.mirror.entry(row.object).or_default().push(*row);
        }
        self.cursor = closed.len();
    }

    /// Emits one delta batch for `objects` (deduplicated, first-seen
    /// order). `full` forces `affected_start = −∞` (recovery re-emission).
    fn emit(&mut self, objects: &[ObjectId], full: bool, trace: Option<TraceChain>) {
        let mut seen = std::collections::HashSet::new();
        let mut deltas = Vec::new();
        for &object in objects {
            if !seen.insert(object) {
                continue;
            }
            let rows = self.rows_of(object);
            let affected_start = if full {
                f64::NEG_INFINITY
            } else {
                self.last_te.get(&object).copied().unwrap_or(f64::NEG_INFINITY)
            };
            let frontier = rows.iter().map(|r| r.te).fold(f64::NEG_INFINITY, f64::max);
            self.last_te.insert(object, frontier);
            deltas.push(ObjectDelta { object, rows, affected_start });
        }
        if deltas.is_empty() {
            return;
        }
        self.metrics.add(Counter::ServeDeltasEmitted, 1);
        self.metrics.add(Counter::ServeDeltaObjects, deltas.len() as u64);
        self.metrics.observe_delta_batch(deltas.len() as u64);
        let trace_id = trace.map_or(0, |t| t.id);
        self.flight.record(
            FlightEventKind::DeltaEmitted,
            trace_id,
            self.index as u64,
            deltas.len() as u64,
        );
        // A closed engine only happens during shutdown; drop silently.
        let _ =
            self.engine_tx.send(EngineMsg::Delta(DeltaBatch { shard: self.index, deltas, trace }));
    }

    /// Folds segment-tier activity (compactions, scrub passes,
    /// quarantines the store performed while ingesting) into the service
    /// counters and the flight recorder.
    fn drain_tier_events(&mut self) {
        let ev = self.store.take_tier_events();
        if ev.is_empty() {
            return;
        }
        self.metrics.add(Counter::StoreCompactions, ev.compactions);
        self.metrics.add(Counter::SegmentsSealed, ev.segments_sealed);
        self.metrics.add(Counter::SegmentsMerged, ev.segments_merged);
        self.metrics.add(Counter::ScrubPasses, ev.scrub_passes);
        self.metrics.add(Counter::ScrubCorruptions, ev.scrub_corruptions);
        self.metrics.add(Counter::SegmentsQuarantined, ev.segments_quarantined);
        let shard = self.index as u64;
        if ev.compactions > 0 {
            self.flight.record(FlightEventKind::CompactionRun, 0, shard, ev.segments_sealed);
        }
        if ev.scrub_passes > 0 {
            self.flight.record(FlightEventKind::ScrubPass, 0, shard, ev.segments_scrubbed);
        }
        if ev.segments_quarantined > 0 {
            let rows = self.store.manifest().quarantined_rows();
            self.flight.record(FlightEventKind::SegmentQuarantined, 0, shard, rows);
        }
    }

    /// Ingests one publish slice: applies every reading, then emits one
    /// delta batch covering all objects the slice touched.
    fn ingest(&mut self, batch: Vec<RawReading>, mut trace: Option<TraceChain>) {
        let mut applied: Vec<ObjectId> = Vec::new();
        for r in batch {
            self.ingest_one(r, &mut trace, &mut applied);
        }
        if applied.is_empty() {
            return;
        }
        self.sync_mirror();
        self.emit(&applied, false, trace);
    }

    /// Applies a single reading to the store, pushing the objects it
    /// changed onto `applied` (emission is the caller's job, once per
    /// publish slice).
    fn ingest_one(
        &mut self,
        r: RawReading,
        trace: &mut Option<TraceChain>,
        applied: &mut Vec<ObjectId>,
    ) {
        let before = applied.len();
        let clock = self.flight.clock().clone();
        let result = self.store.ingest_marked(
            r,
            &mut || {
                if let Some(chain) = trace.as_mut() {
                    chain.stamp(Hop::WalAppended, clock.now_ns());
                }
            },
            &mut |a| applied.push(a.object),
        );
        match result {
            Ok(()) => {}
            // Strict-mode rejection: durably logged, deterministically
            // refused — count it and move on, like recovery replay does.
            Err(StoreError::Stream(_)) => {
                self.metrics.add(Counter::ServeReadingsRejected, 1);
                self.flight.record(
                    FlightEventKind::ReadingRejected,
                    trace.as_ref().map_or(0, |t| t.id),
                    self.index as u64,
                    u64::from(r.object.0),
                );
            }
            Err(e) => panic!("shard {} store failed: {e}", self.index),
        }
        self.drain_tier_events();
        if applied.len() == before {
            return;
        }
        if let Some(chain) = trace.as_mut() {
            chain.stamp(Hop::Applied, clock.now_ns());
        }
        self.metrics.add(Counter::ServeReadingsApplied, (applied.len() - before) as u64);
        self.flight.record(
            FlightEventKind::ReadingApplied,
            trace.as_ref().map_or(0, |t| t.id),
            self.index as u64,
            u64::from(r.object.0),
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_shard(
    index: usize,
    dir: PathBuf,
    rx: Arc<Mutex<Receiver<ShardMsg>>>,
    queue_depth: Arc<AtomicUsize>,
    engine_tx: Sender<EngineMsg>,
    metrics: Arc<ServiceMetrics>,
    flight: Arc<FlightRecorder>,
    cfg: ShardConfig,
) {
    let (store, report) = IngestStore::open(StdFs, &dir, cfg.fresh_tracker(), cfg.store_options())
        .unwrap_or_else(|e| panic!("shard {index}: opening store {}: {e}", dir.display()));
    let mut state = ShardState {
        index,
        store,
        mirror: HashMap::new(),
        cursor: 0,
        last_te: HashMap::new(),
        engine_tx,
        metrics,
        flight,
    };
    // A restarted (or re-opened) shard rebuilds its mirror from the
    // recovered tracker and re-emits every object's rows as a full delta:
    // the engine converges to the recovered state regardless of which
    // deltas the crash swallowed.
    state.sync_mirror();
    if !report.created {
        // Closed rows live in the mirror; objects with only an open run
        // surface through an as-of-now state snapshot.
        let mut objects: Vec<ObjectId> = state.mirror.keys().copied().collect();
        if let Ok(ott) = state.store.tracker().snapshot() {
            objects.extend(ott.records().iter().map(|r| r.object));
        }
        objects.sort_unstable();
        objects.dedup();
        state.emit(&objects, true, None);
    }

    loop {
        let msg = {
            let guard = lock_or_recover(&rx);
            match guard.recv() {
                Ok(m) => m,
                Err(_) => break, // server dropped the sender: shut down
            }
        };
        // Queue depth is measured in readings, not messages, so the
        // backpressure bound keeps its meaning under batched publishes.
        let weight = match &msg {
            ShardMsg::Publish(batch, _) => batch.len().max(1),
            _ => 1,
        };
        let depth = queue_depth.fetch_sub(weight, Ordering::Relaxed).saturating_sub(weight);
        state.metrics.observe_queue_depth(depth as u64);
        match msg {
            ShardMsg::Publish(batch, mut trace) => {
                if let Some(chain) = trace.as_mut() {
                    chain.stamp(Hop::ShardDequeue, state.flight.clock().now_ns());
                }
                state.ingest(batch, trace);
            }
            ShardMsg::Flush(ack) => {
                let _ = ack.send(());
            }
            ShardMsg::StateHash(reply) => {
                let _ = reply.send(state.store.tracker().state_hash());
            }
            // No snapshot, no sync: the WAL is the truth. Dump the
            // flight recorder first so the postmortem shows what this
            // worker (and the rest of the pipeline) did right before.
            ShardMsg::Crash => {
                state.flight.record(FlightEventKind::ShardCrash, 0, index as u64, 0);
                let _ = std::fs::write(dir.join("postmortem.jsonl"), state.flight.dump_jsonl());
                return;
            }
            ShardMsg::Stop(ack) => {
                let _ = state.store.snapshot();
                let _ = ack.send(());
                return;
            }
        }
    }
    let _ = state.store.snapshot();
}
