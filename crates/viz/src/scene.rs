//! Domain-level rendering: floor plans, deployments, trajectories,
//! uncertainty regions, and query results.

use crate::canvas::SvgCanvas;
use inflow_geometry::{Point, Region};
use inflow_indoor::{CellKind, FloorPlan, PoiId};
use inflow_uncertainty::UncertaintyRegion;
use inflow_workload::TimedPath;

/// Colours and sizes used by the [`SceneRenderer`]. All fields are plain
/// CSS colour strings so callers can theme freely.
#[derive(Debug, Clone)]
pub struct Style {
    pub room_fill: String,
    pub hallway_fill: String,
    pub wall_stroke: String,
    pub poi_fill: String,
    pub highlight_poi_fill: String,
    pub device_fill: String,
    pub device_range_stroke: String,
    pub trajectory_stroke: String,
    pub ur_fill: String,
    /// Pixels per metre.
    pub scale: f64,
    /// Raster cells per metre for uncertainty regions.
    pub ur_resolution: f64,
    /// Whether to draw cell and POI name labels.
    pub labels: bool,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            room_fill: "#f3f0e8".into(),
            hallway_fill: "#e2e8ee".into(),
            wall_stroke: "#555555".into(),
            poi_fill: "rgba(70,130,180,0.35)".into(),
            highlight_poi_fill: "rgba(220,90,40,0.55)".into(),
            device_fill: "#cc3333".into(),
            device_range_stroke: "#cc3333".into(),
            trajectory_stroke: "#2a7d2a".into(),
            ur_fill: "rgba(160,60,200,0.30)".into(),
            scale: 8.0,
            ur_resolution: 4.0,
            labels: false,
        }
    }
}

/// Builds an SVG scene for one floor plan, layering optional overlays.
pub struct SceneRenderer<'a> {
    plan: &'a FloorPlan,
    style: Style,
    canvas: SvgCanvas,
    highlighted: Vec<PoiId>,
}

impl<'a> SceneRenderer<'a> {
    /// Creates a renderer with the default style.
    pub fn new(plan: &'a FloorPlan) -> SceneRenderer<'a> {
        SceneRenderer::with_style(plan, Style::default())
    }

    /// Creates a renderer with a custom style.
    pub fn with_style(plan: &'a FloorPlan, style: Style) -> SceneRenderer<'a> {
        let canvas = SvgCanvas::new(plan.mbr().expanded(1.0), style.scale);
        let mut r = SceneRenderer { plan, style, canvas, highlighted: Vec::new() };
        r.draw_base();
        r
    }

    fn draw_base(&mut self) {
        for cell in self.plan.cells() {
            let fill = match cell.kind {
                CellKind::Room => &self.style.room_fill,
                CellKind::Hallway => &self.style.hallway_fill,
            };
            self.canvas.polygon(cell.footprint(), fill, &self.style.wall_stroke, 1.0);
            if self.style.labels {
                self.canvas.text(cell.footprint().centroid(), &cell.name, 7.0, "#888888");
            }
        }
        for door in self.plan.doors() {
            self.canvas.circle(door.position, 0.3, "#ffffff", &self.style.wall_stroke);
        }
    }

    /// Marks POIs to draw in the highlight colour (e.g. a query result).
    pub fn highlight_pois(mut self, pois: &[PoiId]) -> Self {
        self.highlighted.extend_from_slice(pois);
        self
    }

    /// Draws all POIs (highlighted ones in the highlight colour).
    pub fn draw_pois(mut self) -> Self {
        for poi in self.plan.pois() {
            let fill = if self.highlighted.contains(&poi.id) {
                &self.style.highlight_poi_fill
            } else {
                &self.style.poi_fill
            };
            self.canvas.polygon(poi.extent(), fill, "none", 0.0);
            if self.style.labels {
                self.canvas.text(poi.extent().centroid(), &poi.name, 6.0, "#333333");
            }
        }
        self
    }

    /// Draws every device with its detection range.
    pub fn draw_devices(mut self) -> Self {
        for dev in self.plan.devices() {
            self.canvas.circle(dev.position, dev.range, "none", &self.style.device_range_stroke);
            self.canvas.circle(dev.position, 0.25, &self.style.device_fill, "none");
        }
        self
    }

    /// Overlays an uncertainty region (rasterized).
    pub fn draw_uncertainty_region(mut self, ur: &UncertaintyRegion) -> Self {
        if !ur.is_empty() {
            self.canvas.region(ur, self.style.ur_resolution, &self.style.ur_fill);
        }
        self
    }

    /// Overlays any region (rasterized) in a custom colour.
    pub fn draw_region(mut self, region: &(impl Region + ?Sized), fill: &str) -> Self {
        self.canvas.region(region, self.style.ur_resolution, fill);
        self
    }

    /// Overlays a ground-truth trajectory.
    pub fn draw_trajectory(mut self, path: &TimedPath) -> Self {
        let pts: Vec<Point> = path.knots().iter().map(|&(_, p)| p).collect();
        self.canvas.polyline(&pts, &self.style.trajectory_stroke, 1.2);
        self
    }

    /// Finalizes the SVG document.
    pub fn render(self) -> String {
        self.canvas.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Polygon;
    use inflow_indoor::FloorPlanBuilder;
    use inflow_tracking::{ObjectId, ObjectTrackingTable, OttRow};
    use inflow_uncertainty::{IndoorContext, UrConfig, UrEngine};
    use std::sync::Arc;

    fn plan() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        let hall = b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 4.0)),
        );
        let room = b.add_cell(
            "room",
            CellKind::Room,
            Polygon::rectangle(Point::new(4.0, 4.0), Point::new(12.0, 10.0)),
        );
        b.add_door("d", Point::new(8.0, 4.0), hall, room);
        b.add_device("dev0", Point::new(3.0, 2.0), 1.0);
        b.add_device("dev1", Point::new(15.0, 2.0), 1.0);
        b.add_poi("poi", Polygon::rectangle(Point::new(5.0, 5.0), Point::new(11.0, 9.0)));
        b.build().unwrap()
    }

    #[test]
    fn base_scene_has_cells_and_doors() {
        let plan = plan();
        let svg = SceneRenderer::new(&plan).render();
        assert_eq!(svg.matches("<polygon").count(), 2); // two cells
        assert!(svg.contains("<circle")); // the door marker
    }

    #[test]
    fn pois_and_devices_layer_on_top() {
        let plan = plan();
        let svg = SceneRenderer::new(&plan).draw_pois().draw_devices().render();
        assert_eq!(svg.matches("<polygon").count(), 3); // cells + poi
                                                        // 2 devices × (range ring + dot) + 1 door.
        assert_eq!(svg.matches("<circle").count(), 5);
    }

    #[test]
    fn highlighted_poi_uses_highlight_fill() {
        let plan = plan();
        let poi = plan.pois()[0].id;
        let svg = SceneRenderer::new(&plan).highlight_pois(&[poi]).draw_pois().render();
        assert!(svg.contains("rgba(220,90,40,0.55)"));
    }

    #[test]
    fn uncertainty_region_rasterizes() {
        let plan = plan();
        let ctx = Arc::new(IndoorContext::new(plan));
        let ott = ObjectTrackingTable::from_rows(vec![
            OttRow { object: ObjectId(0), device: inflow_indoor::DeviceId(0), ts: 0.0, te: 2.0 },
            OttRow { object: ObjectId(0), device: inflow_indoor::DeviceId(1), ts: 20.0, te: 22.0 },
        ])
        .unwrap();
        let engine = UrEngine::new(ctx.clone(), UrConfig { vmax: 1.1, ..UrConfig::default() });
        let state = ott.state_at(ObjectId(0), 10.0).unwrap();
        let ur = engine.snapshot_ur(&ott, state, 10.0);
        let svg = SceneRenderer::new(ctx.plan()).draw_uncertainty_region(&ur).render();
        assert!(svg.matches("<rect").count() > 3, "UR should rasterize to row runs");
    }

    #[test]
    fn trajectory_draws_polyline() {
        let plan = plan();
        let mut path = TimedPath::new();
        path.push(0.0, Point::new(1.0, 2.0));
        path.push(10.0, Point::new(12.0, 2.0));
        path.push(20.0, Point::new(8.0, 7.0));
        let svg = SceneRenderer::new(&plan).draw_trajectory(&path).render();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn labels_can_be_enabled() {
        let plan = plan();
        let style = Style { labels: true, ..Style::default() };
        let svg = SceneRenderer::with_style(&plan, style).draw_pois().render();
        assert!(svg.contains("<text"));
        assert!(svg.contains(">hall<"));
    }
}
