//! A minimal SVG writer with world coordinates.
//!
//! The geometry crate uses a mathematical y-up coordinate system in
//! metres; SVG is y-down in pixels. [`SvgCanvas`] owns that mapping: it is
//! constructed with the world window to display and a pixel scale, and
//! every drawing call takes world coordinates.

use inflow_geometry::{Mbr, Point, Polygon};
use std::fmt::Write as _;

/// A drawing surface accumulating SVG elements.
#[derive(Debug)]
pub struct SvgCanvas {
    window: Mbr,
    scale: f64,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas showing `window` (world metres) at `scale` pixels
    /// per metre, with a small outer margin.
    pub fn new(window: Mbr, scale: f64) -> SvgCanvas {
        assert!(!window.is_empty(), "cannot render an empty window");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        SvgCanvas { window, scale, body: String::new() }
    }

    /// The world window being rendered.
    pub fn window(&self) -> Mbr {
        self.window
    }

    const MARGIN_PX: f64 = 10.0;

    fn sx(&self, x: f64) -> f64 {
        (x - self.window.lo.x) * self.scale + Self::MARGIN_PX
    }

    fn sy(&self, y: f64) -> f64 {
        // Flip: world y-up → SVG y-down.
        (self.window.hi.y - y) * self.scale + Self::MARGIN_PX
    }

    fn width_px(&self) -> f64 {
        self.window.width() * self.scale + 2.0 * Self::MARGIN_PX
    }

    fn height_px(&self) -> f64 {
        self.window.height() * self.scale + 2.0 * Self::MARGIN_PX
    }

    /// Draws a polygon with the given fill and stroke (any CSS colour;
    /// `"none"` disables).
    pub fn polygon(&mut self, poly: &Polygon, fill: &str, stroke: &str, stroke_width: f64) {
        let mut points = String::new();
        for v in poly.vertices() {
            let _ = write!(points, "{:.2},{:.2} ", self.sx(v.x), self.sy(v.y));
        }
        let _ = writeln!(
            self.body,
            r#"  <polygon points="{}" fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width:.2}"/>"#,
            points.trim_end()
        );
    }

    /// Draws a rectangle.
    pub fn rect(&mut self, mbr: &Mbr, fill: &str, stroke: &str, stroke_width: f64) {
        if mbr.is_empty() {
            return;
        }
        let _ = writeln!(
            self.body,
            r#"  <rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width:.2}"/>"#,
            self.sx(mbr.lo.x),
            self.sy(mbr.hi.y),
            mbr.width() * self.scale,
            mbr.height() * self.scale,
        );
    }

    /// Draws a circle (world radius).
    pub fn circle(&mut self, center: Point, radius: f64, fill: &str, stroke: &str) {
        let _ = writeln!(
            self.body,
            r#"  <circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{fill}" stroke="{stroke}"/>"#,
            self.sx(center.x),
            self.sy(center.y),
            radius * self.scale,
        );
    }

    /// Draws a polyline through the points.
    pub fn polyline(&mut self, pts: &[Point], stroke: &str, stroke_width: f64) {
        if pts.len() < 2 {
            return;
        }
        let mut points = String::new();
        for p in pts {
            let _ = write!(points, "{:.2},{:.2} ", self.sx(p.x), self.sy(p.y));
        }
        let _ = writeln!(
            self.body,
            r#"  <polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{stroke_width:.2}"/>"#,
            points.trim_end()
        );
    }

    /// Draws a text label anchored at a world point.
    pub fn text(&mut self, at: Point, content: &str, size_px: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"  <text x="{:.2}" y="{:.2}" font-size="{size_px:.1}" font-family="sans-serif" fill="{fill}">{}</text>"#,
            self.sx(at.x),
            self.sy(at.y),
            escape(content),
        );
    }

    /// Rasterizes an arbitrary region by membership sampling: filled cells
    /// where the region covers the cell centre. `cells_per_metre` controls
    /// fidelity; the output stays compact because runs of covered cells in
    /// a row are merged into single rectangles.
    pub fn region(
        &mut self,
        region: &(impl inflow_geometry::Region + ?Sized),
        cells_per_metre: f64,
        fill: &str,
    ) {
        let window = region.mbr().intersection(&self.window);
        if window.is_empty() {
            return;
        }
        let step = 1.0 / cells_per_metre;
        let nx = (window.width() / step).ceil() as usize;
        let ny = (window.height() / step).ceil() as usize;
        for j in 0..ny {
            let y0 = window.lo.y + j as f64 * step;
            let cy = y0 + step / 2.0;
            let mut run_start: Option<usize> = None;
            for i in 0..=nx {
                let inside = i < nx && {
                    let cx = window.lo.x + i as f64 * step + step / 2.0;
                    region.contains(Point::new(cx, cy))
                };
                match (inside, run_start) {
                    (true, None) => run_start = Some(i),
                    (false, Some(start)) => {
                        let x0 = window.lo.x + start as f64 * step;
                        let x1 = window.lo.x + i as f64 * step;
                        let run = Mbr::new(Point::new(x0, y0), Point::new(x1, y0 + step));
                        self.rect(&run, fill, "none", 0.0);
                        run_start = None;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width_px(),
            self.height_px(),
            self.width_px(),
            self.height_px(),
            self.body,
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Circle;

    fn canvas() -> SvgCanvas {
        SvgCanvas::new(Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0)), 10.0)
    }

    #[test]
    fn document_structure() {
        let svg = canvas().finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("width=\"120\"")); // 10 m × 10 px + 2×10 margin
        assert!(svg.contains("height=\"70\""));
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut c = canvas();
        // World (0, 0) is the bottom-left → SVG y = height - margin.
        c.circle(Point::new(0.0, 0.0), 1.0, "red", "none");
        let svg = c.finish();
        assert!(svg.contains(r#"cx="10.00" cy="60.00""#), "{svg}");
    }

    #[test]
    fn polygon_and_polyline_emit_points() {
        let mut c = canvas();
        c.polygon(
            &Polygon::rectangle(Point::new(1.0, 1.0), Point::new(3.0, 2.0)),
            "blue",
            "black",
            1.0,
        );
        c.polyline(&[Point::new(0.0, 0.0), Point::new(5.0, 5.0)], "green", 0.5);
        let svg = c.finish();
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("stroke=\"green\""));
    }

    #[test]
    fn text_is_escaped() {
        let mut c = canvas();
        c.text(Point::new(1.0, 1.0), "a<b & c>d", 8.0, "black");
        let svg = c.finish();
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
    }

    #[test]
    fn region_rasterization_merges_runs() {
        let mut c = canvas();
        let disk = Circle::new(Point::new(5.0, 2.5), 2.0);
        c.region(&disk, 4.0, "rgba(255,0,0,0.3)");
        let svg = c.finish();
        // Run-length merging: far fewer rects than covered cells
        // (a 4×4-per-metre disk of radius 2 covers ~200 cells).
        let rects = svg.matches("<rect").count();
        assert!(rects > 4, "disk should produce several row runs: {rects}");
        assert!(rects < 40, "runs should be merged per row: {rects}");
    }

    #[test]
    fn region_outside_window_draws_nothing() {
        let mut c = canvas();
        let disk = Circle::new(Point::new(100.0, 100.0), 2.0);
        c.region(&disk, 4.0, "red");
        let svg = c.finish();
        assert!(!svg.contains("<rect"));
    }

    #[test]
    fn degenerate_polyline_is_skipped() {
        let mut c = canvas();
        c.polyline(&[Point::new(1.0, 1.0)], "red", 1.0);
        assert!(!c.finish().contains("<polyline"));
    }
}
