//! SVG visualization of indoor flow analytics.
//!
//! Uncertainty regions are hard to reason about from numbers alone; this
//! crate renders floor plans, device deployments, POIs, trajectories,
//! uncertainty regions, and query results to standalone SVG documents for
//! visual debugging and for figures in reports.
//!
//! The renderer is dependency-free: [`SvgCanvas`] is a tiny SVG writer
//! with a y-up world-coordinate system (matching the geometry crate), and
//! [`SceneRenderer`] layers the domain objects on top.
//!
//! ```
//! use inflow_viz::{SceneRenderer, Style};
//! # use inflow_geometry::{Point, Polygon};
//! # use inflow_indoor::{CellKind, FloorPlanBuilder};
//! let mut b = FloorPlanBuilder::new();
//! b.add_cell("hall", CellKind::Hallway,
//!     Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 4.0)));
//! b.add_device("dev", Point::new(5.0, 2.0), 1.0);
//! let plan = b.build().unwrap();
//! let svg = SceneRenderer::new(&plan).render();
//! assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
//! ```

pub mod canvas;
pub mod scene;

pub use canvas::SvgCanvas;
pub use scene::{SceneRenderer, Style};
