//! Indoor space model for symbolic tracking analytics.
//!
//! Indoor spaces are characterized by entities — rooms, hallways, doors —
//! that both enable and constrain movement (paper §1). This crate models:
//!
//! * [`Cell`]s: the partitions of a floor plan (rooms and hallway
//!   sections), each with a polygonal footprint;
//! * [`Door`]s connecting pairs of cells — the only way to move between
//!   cells;
//! * [`Device`]s: proximity-detection devices (RFID readers, Bluetooth
//!   radios) with circular detection ranges;
//! * [`Poi`]s: the query targets, polygons of interest (shops, gates,
//!   exhibition stands);
//! * the [`FloorPlan`] aggregate with point location, and
//! * the [`DistanceOracle`] computing *indoor walking distances* — the
//!   door-constrained shortest paths that drive both the movement simulator
//!   and the paper's indoor topology check (§3.3).

pub mod building;
pub mod device;
pub mod distance;
pub mod floorplan;
pub mod ids;
pub mod io;
pub mod poi;

pub use building::{
    Building, BuildingDistanceOracle, BuildingError, BuildingPoint, Connector, FloorId,
};
pub use device::Device;
pub use distance::{DistanceOracle, Route};
pub use floorplan::{Cell, CellKind, Door, FloorPlan, FloorPlanBuilder, FloorPlanError};
pub use ids::{CellId, DeviceId, DoorId, PoiId};
pub use io::{read_plan, write_plan, PlanIoError};
pub use poi::Poi;
