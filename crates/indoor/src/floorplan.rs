//! Floor plans: cells, doors, devices, POIs, and point location.

use crate::device::Device;
use crate::ids::{CellId, DeviceId, DoorId, PoiId};
use crate::poi::Poi;
use inflow_geometry::{Mbr, Point, Polygon};

/// Maximum distance a door may sit from each of the cells it connects.
///
/// Doors are modelled as points on the shared wall between two cells; data
/// digitized from drawings is rarely exact, so a small slack is tolerated.
pub const DOOR_PLACEMENT_TOLERANCE: f64 = 0.3;

/// What a floor-plan cell is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// An enclosed room.
    Room,
    /// A section of hallway / corridor / concourse.
    Hallway,
}

/// A partition of the floor plan: the unit of the indoor topology.
///
/// Objects can move freely within a cell but can only move between cells
/// through [`Door`]s — the constraint the paper's §3.3 topology check
/// exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub id: CellId,
    pub name: String,
    pub kind: CellKind,
    footprint: Polygon,
}

impl Cell {
    /// The cell's polygonal footprint.
    pub fn footprint(&self) -> &Polygon {
        &self.footprint
    }

    /// Whether the cell covers `p` (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.footprint.contains(p)
    }
}

/// A door connecting exactly two cells, modelled as a point on their
/// shared wall.
#[derive(Debug, Clone, PartialEq)]
pub struct Door {
    pub id: DoorId,
    pub name: String,
    pub position: Point,
    /// The two cells the door connects (order is not meaningful).
    pub cells: (CellId, CellId),
}

/// Errors raised while building a [`FloorPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FloorPlanError {
    /// A door referenced a cell id that has not been added.
    UnknownCell(CellId),
    /// A door connected a cell to itself.
    SelfLoopDoor { door: String },
    /// A door's position is too far from one of its cells.
    DoorNotOnCell { door: String, cell: CellId, distance: f64 },
    /// The plan has no cells.
    NoCells,
}

impl std::fmt::Display for FloorPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FloorPlanError::UnknownCell(c) => write!(f, "door references unknown cell {c}"),
            FloorPlanError::SelfLoopDoor { door } => {
                write!(f, "door {door} connects a cell to itself")
            }
            FloorPlanError::DoorNotOnCell { door, cell, distance } => write!(
                f,
                "door {door} is {distance:.2} m from cell {cell} (tolerance {DOOR_PLACEMENT_TOLERANCE})"
            ),
            FloorPlanError::NoCells => write!(f, "floor plan has no cells"),
        }
    }
}

impl std::error::Error for FloorPlanError {}

/// Incrementally assembles a [`FloorPlan`], validating door placement.
#[derive(Debug, Default)]
pub struct FloorPlanBuilder {
    cells: Vec<Cell>,
    doors: Vec<Door>,
    devices: Vec<Device>,
    pois: Vec<Poi>,
    errors: Vec<FloorPlanError>,
}

impl FloorPlanBuilder {
    /// Creates an empty builder.
    pub fn new() -> FloorPlanBuilder {
        FloorPlanBuilder::default()
    }

    /// Adds a cell and returns its id.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        footprint: Polygon,
    ) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell { id, name: name.into(), kind, footprint });
        id
    }

    /// Adds a door between `a` and `b` at `position`. Validation is
    /// deferred to [`FloorPlanBuilder::build`].
    pub fn add_door(
        &mut self,
        name: impl Into<String>,
        position: Point,
        a: CellId,
        b: CellId,
    ) -> DoorId {
        let id = DoorId(self.doors.len() as u32);
        let name = name.into();
        if a == b {
            self.errors.push(FloorPlanError::SelfLoopDoor { door: name.clone() });
        }
        self.doors.push(Door { id, name, position, cells: (a, b) });
        id
    }

    /// Adds a proximity-detection device.
    pub fn add_device(&mut self, name: impl Into<String>, position: Point, range: f64) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device::new(id, name, position, range));
        id
    }

    /// Adds a POI.
    pub fn add_poi(&mut self, name: impl Into<String>, extent: Polygon) -> PoiId {
        let id = PoiId(self.pois.len() as u32);
        self.pois.push(Poi::new(id, name, extent));
        id
    }

    /// Validates the plan and builds the immutable [`FloorPlan`].
    pub fn build(mut self) -> Result<FloorPlan, FloorPlanError> {
        if let Some(err) = self.errors.drain(..).next() {
            return Err(err);
        }
        if self.cells.is_empty() {
            return Err(FloorPlanError::NoCells);
        }
        for door in &self.doors {
            for cell_id in [door.cells.0, door.cells.1] {
                let cell =
                    self.cells.get(cell_id.index()).ok_or(FloorPlanError::UnknownCell(cell_id))?;
                let dist = if cell.contains(door.position) {
                    0.0
                } else {
                    cell.footprint
                        .edges()
                        .map(|e| e.distance_to_point(door.position))
                        .fold(f64::INFINITY, f64::min)
                };
                if dist > DOOR_PLACEMENT_TOLERANCE {
                    return Err(FloorPlanError::DoorNotOnCell {
                        door: door.name.clone(),
                        cell: cell_id,
                        distance: dist,
                    });
                }
            }
        }
        let mut doors_by_cell = vec![Vec::new(); self.cells.len()];
        for door in &self.doors {
            doors_by_cell[door.cells.0.index()].push(door.id);
            doors_by_cell[door.cells.1.index()].push(door.id);
        }
        let mbr = self.cells.iter().fold(Mbr::EMPTY, |m, c| m.union(&c.footprint.mbr()));
        let locator = CellLocator::build(&self.cells, mbr);
        Ok(FloorPlan {
            cells: self.cells,
            doors: self.doors,
            devices: self.devices,
            pois: self.pois,
            doors_by_cell,
            locator,
            mbr,
        })
    }
}

/// An immutable indoor floor plan.
#[derive(Debug)]
pub struct FloorPlan {
    cells: Vec<Cell>,
    doors: Vec<Door>,
    devices: Vec<Device>,
    pois: Vec<Poi>,
    doors_by_cell: Vec<Vec<DoorId>>,
    locator: CellLocator,
    mbr: Mbr,
}

impl FloorPlan {
    /// All cells, indexed by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// A cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// All doors, indexed by [`DoorId`].
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// A door by id.
    pub fn door(&self, id: DoorId) -> &Door {
        &self.doors[id.index()]
    }

    /// All deployed devices, indexed by [`DeviceId`].
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// A device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// All POIs, indexed by [`PoiId`].
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// A POI by id.
    pub fn poi(&self, id: PoiId) -> &Poi {
        &self.pois[id.index()]
    }

    /// The doors on the boundary of `cell`.
    pub fn doors_of_cell(&self, cell: CellId) -> &[DoorId] {
        &self.doors_by_cell[cell.index()]
    }

    /// Cells reachable from `cell` through one door.
    pub fn neighbors(&self, cell: CellId) -> impl Iterator<Item = CellId> + '_ {
        self.doors_of_cell(cell).iter().map(move |&d| {
            let door = self.door(d);
            if door.cells.0 == cell {
                door.cells.1
            } else {
                door.cells.0
            }
        })
    }

    /// The cell covering `p`, if any. The result is deterministic; for a
    /// point exactly on a shared wall, which adjoining cell is returned is
    /// an implementation detail — use [`FloorPlan::locate_all`] when all
    /// adjoining cells matter.
    pub fn locate(&self, p: Point) -> Option<CellId> {
        self.locator.locate(&self.cells, p)
    }

    /// All cells covering `p`, boundary-inclusive. A point strictly inside
    /// a cell yields one id; a point on a shared wall or door yields every
    /// adjoining cell — callers resolving indoor distances must consider
    /// all of them.
    pub fn locate_all(&self, p: Point) -> Vec<CellId> {
        self.locator
            .candidates(p)
            .iter()
            .copied()
            .filter(|&id| self.cells[id.index()].contains(p))
            .collect()
    }

    /// Bounding rectangle of the whole plan.
    pub fn mbr(&self) -> Mbr {
        self.mbr
    }
}

/// Uniform-grid point-location index over cell footprints.
///
/// Point location is on the hot path of the topology-constrained area
/// integrator (one lookup per sample point), so a linear scan over cells is
/// replaced with a bucket grid storing, per bucket, the cells whose MBRs
/// intersect it.
#[derive(Debug)]
struct CellLocator {
    origin: Point,
    inv_cell: f64,
    nx: usize,
    ny: usize,
    buckets: Vec<Vec<CellId>>,
}

impl CellLocator {
    fn build(cells: &[Cell], mbr: Mbr) -> CellLocator {
        let w = mbr.width().max(1e-6);
        let h = mbr.height().max(1e-6);
        // Aim for a few cells per bucket: grid of ~4x the cell count.
        let target = (cells.len().max(1) * 4) as f64;
        let aspect = w / h;
        let ny = ((target / aspect).sqrt().ceil() as usize).clamp(1, 512);
        let nx = ((target / ny as f64).ceil() as usize).clamp(1, 512);
        let bucket_w = w / nx as f64;
        let bucket_h = h / ny as f64;
        let cell_size = bucket_w.max(bucket_h);
        // Use a square bucket of the larger pitch to keep indexing simple.
        let nx = (w / cell_size).ceil() as usize + 1;
        let ny = (h / cell_size).ceil() as usize + 1;
        let mut buckets = vec![Vec::new(); nx * ny];
        for cell in cells {
            let m = cell.footprint().mbr();
            let i0 = (((m.lo.x - mbr.lo.x) / cell_size).floor() as isize).clamp(0, nx as isize - 1);
            let i1 = (((m.hi.x - mbr.lo.x) / cell_size).floor() as isize).clamp(0, nx as isize - 1);
            let j0 = (((m.lo.y - mbr.lo.y) / cell_size).floor() as isize).clamp(0, ny as isize - 1);
            let j1 = (((m.hi.y - mbr.lo.y) / cell_size).floor() as isize).clamp(0, ny as isize - 1);
            for j in j0..=j1 {
                for i in i0..=i1 {
                    buckets[j as usize * nx + i as usize].push(cell.id);
                }
            }
        }
        CellLocator { origin: mbr.lo, inv_cell: 1.0 / cell_size, nx, ny, buckets }
    }

    /// The candidate cells of `p`'s bucket (MBR-level filter only).
    fn candidates(&self, p: Point) -> &[CellId] {
        let i = ((p.x - self.origin.x) * self.inv_cell).floor();
        let j = ((p.y - self.origin.y) * self.inv_cell).floor();
        if i < 0.0 || j < 0.0 {
            return &[];
        }
        let (i, j) = (i as usize, j as usize);
        if i >= self.nx || j >= self.ny {
            return &[];
        }
        &self.buckets[j * self.nx + i]
    }

    fn locate(&self, cells: &[Cell], p: Point) -> Option<CellId> {
        let i = ((p.x - self.origin.x) * self.inv_cell).floor();
        let j = ((p.y - self.origin.y) * self.inv_cell).floor();
        if i < 0.0 || j < 0.0 {
            return None;
        }
        let (i, j) = (i as usize, j as usize);
        if i >= self.nx || j >= self.ny {
            return None;
        }
        let bucket = &self.buckets[j * self.nx + i];
        // Fast ray-cast pass first; points exactly on shared walls (door
        // positions, trajectory waypoints) can be missed by it, so fall
        // back to the boundary-inclusive test before giving up.
        bucket
            .iter()
            .copied()
            .find(|&id| cells[id.index()].footprint().contains_fast(p))
            .or_else(|| bucket.iter().copied().find(|&id| cells[id.index()].contains(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two rooms side by side sharing a wall at x = 4, with a door in the
    /// middle of that wall.
    fn two_rooms() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        let r1 = b.add_cell(
            "room-1",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
        );
        let r2 = b.add_cell(
            "room-2",
            CellKind::Room,
            Polygon::rectangle(Point::new(4.0, 0.0), Point::new(8.0, 4.0)),
        );
        b.add_door("d-12", Point::new(4.0, 2.0), r1, r2);
        b.add_device("dev-0", Point::new(4.0, 2.0), 1.0);
        b.add_poi("poi-0", Polygon::rectangle(Point::new(5.0, 1.0), Point::new(7.0, 3.0)));
        b.build().unwrap()
    }

    #[test]
    fn build_and_accessors() {
        let plan = two_rooms();
        assert_eq!(plan.cells().len(), 2);
        assert_eq!(plan.doors().len(), 1);
        assert_eq!(plan.devices().len(), 1);
        assert_eq!(plan.pois().len(), 1);
        assert_eq!(plan.cell(CellId(0)).name, "room-1");
        assert_eq!(plan.doors_of_cell(CellId(0)), &[DoorId(0)]);
        assert_eq!(plan.doors_of_cell(CellId(1)), &[DoorId(0)]);
        assert_eq!(plan.neighbors(CellId(0)).collect::<Vec<_>>(), vec![CellId(1)]);
    }

    #[test]
    fn locate_points() {
        let plan = two_rooms();
        assert_eq!(plan.locate(Point::new(1.0, 1.0)), Some(CellId(0)));
        assert_eq!(plan.locate(Point::new(6.0, 1.0)), Some(CellId(1)));
        // On the shared wall: deterministically resolved to one of the
        // two adjoining cells; locate_all reports both.
        let on_wall = Point::new(4.0, 1.0);
        let via_locate = plan.locate(on_wall).unwrap();
        assert!(via_locate == CellId(0) || via_locate == CellId(1));
        let mut all = plan.locate_all(on_wall);
        all.sort_unstable();
        assert_eq!(all, vec![CellId(0), CellId(1)]);
        assert_eq!(plan.locate(Point::new(100.0, 1.0)), None);
        assert_eq!(plan.locate(Point::new(-1.0, 1.0)), None);
    }

    #[test]
    fn door_far_from_cell_is_rejected() {
        let mut b = FloorPlanBuilder::new();
        let r1 = b.add_cell(
            "room-1",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
        );
        let r2 = b.add_cell(
            "room-2",
            CellKind::Room,
            Polygon::rectangle(Point::new(4.0, 0.0), Point::new(8.0, 4.0)),
        );
        b.add_door("bad-door", Point::new(20.0, 2.0), r1, r2);
        match b.build() {
            Err(FloorPlanError::DoorNotOnCell { door, .. }) => assert_eq!(door, "bad-door"),
            other => panic!("expected DoorNotOnCell, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_door_is_rejected() {
        let mut b = FloorPlanBuilder::new();
        let r1 = b.add_cell(
            "room-1",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
        );
        b.add_door("loop", Point::new(0.0, 0.0), r1, r1);
        assert!(matches!(b.build(), Err(FloorPlanError::SelfLoopDoor { .. })));
    }

    #[test]
    fn unknown_cell_is_rejected() {
        let mut b = FloorPlanBuilder::new();
        let r1 = b.add_cell(
            "room-1",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
        );
        b.add_door("dangling", Point::new(4.0, 2.0), r1, CellId(9));
        assert!(matches!(b.build(), Err(FloorPlanError::UnknownCell(CellId(9)))));
    }

    #[test]
    fn empty_plan_is_rejected() {
        assert!(matches!(FloorPlanBuilder::new().build(), Err(FloorPlanError::NoCells)));
    }

    #[test]
    fn locator_agrees_with_linear_scan_on_grid_plan() {
        // A 5x5 grid of rooms.
        let mut b = FloorPlanBuilder::new();
        for j in 0..5 {
            for i in 0..5 {
                b.add_cell(
                    format!("r-{i}-{j}"),
                    CellKind::Room,
                    Polygon::rectangle(
                        Point::new(i as f64 * 3.0, j as f64 * 3.0),
                        Point::new(i as f64 * 3.0 + 3.0, j as f64 * 3.0 + 3.0),
                    ),
                );
            }
        }
        let plan = b.build().unwrap();
        for step in 0..400 {
            let p = Point::new((step % 20) as f64 * 0.77, (step / 20) as f64 * 0.77);
            let by_index = plan.locate(p);
            let by_scan = plan.cells().iter().find(|c| c.contains(p)).map(|c| c.id);
            assert_eq!(by_index, by_scan, "mismatch at {p}");
        }
    }
}
