//! Strongly-typed identifiers for indoor entities.
//!
//! All identifiers are dense indices assigned by the [`crate::FloorPlanBuilder`]
//! in insertion order, so they double as `Vec` indices inside the
//! [`crate::FloorPlan`].

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a floor-plan cell (room or hallway section).
    CellId
);
define_id!(
    /// Identifier of a door connecting two cells.
    DoorId
);
define_id!(
    /// Identifier of a proximity-detection device.
    DeviceId
);
define_id!(
    /// Identifier of an indoor point of interest.
    PoiId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = CellId(1);
        let b = CellId(2);
        assert!(a < b);
        assert_eq!(a.index(), 1);
        let set: HashSet<CellId> = [a, b, CellId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_includes_type_name() {
        assert_eq!(DeviceId(7).to_string(), "DeviceId7");
        assert_eq!(PoiId::from(3).to_string(), "PoiId3");
    }
}
