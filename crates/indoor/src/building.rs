//! Multi-floor buildings.
//!
//! The paper's implementation indexes one floor and notes that "our
//! analysis of uncertainty regions as well as the query processing
//! techniques can be extended to multi-floor cases" (§4.1). This module
//! provides that substrate: a [`Building`] stacks per-floor
//! [`FloorPlan`]s joined by [`Connector`]s (staircases, escalators,
//! elevators), and [`BuildingDistanceOracle`] answers indoor walking
//! distances across floors — the quantity the topology check needs when a
//! device and a candidate location sit on different floors.
//!
//! Query processing remains per-floor (as in the paper: detection ranges
//! and POIs live on one floor each); the building layer contributes the
//! cross-floor distances and a global point-location namespace.

use crate::distance::DistanceOracle;
use crate::floorplan::FloorPlan;
use inflow_geometry::Point;

/// Identifier of a floor within a [`Building`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FloorId(pub u32);

impl FloorId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FloorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Floor{}", self.0)
    }
}

/// A location within a building: floor plus in-floor coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildingPoint {
    pub floor: FloorId,
    pub position: Point,
}

/// A vertical connector (staircase, escalator, elevator) joining a point
/// on one floor to a point on another, with an associated walking length.
#[derive(Debug, Clone, PartialEq)]
pub struct Connector {
    pub name: String,
    /// Entry on the first floor.
    pub a: BuildingPoint,
    /// Entry on the second floor.
    pub b: BuildingPoint,
    /// Walking length through the connector (stairs are longer than the
    /// straight-line height difference).
    pub length: f64,
}

/// Errors raised while assembling a [`Building`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildingError {
    /// The building has no floors.
    NoFloors,
    /// A connector referenced an unknown floor.
    UnknownFloor { connector: String, floor: FloorId },
    /// A connector endpoint lies outside every cell of its floor.
    EndpointOutsideFloor { connector: String, floor: FloorId },
    /// A connector's length is not positive and finite.
    InvalidLength { connector: String, length: f64 },
}

impl std::fmt::Display for BuildingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildingError::NoFloors => write!(f, "building has no floors"),
            BuildingError::UnknownFloor { connector, floor } => {
                write!(f, "connector {connector} references unknown {floor}")
            }
            BuildingError::EndpointOutsideFloor { connector, floor } => {
                write!(f, "connector {connector} endpoint lies outside every cell of {floor}")
            }
            BuildingError::InvalidLength { connector, length } => {
                write!(f, "connector {connector} has invalid length {length}")
            }
        }
    }
}

impl std::error::Error for BuildingError {}

/// A stack of floors joined by connectors.
#[derive(Debug)]
pub struct Building {
    floors: Vec<FloorPlan>,
    connectors: Vec<Connector>,
}

impl Building {
    /// Assembles a building, validating the connectors.
    pub fn new(
        floors: Vec<FloorPlan>,
        connectors: Vec<Connector>,
    ) -> Result<Building, BuildingError> {
        if floors.is_empty() {
            return Err(BuildingError::NoFloors);
        }
        for c in &connectors {
            if !(c.length > 0.0 && c.length.is_finite()) {
                return Err(BuildingError::InvalidLength {
                    connector: c.name.clone(),
                    length: c.length,
                });
            }
            for ep in [&c.a, &c.b] {
                let floor = floors.get(ep.floor.index()).ok_or(BuildingError::UnknownFloor {
                    connector: c.name.clone(),
                    floor: ep.floor,
                })?;
                if floor.locate(ep.position).is_none() {
                    return Err(BuildingError::EndpointOutsideFloor {
                        connector: c.name.clone(),
                        floor: ep.floor,
                    });
                }
            }
        }
        Ok(Building { floors, connectors })
    }

    /// The floors, indexed by [`FloorId`].
    pub fn floors(&self) -> &[FloorPlan] {
        &self.floors
    }

    /// A floor by id.
    pub fn floor(&self, id: FloorId) -> &FloorPlan {
        &self.floors[id.index()]
    }

    /// The vertical connectors.
    pub fn connectors(&self) -> &[Connector] {
        &self.connectors
    }

    /// Locates a point given its floor; `None` outside every cell.
    pub fn locate(&self, p: BuildingPoint) -> Option<crate::ids::CellId> {
        self.floor(p.floor).locate(p.position)
    }
}

/// Cross-floor indoor walking distances.
///
/// Builds one [`DistanceOracle`] per floor plus a small graph over
/// connector endpoints (all-pairs shortest paths via Floyd–Warshall — a
/// building has few connectors).
#[derive(Debug)]
pub struct BuildingDistanceOracle {
    floor_oracles: Vec<DistanceOracle>,
    /// Connector endpoints, two per connector: `(floor, position)`.
    nodes: Vec<BuildingPoint>,
    /// `dist[i * n + j]`: shortest walking distance between endpoints.
    dist: Vec<f64>,
}

impl BuildingDistanceOracle {
    /// Precomputes per-floor oracles and the endpoint graph.
    pub fn new(building: &Building) -> BuildingDistanceOracle {
        let floor_oracles: Vec<DistanceOracle> =
            building.floors().iter().map(DistanceOracle::new).collect();

        let mut nodes: Vec<BuildingPoint> = Vec::new();
        for c in building.connectors() {
            nodes.push(c.a);
            nodes.push(c.b);
        }
        let n = nodes.len();
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
        }
        // Connector internal edges.
        for (ci, c) in building.connectors().iter().enumerate() {
            let (i, j) = (2 * ci, 2 * ci + 1);
            dist[i * n + j] = dist[i * n + j].min(c.length);
            dist[j * n + i] = dist[j * n + i].min(c.length);
        }
        // Same-floor edges via the floor oracle.
        for i in 0..n {
            for j in i + 1..n {
                if nodes[i].floor == nodes[j].floor {
                    if let Some(d) = floor_oracles[nodes[i].floor.index()].distance(
                        building.floor(nodes[i].floor),
                        nodes[i].position,
                        nodes[j].position,
                    ) {
                        dist[i * n + j] = dist[i * n + j].min(d);
                        dist[j * n + i] = dist[j * n + i].min(d);
                    }
                }
            }
        }
        // Floyd–Warshall closure.
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                for j in 0..n {
                    let alt = dik + dist[k * n + j];
                    if alt < dist[i * n + j] {
                        dist[i * n + j] = alt;
                    }
                }
            }
        }
        BuildingDistanceOracle { floor_oracles, nodes, dist }
    }

    /// The per-floor distance oracle.
    pub fn floor_oracle(&self, floor: FloorId) -> &DistanceOracle {
        &self.floor_oracles[floor.index()]
    }

    /// Indoor walking distance between two building points, through
    /// connectors when the floors differ. `None` when either point is
    /// outside its floor's cells or no connector path exists.
    pub fn distance(&self, building: &Building, p: BuildingPoint, q: BuildingPoint) -> Option<f64> {
        if p.floor == q.floor {
            return self.floor_oracles[p.floor.index()].distance(
                building.floor(p.floor),
                p.position,
                q.position,
            );
        }
        let n = self.nodes.len();
        let mut best = f64::INFINITY;
        for (i, ni) in self.nodes.iter().enumerate() {
            if ni.floor != p.floor {
                continue;
            }
            let Some(leg1) = self.floor_oracles[p.floor.index()].distance(
                building.floor(p.floor),
                p.position,
                ni.position,
            ) else {
                continue;
            };
            if leg1 >= best {
                continue;
            }
            for (j, nj) in self.nodes.iter().enumerate() {
                if nj.floor != q.floor {
                    continue;
                }
                let through = self.dist[i * n + j];
                if !through.is_finite() || leg1 + through >= best {
                    continue;
                }
                if let Some(leg2) = self.floor_oracles[q.floor.index()].distance(
                    building.floor(q.floor),
                    nj.position,
                    q.position,
                ) {
                    best = best.min(leg1 + through + leg2);
                }
            }
        }
        if best.is_finite() {
            Some(best)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{CellKind, FloorPlanBuilder};
    use inflow_geometry::Polygon;

    /// One 20×4 corridor per floor.
    fn corridor_floor() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "corridor",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 4.0)),
        );
        b.build().unwrap()
    }

    fn bp(floor: u32, x: f64, y: f64) -> BuildingPoint {
        BuildingPoint { floor: FloorId(floor), position: Point::new(x, y) }
    }

    fn two_floor_building() -> Building {
        // Staircase at x = 18 joining the two corridors, 6 m of stairs.
        Building::new(
            vec![corridor_floor(), corridor_floor()],
            vec![Connector {
                name: "stairs-east".into(),
                a: bp(0, 18.0, 2.0),
                b: bp(1, 18.0, 2.0),
                length: 6.0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn same_floor_distance_delegates_to_floor_oracle() {
        let building = two_floor_building();
        let oracle = BuildingDistanceOracle::new(&building);
        let d = oracle.distance(&building, bp(0, 1.0, 2.0), bp(0, 11.0, 2.0)).unwrap();
        assert!((d - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cross_floor_distance_goes_through_stairs() {
        let building = two_floor_building();
        let oracle = BuildingDistanceOracle::new(&building);
        // (2,2) floor 0 → stairs at (18,2): 16 m; stairs: 6 m; stairs →
        // (2,2) floor 1: 16 m.
        let d = oracle.distance(&building, bp(0, 2.0, 2.0), bp(1, 2.0, 2.0)).unwrap();
        assert!((d - 38.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn unconnected_floors_are_unreachable() {
        let building = Building::new(vec![corridor_floor(), corridor_floor()], Vec::new()).unwrap();
        let oracle = BuildingDistanceOracle::new(&building);
        assert_eq!(oracle.distance(&building, bp(0, 1.0, 1.0), bp(1, 1.0, 1.0)), None);
    }

    #[test]
    fn multiple_connectors_pick_the_shortest() {
        let building = Building::new(
            vec![corridor_floor(), corridor_floor()],
            vec![
                Connector {
                    name: "stairs-east".into(),
                    a: bp(0, 18.0, 2.0),
                    b: bp(1, 18.0, 2.0),
                    length: 6.0,
                },
                Connector {
                    name: "stairs-west".into(),
                    a: bp(0, 2.0, 2.0),
                    b: bp(1, 2.0, 2.0),
                    length: 6.0,
                },
            ],
        )
        .unwrap();
        let oracle = BuildingDistanceOracle::new(&building);
        // From (3,2): west stairs are 1 m away, east 15 m. Best: 1+6+1.
        let d = oracle.distance(&building, bp(0, 3.0, 2.0), bp(1, 3.0, 2.0)).unwrap();
        assert!((d - 8.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn three_floor_chain_composes() {
        let building = Building::new(
            vec![corridor_floor(), corridor_floor(), corridor_floor()],
            vec![
                Connector {
                    name: "s01".into(),
                    a: bp(0, 10.0, 2.0),
                    b: bp(1, 10.0, 2.0),
                    length: 5.0,
                },
                Connector {
                    name: "s12".into(),
                    a: bp(1, 10.0, 2.0),
                    b: bp(2, 10.0, 2.0),
                    length: 5.0,
                },
            ],
        )
        .unwrap();
        let oracle = BuildingDistanceOracle::new(&building);
        let d = oracle.distance(&building, bp(0, 10.0, 2.0), bp(2, 10.0, 2.0)).unwrap();
        assert!((d - 10.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(Building::new(Vec::new(), Vec::new()), Err(BuildingError::NoFloors)));
        let err = Building::new(
            vec![corridor_floor()],
            vec![Connector {
                name: "bad".into(),
                a: bp(0, 1.0, 1.0),
                b: bp(5, 1.0, 1.0),
                length: 3.0,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, BuildingError::UnknownFloor { .. }));
        let err = Building::new(
            vec![corridor_floor()],
            vec![Connector {
                name: "outside".into(),
                a: bp(0, 100.0, 1.0),
                b: bp(0, 1.0, 1.0),
                length: 3.0,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, BuildingError::EndpointOutsideFloor { .. }));
        let err = Building::new(
            vec![corridor_floor()],
            vec![Connector {
                name: "zero".into(),
                a: bp(0, 1.0, 1.0),
                b: bp(0, 2.0, 1.0),
                length: 0.0,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, BuildingError::InvalidLength { .. }));
    }

    #[test]
    fn building_point_location() {
        let building = two_floor_building();
        assert!(building.locate(bp(0, 1.0, 1.0)).is_some());
        assert!(building.locate(bp(1, 25.0, 1.0)).is_none());
    }
}
