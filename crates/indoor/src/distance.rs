//! Indoor walking distances: door-constrained shortest paths.
//!
//! The paper's topology check (§3.3) excludes the parts of an uncertainty
//! region whose *indoor walking distance* from the relevant device exceeds
//! the maximum Euclidean distance the object could have covered. Movement
//! between cells is only possible through doors, so the indoor distance
//! between two points is the length of the shortest polyline through a
//! sequence of doors.
//!
//! The [`DistanceOracle`] precomputes all-pairs shortest paths over the
//! *door graph* — doors are nodes, and two doors sharing a cell are joined
//! by an edge weighted with their Euclidean distance. Within a cell the
//! distance is taken as Euclidean (cells are convex or near-convex in the
//! workloads used here; intra-cell obstacles are out of scope, as in the
//! paper).

use crate::floorplan::FloorPlan;
use crate::ids::{CellId, DoorId};
use inflow_geometry::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A walkable indoor path: the straight-line hops through door waypoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// The polyline from origin to destination, door positions in between.
    pub waypoints: Vec<Point>,
    /// Total length of the polyline in metres.
    pub length: f64,
}

/// Precomputed all-pairs door-to-door shortest paths for a floor plan.
#[derive(Debug)]
pub struct DistanceOracle {
    door_positions: Vec<Point>,
    /// `dist[s * n + v]`: shortest door-graph distance from door `s` to `v`.
    dist: Vec<f64>,
    /// `pred[s * n + v]`: predecessor of `v` on the shortest path from `s`;
    /// `u32::MAX` when unreachable or `v == s`.
    pred: Vec<u32>,
}

const NO_PRED: u32 = u32::MAX;

/// Max-heap entry for Dijkstra, ordered by smallest distance first.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need the minimum.
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl DistanceOracle {
    /// Builds the oracle by running Dijkstra from every door.
    ///
    /// Cost is `O(D · E log D)` for `D` doors; a few hundred doors (the
    /// paper's deployments) complete in milliseconds.
    pub fn new(plan: &FloorPlan) -> DistanceOracle {
        let n = plan.doors().len();
        let door_positions: Vec<Point> = plan.doors().iter().map(|d| d.position).collect();

        // Adjacency: doors sharing a cell.
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for cell in plan.cells() {
            let doors = plan.doors_of_cell(cell.id);
            for (i, &a) in doors.iter().enumerate() {
                for &b in &doors[i + 1..] {
                    let w = door_positions[a.index()].distance(door_positions[b.index()]);
                    adj[a.index()].push((b.0, w));
                    adj[b.index()].push((a.0, w));
                }
            }
        }

        let mut dist = vec![f64::INFINITY; n * n];
        let mut pred = vec![NO_PRED; n * n];
        let mut heap = BinaryHeap::new();
        for s in 0..n {
            let row = s * n;
            dist[row + s] = 0.0;
            heap.clear();
            heap.push(HeapEntry { dist: 0.0, node: s as u32 });
            while let Some(HeapEntry { dist: d, node }) = heap.pop() {
                let u = node as usize;
                if d > dist[row + u] {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    let nd = d + w;
                    if nd < dist[row + v as usize] {
                        dist[row + v as usize] = nd;
                        pred[row + v as usize] = node;
                        heap.push(HeapEntry { dist: nd, node: v });
                    }
                }
            }
        }
        DistanceOracle { door_positions, dist, pred }
    }

    /// Shortest door-graph distance between two doors
    /// (`f64::INFINITY` when disconnected).
    pub fn door_distance(&self, a: DoorId, b: DoorId) -> f64 {
        let n = self.door_positions.len();
        self.dist[a.index() * n + b.index()]
    }

    /// Indoor walking distance between two points, or `None` when either
    /// point lies outside every cell or no door path connects their cells.
    pub fn distance(&self, plan: &FloorPlan, p: Point, q: Point) -> Option<f64> {
        self.distance_between_located(plan, p, plan.locate(p)?, q, plan.locate(q)?)
    }

    /// Indoor walking distance when the cells of both points are already
    /// known — the hot path of the topology check, which locates points
    /// once per integration sample.
    pub fn distance_between_located(
        &self,
        plan: &FloorPlan,
        p: Point,
        p_cell: CellId,
        q: Point,
        q_cell: CellId,
    ) -> Option<f64> {
        if p_cell == q_cell {
            return Some(p.distance(q));
        }
        let n = self.door_positions.len();
        let mut best = f64::INFINITY;
        for &d1 in plan.doors_of_cell(p_cell) {
            let leg1 = p.distance(self.door_positions[d1.index()]);
            if leg1 >= best {
                continue;
            }
            let row = d1.index() * n;
            for &d2 in plan.doors_of_cell(q_cell) {
                let total = leg1
                    + self.dist[row + d2.index()]
                    + self.door_positions[d2.index()].distance(q);
                if total < best {
                    best = total;
                }
            }
        }
        if best.is_finite() {
            Some(best)
        } else {
            None
        }
    }

    /// The indoor walking distance from `p` (in `p_cell`) to every door of
    /// the plan: `dist[d] = min over doors d1 of p_cell (|p − d1| +
    /// sp(d1, d))`, with doors of `p_cell` itself reachable directly.
    ///
    /// Precomputing this vector once per anchor turns the topology check's
    /// per-point distance query into a scan of the target cell's few
    /// doors.
    pub fn distances_from_point(&self, plan: &FloorPlan, p: Point, p_cell: CellId) -> Vec<f64> {
        let n = self.door_positions.len();
        let mut out = vec![f64::INFINITY; n];
        for &d1 in plan.doors_of_cell(p_cell) {
            let leg = p.distance(self.door_positions[d1.index()]);
            let row = d1.index() * n;
            for (d, slot) in out.iter_mut().enumerate() {
                let total = leg + self.dist[row + d];
                if total < *slot {
                    *slot = total;
                }
            }
        }
        out
    }

    /// The door positions, indexed by [`DoorId`].
    pub fn door_positions(&self) -> &[Point] {
        &self.door_positions
    }

    /// The shortest walkable route from `p` to `q`, or `None` when
    /// unreachable. The returned waypoints start at `p`, pass through door
    /// positions, and end at `q`.
    pub fn route(&self, plan: &FloorPlan, p: Point, q: Point) -> Option<Route> {
        let p_cell = plan.locate(p)?;
        let q_cell = plan.locate(q)?;
        if p_cell == q_cell {
            return Some(Route { waypoints: vec![p, q], length: p.distance(q) });
        }
        let n = self.door_positions.len();
        let mut best = f64::INFINITY;
        let mut best_pair: Option<(DoorId, DoorId)> = None;
        for &d1 in plan.doors_of_cell(p_cell) {
            let leg1 = p.distance(self.door_positions[d1.index()]);
            let row = d1.index() * n;
            for &d2 in plan.doors_of_cell(q_cell) {
                let total = leg1
                    + self.dist[row + d2.index()]
                    + self.door_positions[d2.index()].distance(q);
                if total < best {
                    best = total;
                    best_pair = Some((d1, d2));
                }
            }
        }
        let (d1, d2) = best_pair?;
        // Reconstruct the door chain d1 → … → d2 from the predecessors.
        let row = d1.index() * n;
        let mut chain = vec![d2.0];
        let mut cur = d2.0;
        while cur != d1.0 {
            cur = self.pred[row + cur as usize];
            debug_assert_ne!(cur, NO_PRED, "pred chain broken");
            chain.push(cur);
        }
        chain.reverse();
        let mut waypoints = Vec::with_capacity(chain.len() + 2);
        waypoints.push(p);
        waypoints.extend(chain.iter().map(|&d| self.door_positions[d as usize]));
        waypoints.push(q);
        Some(Route { waypoints, length: best })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{CellKind, FloorPlanBuilder};
    use inflow_geometry::Polygon;

    /// Three rooms in a row: [0,4]x[0,4], [4,8]x[0,4], [8,12]x[0,4],
    /// doors at (4,2) and (8,2).
    fn corridor_plan() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        let mut cells = Vec::new();
        for i in 0..3 {
            cells.push(b.add_cell(
                format!("room-{i}"),
                CellKind::Room,
                Polygon::rectangle(
                    Point::new(i as f64 * 4.0, 0.0),
                    Point::new(i as f64 * 4.0 + 4.0, 4.0),
                ),
            ));
        }
        b.add_door("d01", Point::new(4.0, 2.0), cells[0], cells[1]);
        b.add_door("d12", Point::new(8.0, 2.0), cells[1], cells[2]);
        b.build().unwrap()
    }

    #[test]
    fn same_cell_distance_is_euclidean() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        let d = oracle.distance(&plan, Point::new(1.0, 1.0), Point::new(3.0, 1.0)).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_cell_distance_goes_through_door() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        let p = Point::new(2.0, 2.0);
        let q = Point::new(6.0, 2.0);
        // Straight line passes through the door at (4,2), so indoor distance
        // equals Euclidean here.
        let d = oracle.distance(&plan, p, q).unwrap();
        assert!((d - 4.0).abs() < 1e-12);

        // Points offset from the door line must detour through it.
        let p = Point::new(2.0, 0.5);
        let q = Point::new(6.0, 0.5);
        let d = oracle.distance(&plan, p, q).unwrap();
        let expected = p.distance(Point::new(4.0, 2.0)) + Point::new(4.0, 2.0).distance(q);
        assert!((d - expected).abs() < 1e-12);
        assert!(d > p.distance(q));
    }

    #[test]
    fn two_hop_distance_chains_doors() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        let p = Point::new(1.0, 2.0);
        let q = Point::new(11.0, 2.0);
        let d = oracle.distance(&plan, p, q).unwrap();
        // Doors are collinear with both points: straight line again.
        assert!((d - 10.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_when_no_door_path() {
        let mut b = FloorPlanBuilder::new();
        b.add_cell(
            "isolated-a",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(2.0, 2.0)),
        );
        b.add_cell(
            "isolated-b",
            CellKind::Room,
            Polygon::rectangle(Point::new(10.0, 0.0), Point::new(12.0, 2.0)),
        );
        let plan = b.build().unwrap();
        let oracle = DistanceOracle::new(&plan);
        assert_eq!(oracle.distance(&plan, Point::new(1.0, 1.0), Point::new(11.0, 1.0)), None);
    }

    #[test]
    fn outside_points_are_none() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        assert_eq!(oracle.distance(&plan, Point::new(-5.0, 0.0), Point::new(1.0, 1.0)), None);
    }

    #[test]
    fn route_reconstruction_matches_distance() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        let p = Point::new(1.0, 0.5);
        let q = Point::new(11.0, 3.5);
        let route = oracle.route(&plan, p, q).unwrap();
        assert_eq!(route.waypoints.first(), Some(&p));
        assert_eq!(route.waypoints.last(), Some(&q));
        // Passes through both doors.
        assert_eq!(route.waypoints.len(), 4);
        let dist = oracle.distance(&plan, p, q).unwrap();
        assert!((route.length - dist).abs() < 1e-12);
        // Length equals the polyline length.
        let poly_len: f64 = route.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!((route.length - poly_len).abs() < 1e-12);
    }

    #[test]
    fn door_distance_matrix_is_symmetric() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        let d01 = oracle.door_distance(DoorId(0), DoorId(1));
        let d10 = oracle.door_distance(DoorId(1), DoorId(0));
        assert!((d01 - 4.0).abs() < 1e-12);
        assert_eq!(d01, d10);
        assert_eq!(oracle.door_distance(DoorId(0), DoorId(0)), 0.0);
    }

    #[test]
    fn triangle_inequality_on_sampled_points() {
        let plan = corridor_plan();
        let oracle = DistanceOracle::new(&plan);
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(6.0, 3.0),
            Point::new(10.0, 0.5),
            Point::new(3.0, 3.5),
        ];
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let ab = oracle.distance(&plan, a, b).unwrap();
                    let bc = oracle.distance(&plan, b, c).unwrap();
                    let ac = oracle.distance(&plan, a, c).unwrap();
                    assert!(ac <= ab + bc + 1e-9, "triangle inequality violated");
                }
            }
        }
    }
}
