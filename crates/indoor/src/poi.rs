//! Indoor points of interest.

use crate::ids::PoiId;
use inflow_geometry::{Mbr, Point, Polygon};

/// An indoor point of interest: a shop, restaurant, gate, or exhibition
/// stand whose popularity the top-k queries measure.
///
/// Per the paper (§2.2), "each indoor POI `p` has some fixed extent modeled
/// by a polygon, and for simplicity, we equate a POI `p` with its polygon".
/// Multiple POIs may come from the same large room divided into multiple
/// uses (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    pub id: PoiId,
    /// Human-readable label, e.g. `"shop-12"` or `"gate-A4"`.
    pub name: String,
    extent: Polygon,
}

impl Poi {
    /// Creates a POI with the given polygonal extent.
    pub fn new(id: PoiId, name: impl Into<String>, extent: Polygon) -> Poi {
        Poi { id, name: name.into(), extent }
    }

    /// The POI's polygonal extent.
    pub fn extent(&self) -> &Polygon {
        &self.extent
    }

    /// Exact area of the extent — the denominator of the presence measure.
    pub fn area(&self) -> f64 {
        self.extent.area()
    }

    /// Bounding rectangle, used by the POI R-tree.
    pub fn mbr(&self) -> Mbr {
        self.extent.mbr()
    }

    /// Whether the POI covers `p`.
    pub fn contains(&self, p: Point) -> bool {
        self.extent.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poi_delegates_to_polygon() {
        let poi = Poi::new(
            PoiId(3),
            "shop-3",
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 2.0)),
        );
        assert_eq!(poi.area(), 8.0);
        assert!(poi.contains(Point::new(1.0, 1.0)));
        assert!(!poi.contains(Point::new(5.0, 1.0)));
        assert_eq!(poi.mbr().width(), 4.0);
        assert_eq!(poi.name, "shop-3");
    }
}
