//! Proximity-detection devices.

use crate::ids::DeviceId;
use inflow_geometry::{Circle, Point};

/// A proximity-detection device (RFID reader, Bluetooth radio).
///
/// A device reports an object whenever the object is within its circular
/// detection range (paper §1). Devices are deployed at pre-selected
/// locations — typically by doors and along hallways — and cover only part
/// of the indoor space, which is the root cause of the tracking data's
/// uncertainty.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    pub id: DeviceId,
    /// Human-readable label, e.g. `"dev-door-17"`.
    pub name: String,
    /// Mount position of the device.
    pub position: Point,
    /// Detection-range radius in metres.
    pub range: f64,
}

impl Device {
    /// Creates a device.
    pub fn new(id: DeviceId, name: impl Into<String>, position: Point, range: f64) -> Device {
        assert!(range > 0.0 && range.is_finite(), "detection range must be positive");
        Device { id, name: name.into(), position, range }
    }

    /// The detection range as a circle — the `dev.range` the paper's
    /// uncertainty constructions build on.
    pub fn detection_circle(&self) -> Circle {
        Circle::new(self.position, self.range)
    }

    /// Whether the device detects an object at `p`.
    pub fn detects(&self, p: Point) -> bool {
        self.detection_circle().contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_matches_circle() {
        let d = Device::new(DeviceId(0), "dev0", Point::new(1.0, 1.0), 2.0);
        assert!(d.detects(Point::new(2.0, 1.0)));
        assert!(d.detects(Point::new(3.0, 1.0)));
        assert!(!d.detects(Point::new(3.1, 1.0)));
        assert_eq!(d.detection_circle().radius, 2.0);
    }

    #[test]
    #[should_panic(expected = "detection range must be positive")]
    fn zero_range_rejected() {
        let _ = Device::new(DeviceId(0), "bad", Point::ORIGIN, 0.0);
    }
}
