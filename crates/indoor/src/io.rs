//! Plain-text interchange format for floor plans.
//!
//! A floor plan is a small, hand-editable artifact; this module defines a
//! line-oriented format that round-trips everything the analytics need —
//! cells, doors, devices, and POIs — without external dependencies:
//!
//! ```text
//! # comment
//! cell <name> <room|hallway> <x0> <y0> <x1> <y1>
//! door <name> <x> <y> <cell-a-name> <cell-b-name>
//! device <name> <x> <y> <range>
//! poi <name> <x0> <y0> <x1> <y1>
//! ```
//!
//! Cells and POIs are axis-aligned rectangles (the shape every shipped
//! workload uses); names must not contain whitespace. Entities may appear
//! in any order except that doors must follow the cells they reference.

use crate::floorplan::{CellKind, FloorPlan, FloorPlanBuilder};
use crate::ids::CellId;
use inflow_geometry::{Point, Polygon};
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Errors raised while reading a floor-plan file.
#[derive(Debug)]
pub enum PlanIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    BadLine { line: usize, reason: String },
    /// The assembled plan failed validation.
    Invalid(crate::floorplan::FloorPlanError),
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanIoError::Io(e) => write!(f, "I/O error: {e}"),
            PlanIoError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            PlanIoError::Invalid(e) => write!(f, "invalid plan: {e}"),
        }
    }
}

impl std::error::Error for PlanIoError {}

impl From<std::io::Error> for PlanIoError {
    fn from(e: std::io::Error) -> Self {
        PlanIoError::Io(e)
    }
}

/// Writes a floor plan in the text format.
///
/// Non-rectangular cell or POI footprints are written as their MBRs — all
/// shipped workloads are rectangular, and the format documents this
/// limitation.
pub fn write_plan(out: &mut impl Write, plan: &FloorPlan) -> Result<(), PlanIoError> {
    writeln!(out, "# inflow floor plan")?;
    for cell in plan.cells() {
        let m = cell.footprint().mbr();
        let kind = match cell.kind {
            CellKind::Room => "room",
            CellKind::Hallway => "hallway",
        };
        writeln!(
            out,
            "cell {} {} {} {} {} {}",
            sanitize(&cell.name),
            kind,
            m.lo.x,
            m.lo.y,
            m.hi.x,
            m.hi.y
        )?;
    }
    for door in plan.doors() {
        writeln!(
            out,
            "door {} {} {} {} {}",
            sanitize(&door.name),
            door.position.x,
            door.position.y,
            sanitize(&plan.cell(door.cells.0).name),
            sanitize(&plan.cell(door.cells.1).name),
        )?;
    }
    for dev in plan.devices() {
        writeln!(
            out,
            "device {} {} {} {}",
            sanitize(&dev.name),
            dev.position.x,
            dev.position.y,
            dev.range
        )?;
    }
    for poi in plan.pois() {
        let m = poi.mbr();
        writeln!(out, "poi {} {} {} {} {}", sanitize(&poi.name), m.lo.x, m.lo.y, m.hi.x, m.hi.y)?;
    }
    Ok(())
}

/// Reads a floor plan from the text format.
pub fn read_plan(input: &mut impl BufRead) -> Result<FloorPlan, PlanIoError> {
    let mut builder = FloorPlanBuilder::new();
    let mut cells_by_name: HashMap<String, CellId> = HashMap::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if input.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let bad = |reason: String| PlanIoError::BadLine { line: line_no, reason };
        match fields[0] {
            "cell" => {
                if fields.len() != 7 {
                    return Err(bad("cell needs: name kind x0 y0 x1 y1".into()));
                }
                let kind = match fields[2] {
                    "room" => CellKind::Room,
                    "hallway" => CellKind::Hallway,
                    other => return Err(bad(format!("unknown cell kind '{other}'"))),
                };
                let r = rect(&fields[3..7], line_no)?;
                let id = builder.add_cell(fields[1], kind, r);
                cells_by_name.insert(fields[1].to_string(), id);
            }
            "door" => {
                if fields.len() != 6 {
                    return Err(bad("door needs: name x y cell-a cell-b".into()));
                }
                let x = num(fields[2], line_no)?;
                let y = num(fields[3], line_no)?;
                let a = *cells_by_name
                    .get(fields[4])
                    .ok_or_else(|| bad(format!("unknown cell '{}'", fields[4])))?;
                let b = *cells_by_name
                    .get(fields[5])
                    .ok_or_else(|| bad(format!("unknown cell '{}'", fields[5])))?;
                builder.add_door(fields[1], Point::new(x, y), a, b);
            }
            "device" => {
                if fields.len() != 5 {
                    return Err(bad("device needs: name x y range".into()));
                }
                let x = num(fields[2], line_no)?;
                let y = num(fields[3], line_no)?;
                let range = num(fields[4], line_no)?;
                builder.add_device(fields[1], Point::new(x, y), range);
            }
            "poi" => {
                if fields.len() != 6 {
                    return Err(bad("poi needs: name x0 y0 x1 y1".into()));
                }
                let r = rect(&fields[2..6], line_no)?;
                builder.add_poi(fields[1], r);
            }
            other => return Err(bad(format!("unknown entity '{other}'"))),
        }
    }
    builder.build().map_err(PlanIoError::Invalid)
}

fn sanitize(name: &str) -> String {
    name.replace(char::is_whitespace, "_")
}

/// Parses an `f64` coordinate/range field, rejecting NaN and infinities:
/// a non-finite geometry silently poisons every downstream MBR and
/// presence integral, so it is refused at the boundary.
fn num(s: &str, line: usize) -> Result<f64, PlanIoError> {
    let v: f64 = s.parse().map_err(|_| PlanIoError::BadLine {
        line,
        reason: format!("cannot parse number from '{s}'"),
    })?;
    if !v.is_finite() {
        return Err(PlanIoError::BadLine { line, reason: format!("non-finite value '{s}'") });
    }
    Ok(v)
}

fn rect(fields: &[&str], line: usize) -> Result<Polygon, PlanIoError> {
    let x0 = num(fields[0], line)?;
    let y0 = num(fields[1], line)?;
    let x1 = num(fields[2], line)?;
    let y1 = num(fields[3], line)?;
    if x1 <= x0 || y1 <= y0 {
        return Err(PlanIoError::BadLine {
            line,
            reason: format!("degenerate rectangle {x0},{y0}..{x1},{y1}"),
        });
    }
    Ok(Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample_plan() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        let hall = b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 4.0)),
        );
        let room = b.add_cell(
            "room 1", // whitespace gets sanitized on write
            CellKind::Room,
            Polygon::rectangle(Point::new(4.0, 4.0), Point::new(12.0, 10.0)),
        );
        b.add_door("d", Point::new(8.0, 4.0), hall, room);
        b.add_device("dev0", Point::new(3.0, 2.0), 1.5);
        b.add_poi("poi0", Polygon::rectangle(Point::new(5.0, 5.0), Point::new(11.0, 9.0)));
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        write_plan(&mut buf, &plan).unwrap();
        let parsed = read_plan(&mut BufReader::new(buf.as_slice())).unwrap();

        assert_eq!(parsed.cells().len(), plan.cells().len());
        assert_eq!(parsed.doors().len(), plan.doors().len());
        assert_eq!(parsed.devices().len(), plan.devices().len());
        assert_eq!(parsed.pois().len(), plan.pois().len());
        for (a, b) in plan.cells().iter().zip(parsed.cells()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.footprint().mbr(), b.footprint().mbr());
        }
        assert_eq!(parsed.cells()[1].name, "room_1");
        assert_eq!(plan.devices()[0].range, parsed.devices()[0].range);
        assert_eq!(plan.pois()[0].mbr(), parsed.pois()[0].mbr());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# plan\n\ncell hall hallway 0 0 10 4\n";
        let plan = read_plan(&mut BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(plan.cells().len(), 1);
    }

    #[test]
    fn unknown_entity_is_rejected() {
        let text = "wall 0 0 10 4\n";
        let err = read_plan(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, PlanIoError::BadLine { line: 1, .. }), "{err}");
    }

    #[test]
    fn door_before_cell_is_rejected() {
        let text = "door d 1 1 a b\ncell a room 0 0 2 2\n";
        let err = read_plan(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, PlanIoError::BadLine { line: 1, .. }));
    }

    #[test]
    fn degenerate_rect_is_rejected() {
        let text = "cell a room 0 0 0 2\n";
        let err = read_plan(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, PlanIoError::BadLine { .. }));
    }

    #[test]
    fn invalid_plan_surfaces_validation_error() {
        // Door placed far from one of its cells.
        let text = "cell a room 0 0 2 2\ncell b room 2 0 4 2\ndoor d 50 50 a b\n";
        let err = read_plan(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, PlanIoError::Invalid(_)), "{err}");
    }

    #[test]
    fn non_finite_fields_are_rejected() {
        for text in [
            "cell a room NaN 0 2 2\n",
            "cell a room 0 0 inf 2\n",
            "device dev0 3 -inf 1.5\n",
            "device dev0 3 2 NaN\n",
            "cell a room 0 0 2 2\ncell b room 2 0 4 2\ndoor d infinity 1 a b\n",
        ] {
            match read_plan(&mut BufReader::new(text.as_bytes())).unwrap_err() {
                PlanIoError::BadLine { reason, .. } => {
                    assert!(reason.contains("non-finite"), "{text:?}: {reason}");
                }
                other => panic!("expected BadLine for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_number_reports_line() {
        let text = "cell a room 0 zero 2 2\n";
        match read_plan(&mut BufReader::new(text.as_bytes())).unwrap_err() {
            PlanIoError::BadLine { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("zero"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }
}
