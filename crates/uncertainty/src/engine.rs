//! The uncertainty-region engine: snapshot and interval derivation.

use crate::context::IndoorContext;
use crate::regions::{ConstrainedRing, ConstrainedTheta};
use inflow_geometry::{
    area_in_polygon, BoxedRegion, Circle, ExtendedEllipse, GridResolution, Mbr, Point, Region,
    RegionIntersection, Ring,
};
use inflow_indoor::{DeviceId, Poi};
use inflow_tracking::{ObjectId, ObjectState, ObjectTrackingTable, Timestamp};
use std::sync::Arc;

/// Configuration of uncertainty-region derivation and presence
/// integration.
#[derive(Debug, Clone, Copy)]
pub struct UrConfig {
    /// Maximum speed `V_max` of indoor moving objects (m/s). The paper's
    /// experiments use 1.1 m/s for both movement and `V_max`.
    pub vmax: f64,
    /// Whether to apply the §3.3 indoor topology check.
    pub topology_check: bool,
    /// Grid resolution for presence integration.
    pub resolution: GridResolution,
    /// Coarse object-MBR estimation for the snapshot join (Algorithm 2,
    /// line 8): `true` reproduces the paper's merge (union) of the two
    /// extended device MBRs; `false` uses their tighter intersection.
    pub paper_coarse_mbr: bool,
}

impl Default for UrConfig {
    fn default() -> Self {
        UrConfig {
            vmax: 1.1,
            topology_check: true,
            resolution: GridResolution::DEFAULT,
            paper_coarse_mbr: true,
        }
    }
}

/// An object's uncertainty region: a union of *segments* — detection
/// disks and inter-detection ellipses — each carrying its small MBR
/// (§4.3.2, Figure 9). Snapshot regions consist of a single segment.
///
/// Keeping the segments explicit serves two purposes: the improved
/// interval join checks POI entries against the small MBRs
/// ([`UncertaintyRegion::any_segment_intersects`]), and presence
/// integration restricts membership tests to the segments near the POI
/// rather than scanning the whole trajectory per probe.
pub struct UncertaintyRegion {
    parts: Vec<(Mbr, BoxedRegion)>,
    mbr: Mbr,
}

impl UncertaintyRegion {
    /// Builds a region from its segments.
    fn from_parts(parts: Vec<(Mbr, BoxedRegion)>) -> UncertaintyRegion {
        let mbr = parts.iter().fold(Mbr::EMPTY, |m, (pm, _)| m.union(pm));
        UncertaintyRegion { parts, mbr }
    }

    /// The region containing no points (e.g. from inconsistent data).
    pub fn empty() -> UncertaintyRegion {
        UncertaintyRegion { parts: Vec::new(), mbr: Mbr::EMPTY }
    }

    /// Whether the region is certainly empty.
    pub fn is_empty(&self) -> bool {
        self.mbr.is_empty()
    }

    /// Number of segments (detection disks + inter-detection ellipses).
    pub fn segment_count(&self) -> usize {
        self.parts.len()
    }

    /// The per-segment small MBRs, in segment order.
    pub fn segment_mbrs(&self) -> impl Iterator<Item = Mbr> + '_ {
        self.parts.iter().map(|(m, _)| *m)
    }

    /// Whether any small MBR intersects `query` — the finer-grained check
    /// of the improved interval join (§4.3.2).
    pub fn any_segment_intersects(&self, query: &Mbr) -> bool {
        self.parts.iter().any(|(m, _)| m.intersects(query))
    }

    /// A view of the region restricted to segments whose MBRs intersect
    /// `window`; integrating over this view is equivalent to integrating
    /// the full region against any polygon inside `window`.
    fn restricted_to(&self, window: &Mbr) -> RestrictedUr<'_> {
        let parts: Vec<&(Mbr, BoxedRegion)> =
            self.parts.iter().filter(|(m, _)| m.intersects(window)).collect();
        let mbr = parts.iter().fold(Mbr::EMPTY, |m, (pm, _)| m.union(pm));
        RestrictedUr { parts, mbr }
    }
}

impl Region for UncertaintyRegion {
    fn contains(&self, p: Point) -> bool {
        self.mbr.contains(p) && self.parts.iter().any(|(m, r)| m.contains(p) && r.contains(p))
    }
    fn mbr(&self) -> Mbr {
        self.mbr
    }
    fn is_empty_hint(&self) -> bool {
        self.is_empty()
    }
}

/// A borrow of the segments of an [`UncertaintyRegion`] relevant to one
/// integration window.
struct RestrictedUr<'a> {
    parts: Vec<&'a (Mbr, BoxedRegion)>,
    mbr: Mbr,
}

impl Region for RestrictedUr<'_> {
    fn contains(&self, p: Point) -> bool {
        self.parts.iter().any(|(m, r)| m.contains(p) && r.contains(p))
    }
    fn mbr(&self) -> Mbr {
        self.mbr
    }
}

/// The resolved record chain of an interval query (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalChain {
    /// The chain `rd_s, …, rd_e` in chronological order.
    pub records: Vec<inflow_tracking::RecordId>,
    /// Object inactive at `t_s` (`rd_s = rd_pre(t_s)`; Cases 2 and 4).
    pub start_inactive: bool,
    /// Object inactive at `t_e` (`rd_e = rd_suc(t_e)`; Cases 3 and 4).
    pub end_inactive: bool,
}

/// Derives uncertainty regions and presences over a fixed indoor context.
pub struct UrEngine {
    ctx: Arc<IndoorContext>,
    cfg: UrConfig,
}

impl UrEngine {
    /// Creates an engine over `ctx` with configuration `cfg`.
    pub fn new(ctx: Arc<IndoorContext>, cfg: UrConfig) -> UrEngine {
        assert!(cfg.vmax > 0.0, "V_max must be positive");
        UrEngine { ctx, cfg }
    }

    /// The indoor context.
    pub fn context(&self) -> &Arc<IndoorContext> {
        &self.ctx
    }

    /// The configuration.
    pub fn config(&self) -> &UrConfig {
        &self.cfg
    }

    fn device_circle(&self, id: DeviceId) -> Circle {
        self.ctx.plan().device(id).detection_circle()
    }

    fn ring_region(&self, circle: Circle, extension: f64) -> ConstrainedRing {
        if self.cfg.topology_check {
            ConstrainedRing::indoor(Arc::clone(&self.ctx), circle, extension)
        } else {
            ConstrainedRing::euclidean(Ring::new(circle, extension))
        }
    }

    fn theta_region(&self, theta: ExtendedEllipse) -> ConstrainedTheta {
        if self.cfg.topology_check {
            ConstrainedTheta::indoor(Arc::clone(&self.ctx), theta)
        } else {
            ConstrainedTheta::euclidean(theta)
        }
    }

    /// Snapshot uncertainty region `UR(o, t)` for a resolved object state
    /// (§3.1.2, Figure 2).
    pub fn snapshot_ur(
        &self,
        ott: &ObjectTrackingTable,
        state: ObjectState,
        t: Timestamp,
    ) -> UncertaintyRegion {
        match state {
            ObjectState::Active { cov, pre } => {
                let cov_rec = ott.record(cov);
                let cov_circle = self.device_circle(cov_rec.device);
                match pre {
                    // Case 1: UR = Ring(dev_pre, V_max·(t − rd_pre.t_e)) ∩
                    // dev_cov.range. Degenerates to the detection disk when
                    // there is no predecessor or the object re-entered the
                    // same device (where the ring's inner exclusion would
                    // wrongly empty the region).
                    Some(p) if ott.record(p).device != cov_rec.device => {
                        let pre_rec = ott.record(p);
                        let ring = self.ring_region(
                            self.device_circle(pre_rec.device),
                            self.cfg.vmax * (t - pre_rec.te),
                        );
                        let mbr = cov_circle.mbr().intersection(&ring.mbr());
                        if mbr.is_empty() {
                            return UncertaintyRegion::empty();
                        }
                        UncertaintyRegion::from_parts(vec![(
                            mbr,
                            Box::new(RegionIntersection::of(cov_circle, ring)) as BoxedRegion,
                        )])
                    }
                    _ => UncertaintyRegion::from_parts(vec![(
                        cov_circle.mbr(),
                        Box::new(cov_circle) as BoxedRegion,
                    )]),
                }
            }
            // Case 2: UR = Ring(dev_pre, V_max·(t − rd_pre.t_e)) ∩
            // Ring(dev_suc, V_max·(rd_suc.t_s − t)).
            ObjectState::Inactive { pre, suc } => {
                let pre_rec = ott.record(pre);
                let suc_rec = ott.record(suc);
                let ring_pre = self.ring_region(
                    self.device_circle(pre_rec.device),
                    self.cfg.vmax * (t - pre_rec.te),
                );
                let ring_suc = self.ring_region(
                    self.device_circle(suc_rec.device),
                    self.cfg.vmax * (suc_rec.ts - t),
                );
                let mbr = ring_pre.mbr().intersection(&ring_suc.mbr());
                if mbr.is_empty() {
                    return UncertaintyRegion::empty();
                }
                UncertaintyRegion::from_parts(vec![(
                    mbr,
                    Box::new(RegionIntersection::of(ring_pre, ring_suc)) as BoxedRegion,
                )])
            }
        }
    }

    /// The coarse snapshot MBR of Algorithm 2 (lines 5–10), computed
    /// without building the region: the detection-range MBR when active,
    /// the merge of the two speed-extended device MBRs when inactive.
    pub fn snapshot_mbr_coarse(
        &self,
        ott: &ObjectTrackingTable,
        state: ObjectState,
        t: Timestamp,
    ) -> Mbr {
        match state {
            ObjectState::Active { cov, .. } => self.device_circle(ott.record(cov).device).mbr(),
            ObjectState::Inactive { pre, suc } => {
                let pre_rec = ott.record(pre);
                let suc_rec = ott.record(suc);
                let m1 = self
                    .device_circle(pre_rec.device)
                    .mbr()
                    .expanded(self.cfg.vmax * (t - pre_rec.te));
                let m2 = self
                    .device_circle(suc_rec.device)
                    .mbr()
                    .expanded(self.cfg.vmax * (suc_rec.ts - t));
                if self.cfg.paper_coarse_mbr {
                    m1.union(&m2)
                } else {
                    m1.intersection(&m2)
                }
            }
        }
    }

    /// The per-object record chain backing an interval query: the start
    /// and end records per Table 3 and whether the query endpoints fall in
    /// inactive gaps (which triggers the ring clipping of Cases 2–4).
    ///
    /// Exposed for inspection and testing; [`UrEngine::interval_ur`] is
    /// the consumer.
    pub fn interval_chain(
        &self,
        ott: &ObjectTrackingTable,
        object: ObjectId,
        ts: Timestamp,
        te: Timestamp,
    ) -> Option<IntervalChain> {
        debug_assert!(ts <= te, "query interval must be ordered");
        let chain = ott.object_records(object);
        if chain.is_empty() {
            return None;
        }
        let first = ott.record(chain[0]);
        let last = ott.record(chain[chain.len() - 1]);

        // Resolve the start record rd_s and end record rd_e per Table 3,
        // extended with the untracked-boundary convention (see crate docs).
        let (si, start_inactive) = match ott.state_at(object, ts) {
            Some(ObjectState::Active { cov, .. }) => (ott.chain_position(cov), false),
            Some(ObjectState::Inactive { pre, .. }) => (ott.chain_position(pre), true),
            None => {
                if ts < first.ts {
                    (0, false)
                } else {
                    // ts is after the object's last detection.
                    return None;
                }
            }
        };
        let (ei, end_inactive) = match ott.state_at(object, te) {
            Some(ObjectState::Active { cov, .. }) => (ott.chain_position(cov), false),
            Some(ObjectState::Inactive { suc, .. }) => (ott.chain_position(suc), true),
            None => {
                if te > last.te {
                    (chain.len() - 1, false)
                } else {
                    // te is before the object's first detection.
                    return None;
                }
            }
        };
        if ei < si {
            return None;
        }
        Some(IntervalChain { records: chain[si..=ei].to_vec(), start_inactive, end_inactive })
    }

    /// Interval uncertainty region `UR(o, [t_s, t_e])` (§3.2, Cases 1–4).
    ///
    /// Returns `None` when the object's tracked lifetime does not overlap
    /// the query interval at all; returns an empty region when the data is
    /// inconsistent (gaps not bridgeable at `V_max`).
    pub fn interval_ur(
        &self,
        ott: &ObjectTrackingTable,
        object: ObjectId,
        ts: Timestamp,
        te: Timestamp,
    ) -> Option<UncertaintyRegion> {
        let IntervalChain { records, start_inactive, end_inactive } =
            self.interval_chain(ott, object, ts, te)?;
        let recs: Vec<_> = records.iter().map(|&rid| *ott.record(rid)).collect();
        let mut parts: Vec<(Mbr, BoxedRegion)> = Vec::new();

        // Detection disks of records overlapping the query interval: the
        // object is certainly within range while detected. Revisited
        // devices contribute one disk each (deduplicated).
        let mut seen_devices: Vec<DeviceId> = Vec::new();
        for r in &recs {
            if r.ts <= te && r.te >= ts && !seen_devices.contains(&r.device) {
                seen_devices.push(r.device);
                let circle = self.device_circle(r.device);
                parts.push((circle.mbr(), Box::new(circle)));
            }
        }

        // Inter-detection extended ellipses, with ring clipping at
        // inactive endpoints (Cases 2–4).
        let pair_count = recs.len().saturating_sub(1);
        for i in 0..pair_count {
            let a = &recs[i];
            let b = &recs[i + 1];
            let budget = self.cfg.vmax * (b.ts - a.te);
            let theta = ExtendedEllipse::new(
                self.device_circle(a.device),
                self.device_circle(b.device),
                budget,
            );
            if theta.is_empty() {
                // Inconsistent data: the object cannot have bridged the
                // gap at V_max. Skip the segment.
                continue;
            }
            let mut mbr = theta.mbr();
            let base = self.theta_region(theta);
            let mut clips: Vec<BoxedRegion> = vec![Box::new(base)];
            if i == 0 && start_inactive {
                // Θ_s ∩ Ring(dev_b, V_max·(rd_b.t_s − t_s)): positions at
                // t_s must still reach the next detection in time.
                let ring =
                    self.ring_region(self.device_circle(b.device), self.cfg.vmax * (b.ts - ts));
                mbr = mbr.intersection(&ring.mbr());
                clips.push(Box::new(ring));
            }
            if i + 1 == pair_count && end_inactive {
                // Θ_e ∩ Ring(dev_b, V_max·(t_e − rd_b.t_e)): positions at
                // t_e must be reachable from the last detection.
                let ring =
                    self.ring_region(self.device_circle(a.device), self.cfg.vmax * (te - a.te));
                mbr = mbr.intersection(&ring.mbr());
                clips.push(Box::new(ring));
            }
            if mbr.is_empty() {
                continue;
            }
            let part: BoxedRegion = match clips.pop() {
                Some(only) if clips.is_empty() => only,
                Some(more) => {
                    clips.push(more);
                    Box::new(RegionIntersection::new(clips))
                }
                None => continue,
            };
            parts.push((mbr, part));
        }

        Some(UncertaintyRegion::from_parts(parts))
    }

    /// The probability that the object lies inside `poi`, assuming a
    /// uniform distribution over its uncertainty region:
    /// `area(UR ∩ p) / area(UR)`.
    ///
    /// Contrast with [`UrEngine::presence`] (Definition 1), which
    /// normalizes by the *POI's* area: presence is the paper's coverage
    /// measure and can approach 1 for every small POI inside a large UR,
    /// while `probability_in` sums to at most 1 over disjoint POIs and is
    /// the measure density analysis builds on.
    pub fn probability_in(&self, ur: &UncertaintyRegion, poi: &Poi) -> f64 {
        if ur.is_empty() || !ur.mbr().intersects(&poi.mbr()) {
            return 0.0;
        }
        let total = inflow_geometry::area_of_region(ur, self.cfg.resolution);
        if total <= f64::EPSILON {
            return 0.0;
        }
        let view = ur.restricted_to(&poi.mbr());
        if view.mbr.is_empty() {
            return 0.0;
        }
        let inter = area_in_polygon(&view, poi.extent(), self.cfg.resolution);
        (inter / total).clamp(0.0, 1.0)
    }

    /// The object presence `φ(o) = area(UR ∩ p) / area(p)` (Definition 1),
    /// clamped to `[0, 1]`.
    pub fn presence(&self, ur: &UncertaintyRegion, poi: &Poi) -> f64 {
        if ur.is_empty() || !ur.mbr().intersects(&poi.mbr()) {
            return 0.0;
        }
        // Restrict to the segments near the POI: integrating a 100-segment
        // trajectory against an 8 m shop only ever touches a handful of
        // them.
        let view = ur.restricted_to(&poi.mbr());
        if view.mbr.is_empty() {
            return 0.0;
        }
        let inter = area_in_polygon(&view, poi.extent(), self.cfg.resolution);
        (inter / poi.area()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Polygon;
    use inflow_indoor::{CellKind, FloorPlan, FloorPlanBuilder};
    use inflow_tracking::OttRow;

    /// A 20×4 corridor modelled as a single hallway cell, with devices at
    /// x = 2, 8, 14 (range 1 m), and one room above the corridor connected
    /// by a door.
    fn plan() -> FloorPlan {
        let mut b = FloorPlanBuilder::new();
        let hall = b.add_cell(
            "hall",
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 4.0)),
        );
        let room = b.add_cell(
            "room",
            CellKind::Room,
            Polygon::rectangle(Point::new(8.0, 4.0), Point::new(12.0, 8.0)),
        );
        b.add_door("door", Point::new(8.2, 4.0), hall, room);
        b.add_device("dev0", Point::new(2.0, 2.0), 1.0);
        b.add_device("dev1", Point::new(8.0, 2.0), 1.0);
        b.add_device("dev2", Point::new(14.0, 2.0), 1.0);
        b.add_poi("poi-hall", Polygon::rectangle(Point::new(4.0, 0.0), Point::new(7.0, 4.0)));
        b.add_poi("poi-room", Polygon::rectangle(Point::new(8.5, 5.0), Point::new(11.5, 7.5)));
        b.build().unwrap()
    }

    fn engine(topology: bool) -> UrEngine {
        let cfg = UrConfig { vmax: 1.0, topology_check: topology, ..UrConfig::default() };
        UrEngine::new(Arc::new(IndoorContext::new(plan())), cfg)
    }

    fn row(o: u32, d: u32, ts: f64, te: f64) -> OttRow {
        OttRow { object: ObjectId(o), device: inflow_indoor::DeviceId(d), ts, te }
    }

    /// Object 1 walks dev0 → dev1 → dev2 along the corridor.
    fn walking_ott() -> ObjectTrackingTable {
        ObjectTrackingTable::from_rows(vec![
            row(1, 0, 0.0, 2.0),
            row(1, 1, 6.0, 8.0),
            row(1, 2, 12.0, 14.0),
        ])
        .unwrap()
    }

    #[test]
    fn snapshot_active_without_pred_is_detection_disk() {
        let eng = engine(false);
        let ott = walking_ott();
        let state = ott.state_at(ObjectId(1), 1.0).unwrap();
        let ur = eng.snapshot_ur(&ott, state, 1.0);
        assert!(ur.contains(Point::new(2.0, 2.0)));
        assert!(ur.contains(Point::new(2.9, 2.0)));
        assert!(!ur.contains(Point::new(3.5, 2.0)));
        assert_eq!(ur.segment_count(), 1);
    }

    #[test]
    fn snapshot_active_with_pred_intersects_ring() {
        let eng = engine(false);
        let ott = walking_ott();
        // t = 7: active at dev1, left dev0 at t=2 → ring extension 5.
        let state = ott.state_at(ObjectId(1), 7.0).unwrap();
        let ur = eng.snapshot_ur(&ott, state, 7.0);
        // dev1 disk reaches x ∈ [7, 9]; ring around dev0 (r=1, ext=5)
        // reaches x ≤ 2 + 6 = 8.
        assert!(ur.contains(Point::new(7.5, 2.0)));
        assert!(!ur.contains(Point::new(8.5, 2.0)), "beyond the V_max ring");
    }

    #[test]
    fn snapshot_inactive_is_ring_intersection() {
        let eng = engine(false);
        let ott = walking_ott();
        // t = 4: inactive between dev0 (left at 2) and dev1 (entered at 6).
        let state = ott.state_at(ObjectId(1), 4.0).unwrap();
        let ur = eng.snapshot_ur(&ott, state, 4.0);
        // Ring(dev0, 2) → 1 < |p − (2,2)| ≤ 3; Ring(dev1, 2) → 1 < |p − (8,2)| ≤ 3.
        assert!(ur.contains(Point::new(5.0, 2.0))); // 3 from each center
        assert!(!ur.contains(Point::new(2.5, 2.0))); // too far from dev1
        assert!(!ur.contains(Point::new(8.5, 2.0))); // inside dev1's range? no: too far from dev0
        assert!(!ur.contains(Point::new(2.0, 2.0))); // inside dev0's range
    }

    #[test]
    fn snapshot_inconsistent_timing_gives_empty() {
        let eng = engine(false);
        // Object teleports: leaves dev0 at t=2, seen at dev2 (12 m away) at
        // t=3 with V_max=1 → rings cannot intersect.
        let ott =
            ObjectTrackingTable::from_rows(vec![row(1, 0, 0.0, 2.0), row(1, 2, 3.0, 4.0)]).unwrap();
        let state = ott.state_at(ObjectId(1), 2.5).unwrap();
        let ur = eng.snapshot_ur(&ott, state, 2.5);
        assert!(ur.is_empty());
    }

    #[test]
    fn snapshot_same_device_reentry_keeps_disk() {
        let eng = engine(false);
        let ott =
            ObjectTrackingTable::from_rows(vec![row(1, 1, 0.0, 2.0), row(1, 1, 5.0, 7.0)]).unwrap();
        let state = ott.state_at(ObjectId(1), 6.0).unwrap();
        let ur = eng.snapshot_ur(&ott, state, 6.0);
        assert!(ur.contains(Point::new(8.0, 2.0)), "detection disk must survive re-entry");
    }

    #[test]
    fn interval_case1_active_both_ends() {
        let eng = engine(false);
        let ott = walking_ott();
        // [1, 13]: active at both ends (dev0 covers 1, dev2 covers 13).
        let ur = eng.interval_ur(&ott, ObjectId(1), 1.0, 13.0).unwrap();
        // All three detection disks present.
        assert!(ur.contains(Point::new(2.0, 2.0)));
        assert!(ur.contains(Point::new(8.0, 2.0)));
        assert!(ur.contains(Point::new(14.0, 2.0)));
        // Ellipse between dev0 and dev1 covers the corridor mid-point.
        assert!(ur.contains(Point::new(5.0, 2.0)));
        // Far outside any segment.
        assert!(!ur.contains(Point::new(19.5, 0.2)));
        // 3 disks + 2 ellipses.
        assert_eq!(ur.segment_count(), 5);
    }

    #[test]
    fn interval_case2_inactive_start_ring_clips() {
        let eng = engine(false);
        let ott = walking_ott();
        // [5, 7]: inactive at ts=5 (between dev0 and dev1), active at te=7.
        let ur = eng.interval_ur(&ott, ObjectId(1), 5.0, 7.0).unwrap();
        // Ring_s = Ring(dev1, V_max·(6 − 5) = 1): at t_s the object is at
        // most 1 m from dev1's range boundary, so ≤ 2 m from (8,2).
        assert!(ur.contains(Point::new(6.5, 2.0)));
        assert!(!ur.contains(Point::new(4.0, 2.0)), "too far from dev1 to arrive by t=6");
        // The dev1 disk itself is included (the object is detected there
        // during [6, 7] ⊂ [5, 7]) — the paper's Case 2 omission fixed.
        assert!(ur.contains(Point::new(8.0, 2.0)));
        // dev0's disk must NOT be included: the object left it before t_s.
        assert!(!ur.contains(Point::new(1.2, 2.0)));
    }

    #[test]
    fn interval_case3_inactive_end_ring_clips() {
        let eng = engine(false);
        let ott = walking_ott();
        // [7, 9]: active at ts=7 (dev1), inactive at te=9 (before dev2).
        let ur = eng.interval_ur(&ott, ObjectId(1), 7.0, 9.0).unwrap();
        // Ring_e = Ring(dev1, V_max·(9 − 8) = 1): reachable ≤ 2 m from dev1.
        assert!(ur.contains(Point::new(8.0, 2.0))); // the disk itself
        assert!(ur.contains(Point::new(9.5, 2.0)));
        assert!(!ur.contains(Point::new(11.0, 2.0)), "beyond Ring_e at te");
        // dev2's disk not included (first seen there at t=12 > te).
        assert!(!ur.contains(Point::new(14.5, 2.0)));
    }

    #[test]
    fn interval_case4_inactive_both_ends() {
        let eng = engine(false);
        let ott = walking_ott();
        // [3, 5]: wholly inside the dev0→dev1 gap.
        let ur = eng.interval_ur(&ott, ObjectId(1), 3.0, 5.0).unwrap();
        // Ring_s = Ring(dev1, 1·(6−3)=3) and Ring_e = Ring(dev0, 1·(5−2)=3).
        assert!(ur.contains(Point::new(5.0, 2.0)));
        // Neither detection disk is included.
        assert!(!ur.contains(Point::new(2.0, 2.0)));
        assert!(!ur.contains(Point::new(8.0, 2.0)));
        // Beyond Ring_e: cannot be 5 m from dev0's boundary at te=5.
        assert!(!ur.contains(Point::new(7.5, 2.0)));
        assert_eq!(ur.segment_count(), 1);
    }

    #[test]
    fn interval_outside_lifetime_is_none() {
        let eng = engine(false);
        let ott = walking_ott();
        assert!(eng.interval_ur(&ott, ObjectId(1), 20.0, 30.0).is_none());
        assert!(eng.interval_ur(&ott, ObjectId(1), -5.0, -1.0).is_none());
        assert!(eng.interval_ur(&ott, ObjectId(9), 1.0, 2.0).is_none());
    }

    #[test]
    fn interval_clipped_to_lifetime_boundaries() {
        let eng = engine(false);
        let ott = walking_ott();
        // Query starts before the first record and ends after the last.
        let ur = eng.interval_ur(&ott, ObjectId(1), -10.0, 100.0).unwrap();
        assert!(ur.contains(Point::new(2.0, 2.0)));
        assert!(ur.contains(Point::new(14.0, 2.0)));
        assert_eq!(ur.segment_count(), 5);
    }

    #[test]
    fn topology_check_excludes_room_behind_wall() {
        // Figure 8 scenario: an inactive object between dev0 and dev1 in
        // the corridor. Without topology the UR pokes into the room above
        // the wall; with topology the room is excluded because walking
        // there requires the door at (10, 4), far beyond the budget.
        let ott = ObjectTrackingTable::from_rows(vec![
            row(1, 1, 0.0, 2.0),  // dev1 at (8,2)
            row(1, 2, 8.0, 10.0), // dev2 at (14,2)
        ])
        .unwrap();
        let t = 5.0;
        let state = ott.state_at(ObjectId(1), t).unwrap();

        let eng_euclid = engine(false);
        let eng_topo = engine(true);
        let ur_euclid = eng_euclid.snapshot_ur(&ott, state, t);
        let ur_topo = eng_topo.snapshot_ur(&ott, state, t);

        // A point in the room above, Euclidean-near both devices but only
        // reachable through the door at (8.2, 4), which costs more walking
        // than the V_max budget allows.
        let in_room = Point::new(11.0, 4.3);
        assert!(ur_euclid.contains(in_room), "euclidean UR should reach the room");
        assert!(!ur_topo.contains(in_room), "topology check must exclude the room");

        // Corridor points agree.
        let in_hall = Point::new(11.0, 2.0);
        assert_eq!(ur_euclid.contains(in_hall), ur_topo.contains(in_hall));
    }

    #[test]
    fn topology_ur_is_subset_of_euclidean_ur() {
        let ott = walking_ott();
        let eng_euclid = engine(false);
        let eng_topo = engine(true);
        let ur_e = eng_euclid.interval_ur(&ott, ObjectId(1), 1.0, 13.0).unwrap();
        let ur_t = eng_topo.interval_ur(&ott, ObjectId(1), 1.0, 13.0).unwrap();
        for i in 0..60 {
            for j in 0..24 {
                let p = Point::new(i as f64 / 3.0, j as f64 / 3.0);
                if ur_t.contains(p) {
                    assert!(ur_e.contains(p), "topology UR must be a subset at {p}");
                }
            }
        }
    }

    #[test]
    fn presence_is_normalized() {
        let eng = engine(false);
        // Slack timing: the gaps are bridgeable with 2 m to spare, so the
        // inter-device ellipses have positive area (the zero-slack
        // `walking_ott` degenerates to a line segment of measure zero).
        let ott = ObjectTrackingTable::from_rows(vec![
            row(1, 0, 0.0, 2.0),
            row(1, 1, 8.0, 10.0),
            row(1, 2, 16.0, 18.0),
        ])
        .unwrap();
        let ur = eng.interval_ur(&ott, ObjectId(1), 1.0, 17.0).unwrap();
        let plan = plan();
        let poi_hall = &plan.pois()[0];
        let poi_room = &plan.pois()[1];
        let p_hall = eng.presence(&ur, poi_hall);
        let p_room = eng.presence(&ur, poi_room);
        assert!(p_hall > 0.0 && p_hall <= 1.0, "hall presence {p_hall}");
        // The room POI is disjoint from the corridor UR (euclidean MBRs may
        // touch, but the ellipse is corridor-bound here).
        assert!(p_room < p_hall);
    }

    #[test]
    fn presence_of_empty_region_is_zero() {
        let eng = engine(false);
        let plan = plan();
        let ur = UncertaintyRegion::empty();
        assert_eq!(eng.presence(&ur, &plan.pois()[0]), 0.0);
    }

    #[test]
    fn snapshot_coarse_mbr_modes() {
        let ott = walking_ott();
        let t = 4.0;
        let state = ott.state_at(ObjectId(1), t).unwrap();
        let mut cfg = UrConfig { vmax: 1.0, topology_check: false, ..UrConfig::default() };
        cfg.paper_coarse_mbr = true;
        let eng_paper = UrEngine::new(Arc::new(IndoorContext::new(plan())), cfg);
        cfg.paper_coarse_mbr = false;
        let eng_tight = UrEngine::new(Arc::new(IndoorContext::new(plan())), cfg);
        let coarse = eng_paper.snapshot_mbr_coarse(&ott, state, t);
        let tight = eng_tight.snapshot_mbr_coarse(&ott, state, t);
        assert!(coarse.contains_mbr(&tight));
        assert!(coarse.area() > tight.area());
        // Both must contain the true UR.
        let ur = eng_paper.snapshot_ur(&ott, state, t);
        assert!(coarse.contains_mbr(&ur.mbr()));
        assert!(tight.contains_mbr(&ur.mbr()));
    }

    #[test]
    fn table3_chain_resolution_covers_all_four_cases() {
        // walking_ott: rd0 = dev0 [0,2], rd1 = dev1 [6,8], rd2 = dev2 [12,14].
        let eng = engine(false);
        let ott = walking_ott();
        let chain = ott.object_records(ObjectId(1)).to_vec();
        let resolve = |ts, te| eng.interval_chain(&ott, ObjectId(1), ts, te).unwrap();

        // Case 1: active at both ends → rd_s = rd_cov(ts), rd_e = rd_cov(te).
        let c = resolve(1.0, 13.0);
        assert_eq!(c.records, chain);
        assert!(!c.start_inactive && !c.end_inactive);

        // Case 2: inactive at ts → rd_s = rd_pre(ts); active at te.
        let c = resolve(4.0, 7.0);
        assert_eq!(c.records, vec![chain[0], chain[1]]);
        assert!(c.start_inactive && !c.end_inactive);

        // Case 3: active at ts; inactive at te → rd_e = rd_suc(te).
        let c = resolve(7.0, 10.0);
        assert_eq!(c.records, vec![chain[1], chain[2]]);
        assert!(!c.start_inactive && c.end_inactive);

        // Case 4: inactive at both ends.
        let c = resolve(3.0, 10.0);
        assert_eq!(c.records, chain);
        assert!(c.start_inactive && c.end_inactive);
    }

    #[test]
    fn chain_clips_to_untracked_boundaries() {
        let eng = engine(false);
        let ott = walking_ott();
        let chain = ott.object_records(ObjectId(1)).to_vec();
        // Query starts before the first record: chain starts at rd0,
        // treated as an active start (no ring clipping).
        let c = eng.interval_chain(&ott, ObjectId(1), -5.0, 7.0).unwrap();
        assert_eq!(c.records.first(), Some(&chain[0]));
        assert!(!c.start_inactive);
        // Query ends after the last record.
        let c = eng.interval_chain(&ott, ObjectId(1), 13.0, 99.0).unwrap();
        assert_eq!(c.records.last(), Some(&chain[2]));
        assert!(!c.end_inactive);
        // Entirely outside the lifetime.
        assert!(eng.interval_chain(&ott, ObjectId(1), 20.0, 30.0).is_none());
        assert!(eng.interval_chain(&ott, ObjectId(1), -9.0, -1.0).is_none());
    }

    #[test]
    fn probability_in_normalizes_by_region_area() {
        let eng = engine(false);
        // A single active record: UR = the r=1 detection disk of dev1 at
        // (8,2), fully inside the hall POI? Use a custom check against the
        // hall POI [4,7]x[0,4] (disjoint) and a synthetic containment case.
        let ott = ObjectTrackingTable::from_rows(vec![row(1, 1, 0.0, 10.0)]).unwrap();
        let state = ott.state_at(ObjectId(1), 5.0).unwrap();
        let ur = eng.snapshot_ur(&ott, state, 5.0);
        let plan = plan();
        // poi-hall is [4,7]x[0,4]; the disk around (8,2) misses it almost
        // entirely (boundary graze), so probability ~0.
        let p_hall = eng.probability_in(&ur, &plan.pois()[0]);
        assert!(p_hall < 0.05, "got {p_hall}");
        // A POI covering the whole disk captures (almost) all the mass.
        let full = inflow_indoor::Poi::new(
            inflow_indoor::PoiId(99),
            "full",
            inflow_geometry::Polygon::rectangle(Point::new(6.0, 0.0), Point::new(10.0, 4.0)),
        );
        let p_full = eng.probability_in(&ur, &full);
        assert!(p_full > 0.95, "got {p_full}");
        // Half-covering POI gets ~half the mass.
        let half = inflow_indoor::Poi::new(
            inflow_indoor::PoiId(98),
            "half",
            inflow_geometry::Polygon::rectangle(Point::new(8.0, 0.0), Point::new(10.0, 4.0)),
        );
        let p_half = eng.probability_in(&ur, &half);
        assert!((p_half - 0.5).abs() < 0.08, "got {p_half}");
        // Presence differs: it normalizes by POI area instead.
        let presence_full = eng.presence(&ur, &full);
        assert!(presence_full < p_full, "presence {presence_full} vs probability {p_full}");
    }
}
