//! Shared indoor context: floor plan plus distance oracle.

use inflow_geometry::Point;
use inflow_indoor::{CellId, DistanceOracle, FloorPlan};

/// A floor plan bundled with its precomputed [`DistanceOracle`].
///
/// Uncertainty regions capture the context behind an `Arc` so they stay
/// `'static` and cheaply clonable while sharing one door-distance matrix.
#[derive(Debug)]
pub struct IndoorContext {
    plan: FloorPlan,
    oracle: DistanceOracle,
}

impl IndoorContext {
    /// Builds the context, precomputing all door-to-door shortest paths.
    pub fn new(plan: FloorPlan) -> IndoorContext {
        let oracle = DistanceOracle::new(&plan);
        IndoorContext { plan, oracle }
    }

    /// The floor plan.
    pub fn plan(&self) -> &FloorPlan {
        &self.plan
    }

    /// The distance oracle.
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// Indoor walking distance between two points (`None` when either
    /// point is outside every cell or no door path exists).
    pub fn indoor_distance(&self, p: Point, q: Point) -> Option<f64> {
        self.oracle.distance(&self.plan, p, q)
    }

    /// Indoor walking distance when the source's cell is already known —
    /// the topology check resolves each device's cell once per region and
    /// then runs this per sample point.
    pub fn indoor_distance_from_cell(&self, p: Point, p_cell: CellId, q: Point) -> Option<f64> {
        let q_cell = self.plan.locate(q)?;
        self.oracle.distance_between_located(&self.plan, p, p_cell, q, q_cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Polygon;
    use inflow_indoor::{CellKind, FloorPlanBuilder};

    #[test]
    fn context_wires_plan_and_oracle() {
        let mut b = FloorPlanBuilder::new();
        let a = b.add_cell(
            "a",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
        );
        let c = b.add_cell(
            "b",
            CellKind::Room,
            Polygon::rectangle(Point::new(4.0, 0.0), Point::new(8.0, 4.0)),
        );
        b.add_door("d", Point::new(4.0, 2.0), a, c);
        let ctx = IndoorContext::new(b.build().unwrap());
        let d = ctx.indoor_distance(Point::new(2.0, 2.0), Point::new(6.0, 2.0)).unwrap();
        assert!((d - 4.0).abs() < 1e-12);
        let cell = ctx.plan().locate(Point::new(2.0, 2.0)).unwrap();
        let d2 = ctx
            .indoor_distance_from_cell(Point::new(2.0, 2.0), cell, Point::new(6.0, 2.0))
            .unwrap();
        assert_eq!(d, d2);
    }
}
