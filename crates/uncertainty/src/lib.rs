//! Uncertainty-region derivation for symbolic indoor tracking (paper §3).
//!
//! Symbolic tracking data only captures an object's location while it is
//! inside some device's detection range; between detections the object's
//! location is uncertain. This crate derives, for a given object and time
//! parameter, the region where the object *can possibly be*:
//!
//! * **snapshot** uncertainty regions `UR(o, t)` — the active and inactive
//!   cases of §3.1.2 (Figure 2), built from detection disks and
//!   maximum-speed rings;
//! * **interval** uncertainty regions `UR(o, [t_s, t_e])` — the four cases
//!   of §3.2 (Table 3, Figures 4–7), built from chains of Pfoser–Jensen
//!   extended ellipses with ring clipping at inactive endpoints;
//! * the **indoor topology check** of §3.3: membership additionally
//!   requires the *indoor walking distance* from the anchoring devices to
//!   stay within the maximum-speed budget, excluding parts of space that
//!   are Euclidean-near but unreachable through doors (Figure 8).
//!
//! The central entry point is [`UrEngine`]; the result type is
//! [`UncertaintyRegion`], a composable [`inflow_geometry::Region`] carrying
//! the per-segment small MBRs used by the improved interval join algorithm
//! (§4.3.2, Figure 9).
//!
//! ## Fidelity notes
//!
//! * The paper's Case 2 formula degenerates when the first record after
//!   `t_s` is also the record covering `t_e` (the in-between union is
//!   empty, dropping the detection disk the object certainly occupies).
//!   This implementation always unions in the detection disk of every
//!   record overlapping the query interval, which matches the
//!   prose definition of `UR(o, [t_s, t_e])`.
//! * Objects are treated as untracked before their first and after their
//!   last OTT record (the paper leaves both unspecified); an interval UR
//!   simply starts/ends at the first/last overlapping record.

pub mod context;
pub mod engine;
pub mod regions;

pub use context::IndoorContext;
pub use engine::{IntervalChain, UncertaintyRegion, UrConfig, UrEngine};
pub use regions::{ConstrainedRing, ConstrainedTheta, IndoorAnchor};
