//! Topology-aware region primitives.
//!
//! The paper's §3.3 topology check excludes the parts of an uncertainty
//! region whose *indoor walking distance* from the anchoring device exceeds
//! the maximum-speed budget. Rather than post-partitioning the region, the
//! membership predicates here evaluate the indoor-distance constraint
//! directly: the integrator then measures exactly the checked region.

use crate::context::IndoorContext;
use inflow_geometry::{Circle, ExtendedEllipse, Mbr, Point, Region, Ring};
use inflow_indoor::CellId;
use std::sync::Arc;

/// A device anchoring a maximum-speed constraint: indoor distance is
/// measured from the device's position (minus its detection radius, since
/// the clock starts when the object crosses the range boundary).
#[derive(Debug, Clone)]
pub struct IndoorAnchor {
    ctx: Arc<IndoorContext>,
    /// Device detection circle.
    circle: Circle,
    /// The cell containing the device position, plus the precomputed
    /// indoor distance from the device to every door of the plan — turning
    /// each membership probe into a scan of the probe cell's few doors.
    cell: Option<(CellId, Vec<f64>)>,
}

impl IndoorAnchor {
    /// Creates an anchor for a device's detection circle, precomputing the
    /// device→door distance vector.
    pub fn new(ctx: Arc<IndoorContext>, circle: Circle) -> IndoorAnchor {
        let cell = ctx.plan().locate(circle.center).map(|c| {
            let dists = ctx.oracle().distances_from_point(ctx.plan(), circle.center, c);
            (c, dists)
        });
        IndoorAnchor { ctx, circle, cell }
    }

    /// Indoor distance from the device's range boundary to `q`:
    /// `max(0, d_indoor(center, q) − radius)`. Points inside the detection
    /// range cost zero. Returns `None` when `q` is indoors-unreachable
    /// (outside every cell or not connected by doors).
    pub fn boundary_indoor_distance(&self, q: Point) -> Option<f64> {
        if self.circle.contains(q) {
            return Some(0.0);
        }
        let d = match &self.cell {
            Some((anchor_cell, door_dists)) => {
                let plan = self.ctx.plan();
                let q_cell = plan.locate(q)?;
                let mut best = self.via_cell(q, q_cell, *anchor_cell, door_dists);
                // Points on shared walls (door positions, trajectories
                // hugging a wall) belong to every adjoining cell; the
                // indoor distance is the minimum over all of them.
                if near_mbr_boundary(plan.cell(q_cell).footprint().mbr(), q) {
                    for c in plan.locate_all(q) {
                        if c != q_cell {
                            best = best.min(self.via_cell(q, c, *anchor_cell, door_dists));
                        }
                    }
                }
                if !best.is_finite() {
                    return None;
                }
                best
            }
            // Device mounted outside the modelled cells (rare): fall back
            // to the Euclidean distance, i.e. no topology constraint.
            None => self.circle.center.distance(q),
        };
        Some((d - self.circle.radius).max(0.0))
    }

    /// Indoor distance from the anchor to `q` assuming `q` is entered
    /// through cell `c`.
    fn via_cell(&self, q: Point, c: CellId, anchor_cell: CellId, door_dists: &[f64]) -> f64 {
        if c == anchor_cell {
            return self.circle.center.distance(q);
        }
        let plan = self.ctx.plan();
        let positions = self.ctx.oracle().door_positions();
        let mut best = f64::INFINITY;
        for &door in plan.doors_of_cell(c) {
            let total = door_dists[door.index()] + positions[door.index()].distance(q);
            if total < best {
                best = total;
            }
        }
        best
    }
}

/// Whether `q` lies within a hair of the rectangle's boundary. Cells in
/// the supported floor plans are axis-aligned rectangles, so MBR proximity
/// coincides with footprint-boundary proximity.
fn near_mbr_boundary(m: inflow_geometry::Mbr, q: Point) -> bool {
    const TOL: f64 = 1e-6;
    (q.x - m.lo.x).abs() <= TOL
        || (m.hi.x - q.x).abs() <= TOL
        || (q.y - m.lo.y).abs() <= TOL
        || (m.hi.y - q.y).abs() <= TOL
}

/// `Ring(dev, ρ)` with an optional indoor-distance constraint.
///
/// Without an anchor this is exactly the paper's Euclidean ring; with one,
/// points whose indoor walking distance from the device exceeds `ρ` are
/// excluded — the Figure 8(a) check.
pub struct ConstrainedRing {
    ring: Ring,
    anchor: Option<IndoorAnchor>,
}

impl ConstrainedRing {
    /// A purely Euclidean ring (topology check disabled).
    pub fn euclidean(ring: Ring) -> ConstrainedRing {
        ConstrainedRing { ring, anchor: None }
    }

    /// A topology-checked ring around the anchor's device.
    pub fn indoor(ctx: Arc<IndoorContext>, circle: Circle, extension: f64) -> ConstrainedRing {
        ConstrainedRing {
            ring: Ring::new(circle, extension),
            anchor: Some(IndoorAnchor::new(ctx, circle)),
        }
    }

    /// The underlying Euclidean ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }
}

impl Region for ConstrainedRing {
    fn contains(&self, p: Point) -> bool {
        if !self.ring.contains(p) {
            return false;
        }
        match &self.anchor {
            None => true,
            Some(anchor) => match anchor.boundary_indoor_distance(p) {
                Some(d) => d <= self.ring.extension,
                None => false,
            },
        }
    }

    fn mbr(&self) -> Mbr {
        self.ring.mbr()
    }

    fn is_empty_hint(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The extended ellipse `Θ` with an optional indoor-distance constraint.
///
/// With anchors, the two boundary-distance terms of the membership test are
/// measured along indoor walking paths, excluding rooms that are Euclidean-
/// near but unreachable through doors within the budget — the Figure 8(b)
/// check.
pub struct ConstrainedTheta {
    theta: ExtendedEllipse,
    anchors: Option<(IndoorAnchor, IndoorAnchor)>,
}

impl ConstrainedTheta {
    /// A purely Euclidean extended ellipse (topology check disabled).
    pub fn euclidean(theta: ExtendedEllipse) -> ConstrainedTheta {
        ConstrainedTheta { theta, anchors: None }
    }

    /// A topology-checked extended ellipse between two devices.
    pub fn indoor(ctx: Arc<IndoorContext>, theta: ExtendedEllipse) -> ConstrainedTheta {
        let from = IndoorAnchor::new(Arc::clone(&ctx), theta.from);
        let to = IndoorAnchor::new(ctx, theta.to);
        ConstrainedTheta { theta, anchors: Some((from, to)) }
    }

    /// The underlying Euclidean extended ellipse.
    pub fn theta(&self) -> &ExtendedEllipse {
        &self.theta
    }
}

impl Region for ConstrainedTheta {
    fn contains(&self, p: Point) -> bool {
        // The Euclidean ellipse is a superset of the indoor one: use it as
        // a cheap pre-filter before any oracle lookups.
        if !self.theta.contains(p) {
            return false;
        }
        match &self.anchors {
            None => true,
            Some((from, to)) => {
                let Some(d1) = from.boundary_indoor_distance(p) else {
                    return false;
                };
                if d1 > self.theta.budget {
                    return false;
                }
                let Some(d2) = to.boundary_indoor_distance(p) else {
                    return false;
                };
                d1 + d2 <= self.theta.budget + inflow_geometry::EPS
            }
        }
    }

    fn mbr(&self) -> Mbr {
        self.theta.mbr()
    }

    fn is_empty_hint(&self) -> bool {
        self.theta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflow_geometry::Polygon;
    use inflow_indoor::{CellKind, FloorPlanBuilder};

    /// Two 4×4 rooms sharing wall x = 4 with a door at (4, 2). A device
    /// sits at the door.
    fn ctx() -> Arc<IndoorContext> {
        let mut b = FloorPlanBuilder::new();
        let a = b.add_cell(
            "a",
            CellKind::Room,
            Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)),
        );
        let c = b.add_cell(
            "b",
            CellKind::Room,
            Polygon::rectangle(Point::new(4.0, 0.0), Point::new(8.0, 4.0)),
        );
        b.add_door("d", Point::new(4.0, 2.0), a, c);
        Arc::new(IndoorContext::new(b.build().unwrap()))
    }

    #[test]
    fn euclidean_ring_has_no_topology() {
        let ring =
            ConstrainedRing::euclidean(Ring::new(Circle::new(Point::new(2.0, 3.9), 0.5), 3.0));
        // A point in the neighbouring room, Euclidean-near through the wall.
        assert!(ring.contains(Point::new(4.5, 3.9)));
    }

    #[test]
    fn indoor_ring_excludes_through_wall_points() {
        let ctx = ctx();
        // Device near the top wall of room a; budget 3 m. The point on the
        // other side of the wall is ~2 m away Euclidean but needs a walk
        // through the door at (4,2): far beyond 3 m.
        let ring =
            ConstrainedRing::indoor(Arc::clone(&ctx), Circle::new(Point::new(2.0, 3.9), 0.5), 3.0);
        assert!(!ring.contains(Point::new(4.5, 3.9)), "through-wall point must be excluded");
        // A same-room point at the same Euclidean distance stays.
        assert!(ring.contains(Point::new(2.0, 1.5)));
    }

    #[test]
    fn indoor_ring_keeps_reachable_next_room_points() {
        let ctx = ctx();
        // Device at the door: the next room is genuinely reachable.
        let ring =
            ConstrainedRing::indoor(Arc::clone(&ctx), Circle::new(Point::new(4.0, 2.0), 0.5), 2.0);
        assert!(ring.contains(Point::new(5.5, 2.0)));
        assert!(ring.contains(Point::new(2.5, 2.0)));
    }

    #[test]
    fn indoor_ring_rejects_points_outside_building() {
        let ctx = ctx();
        let ring =
            ConstrainedRing::indoor(Arc::clone(&ctx), Circle::new(Point::new(2.0, 2.0), 0.5), 30.0);
        assert!(!ring.contains(Point::new(-3.0, 2.0)), "outdoors is unreachable");
    }

    #[test]
    fn indoor_theta_excludes_far_rooms() {
        let ctx = ctx();
        // Both devices in room a; budget small. Points in room b require a
        // detour via the door, exceeding the budget.
        let theta = ExtendedEllipse::new(
            Circle::new(Point::new(1.0, 3.5), 0.4),
            Circle::new(Point::new(3.0, 3.5), 0.4),
            5.0,
        );
        let euclid = ConstrainedTheta::euclidean(theta);
        let indoor = ConstrainedTheta::indoor(Arc::clone(&ctx), theta);
        let through_wall = Point::new(4.6, 3.5);
        assert!(euclid.contains(through_wall));
        assert!(!indoor.contains(through_wall));
        // Same-room points agree.
        let inside = Point::new(2.0, 3.0);
        assert!(euclid.contains(inside) && indoor.contains(inside));
    }

    #[test]
    fn indoor_theta_is_subset_of_euclidean() {
        let ctx = ctx();
        let theta = ExtendedEllipse::new(
            Circle::new(Point::new(1.0, 1.0), 0.4),
            Circle::new(Point::new(6.0, 2.0), 0.4),
            9.0,
        );
        let euclid = ConstrainedTheta::euclidean(theta);
        let indoor = ConstrainedTheta::indoor(Arc::clone(&ctx), theta);
        for i in 0..40 {
            for j in 0..20 {
                let p = Point::new(i as f64 * 0.2, j as f64 * 0.2);
                if indoor.contains(p) {
                    assert!(euclid.contains(p), "indoor ⊄ euclidean at {p}");
                }
            }
        }
    }

    #[test]
    fn anchor_zero_inside_range() {
        let ctx = ctx();
        let anchor = IndoorAnchor::new(Arc::clone(&ctx), Circle::new(Point::new(2.0, 2.0), 1.0));
        assert_eq!(anchor.boundary_indoor_distance(Point::new(2.5, 2.0)), Some(0.0));
        let d = anchor.boundary_indoor_distance(Point::new(2.0, 3.8)).unwrap();
        assert!((d - 0.8).abs() < 1e-9);
    }
}
