//! The `IFRPL001` replay log: a CRC-framed binary record of one
//! serving session's op stream.
//!
//! Layout: the 8-byte magic, then frames in the workspace frame format
//! (`tag u8 | len u32 LE | payload | crc32 LE`, see
//! [`inflow_tracking::store::frame`]):
//!
//! * `META` — format version, fault seed, shard count (exactly one,
//!   first).
//! * `PUBLISH` — one published batch, in the wire `PUBLISH` payload
//!   encoding (shared with the protocol, so the log and the wire can
//!   never drift apart).
//! * `SUBSCRIBE` — one subscription registration, wire `SUBSCRIBE`
//!   payload (no resume section).
//! * `BARRIER` — a sync point: 1-based barrier index, then the
//!   [`StateHash`] observed there (engine digest + per-shard tracker
//!   digests). Replay recomputes and compares at each one.
//! * `FAULT` — an injected fault and where in the op stream it fired.
//! * `END` — op count (commit marker; a log without it is truncated).
//!
//! Corruption anywhere surfaces as a typed
//! [`StoreError::Frame`](inflow_tracking::StoreError) with the exact
//! byte offset — the same guarantee the WAL gives.

use crate::fault::{FaultEvent, FaultKind};
use inflow_service::protocol::{self, StateHash, SubSpec};
use inflow_tracking::store::frame::{self, Cursor, FrameReader};
use inflow_tracking::{RawReading, StoreError};

/// Magic header of a replay log file.
pub const REPLAY_MAGIC: &[u8; 8] = b"IFRPL001";

/// Replay-log frame tags.
pub mod rtag {
    /// Format version + fault seed + shard count.
    pub const META: u8 = 1;
    /// One published batch (wire `PUBLISH` payload).
    pub const PUBLISH: u8 = 2;
    /// One subscription (wire `SUBSCRIBE` payload, no resume).
    pub const SUBSCRIBE: u8 = 3;
    /// Barrier index + recorded state hashes.
    pub const BARRIER: u8 = 4;
    /// One injected fault.
    pub const FAULT: u8 = 5;
    /// Commit marker: total op count.
    pub const END: u8 = 6;
}

/// Replay-log format version (payload versioning inside `IFRPL001`).
pub const LOG_VERSION: u32 = 1;

/// Session-level metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    pub version: u32,
    /// Seed the fault plan was generated from (0 = hand-written).
    pub seed: u64,
    /// Shard count the recording server ran with; replay must match or
    /// the shard hash vectors aren't comparable.
    pub shards: u32,
}

/// A barrier sync point and the state digests recorded there.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierRecord {
    /// 1-based barrier number within the session.
    pub index: u32,
    pub hash: StateHash,
}

/// One recorded operation, in stream order.
#[derive(Debug, Clone)]
pub enum Op {
    Publish(Vec<RawReading>),
    Subscribe(SubSpec),
    Barrier(BarrierRecord),
    Fault(FaultEvent),
}

/// A parsed (or under-construction) replay log.
#[derive(Debug, Clone)]
pub struct ReplayLog {
    pub meta: Meta,
    pub ops: Vec<Op>,
}

impl ReplayLog {
    pub fn new(seed: u64, shards: u32) -> ReplayLog {
        ReplayLog { meta: Meta { version: LOG_VERSION, seed, shards }, ops: Vec::new() }
    }

    /// Number of barriers recorded.
    pub fn barriers(&self) -> u32 {
        self.ops.iter().filter(|op| matches!(op, Op::Barrier(_))).count() as u32
    }

    /// Serializes the log, magic through commit marker.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(REPLAY_MAGIC);
        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(&self.meta.version.to_le_bytes());
        meta.extend_from_slice(&self.meta.seed.to_le_bytes());
        meta.extend_from_slice(&self.meta.shards.to_le_bytes());
        frame::write_frame(&mut out, rtag::META, &meta);
        for op in &self.ops {
            match op {
                Op::Publish(readings) => {
                    frame::write_frame(&mut out, rtag::PUBLISH, &protocol::encode_publish(readings))
                }
                Op::Subscribe(spec) => {
                    frame::write_frame(&mut out, rtag::SUBSCRIBE, &protocol::encode_subspec(spec))
                }
                Op::Barrier(rec) => {
                    let mut payload = Vec::new();
                    payload.extend_from_slice(&rec.index.to_le_bytes());
                    payload.extend_from_slice(&protocol::encode_state_hash(&rec.hash));
                    frame::write_frame(&mut out, rtag::BARRIER, &payload);
                }
                Op::Fault(ev) => {
                    let mut payload = Vec::with_capacity(13);
                    payload.extend_from_slice(&ev.at_op.to_le_bytes());
                    let (kind, shard) = ev.kind.encode();
                    payload.push(kind);
                    payload.extend_from_slice(&shard.to_le_bytes());
                    frame::write_frame(&mut out, rtag::FAULT, &payload);
                }
            }
        }
        frame::write_frame(&mut out, rtag::END, &(self.ops.len() as u64).to_le_bytes());
        out
    }

    /// Parses a log, validating the magic, every frame CRC (errors carry
    /// the exact byte offset) and the commit marker.
    pub fn parse(bytes: &[u8]) -> Result<ReplayLog, StoreError> {
        if bytes.len() < REPLAY_MAGIC.len() || &bytes[..REPLAY_MAGIC.len()] != REPLAY_MAGIC {
            return Err(StoreError::BadMagic { what: "replay log" });
        }
        let mut reader = FrameReader::new(bytes, REPLAY_MAGIC.len());
        let mut meta: Option<Meta> = None;
        let mut ops = Vec::new();
        let mut committed = false;
        for item in &mut reader {
            let f = item?;
            let mut c = Cursor::new(&f);
            match f.tag {
                rtag::META => {
                    if meta.is_some() {
                        return Err(c.bad("duplicate META frame".into()));
                    }
                    let version = c.u32("version")?;
                    if version != LOG_VERSION {
                        return Err(c.bad(format!("unsupported log version {version}")));
                    }
                    let seed = c.u64("seed")?;
                    let shards = c.u32("shards")?;
                    c.done()?;
                    meta = Some(Meta { version, seed, shards });
                }
                rtag::PUBLISH => {
                    let readings = protocol::decode_publish(f.payload)
                        .map_err(|e| c.bad(format!("publish payload: {e}")))?;
                    ops.push(Op::Publish(readings));
                }
                rtag::SUBSCRIBE => {
                    let spec = protocol::decode_subspec(f.payload)
                        .map_err(|e| c.bad(format!("subscribe payload: {e}")))?;
                    ops.push(Op::Subscribe(spec));
                }
                rtag::BARRIER => {
                    let index = c.u32("barrier index")?;
                    let hash =
                        protocol::decode_state_hash(c.rest()).map_err(|e| StoreError::Decode {
                            offset: f.offset,
                            reason: format!("barrier hashes: {e}"),
                        })?;
                    ops.push(Op::Barrier(BarrierRecord { index, hash }));
                }
                rtag::FAULT => {
                    let at_op = c.u64("fault position")?;
                    let kind_byte = c.u8("fault kind")?;
                    let shard = c.u32("fault shard")?;
                    c.done()?;
                    let kind = FaultKind::decode(kind_byte, shard)
                        .ok_or_else(|| c.bad(format!("unknown fault kind {kind_byte}")))?;
                    ops.push(Op::Fault(FaultEvent { at_op, kind }));
                }
                rtag::END => {
                    let count = c.u64("op count")?;
                    c.done()?;
                    if count != ops.len() as u64 {
                        return Err(c.bad(format!(
                            "op count mismatch: marker says {count}, log holds {}",
                            ops.len()
                        )));
                    }
                    committed = true;
                    break;
                }
                other => return Err(c.bad(format!("unknown replay frame tag {other}"))),
            }
        }
        let Some(meta) = meta else {
            return Err(StoreError::InvalidState { reason: "replay log has no META frame".into() });
        };
        if !committed {
            return Err(StoreError::MissingCommit { offset: bytes.len() });
        }
        Ok(ReplayLog { meta, ops })
    }

    /// The prefix of this log up to and including barrier
    /// `barrier_index` (1-based), re-committed as a standalone log —
    /// the `--bisect` shrink step.
    pub fn truncate_to_barrier(&self, barrier_index: u32) -> ReplayLog {
        let mut ops = Vec::new();
        for op in &self.ops {
            let is_target = matches!(op, Op::Barrier(rec) if rec.index == barrier_index);
            ops.push(op.clone());
            if is_target {
                break;
            }
        }
        ReplayLog { meta: self.meta.clone(), ops }
    }
}
