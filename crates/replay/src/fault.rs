//! Chaos schedules: deterministic, replayable fault plans.
//!
//! A [`FaultPlan`] pins each fault to a position in the op stream
//! (`at_op` = number of ops executed before it fires), so a recorded
//! chaos run and its replay inject the *same* fault at the *same*
//! point. Plans are either hand-written (`parse`) or generated from a
//! seed (`generate`) — the seed is stored in the log's META frame, so a
//! failing run's schedule is reproducible from the artifact alone.

use std::fmt;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill shard `i` abruptly (WAL survives, queue survives).
    CrashShard(u32),
    /// Restart shard `i` (WAL recovery + full delta re-emission).
    RestartShard(u32),
    /// Torn write: sync, crash shard `i`, shear trailing bytes off its
    /// WAL mid-frame, restart (recovery must detect and truncate).
    TornWal(u32),
    /// Drop the driving connection and re-establish it (subscriptions
    /// re-registered deterministically).
    Disconnect,
}

impl FaultKind {
    /// Wire encoding: `(kind byte, shard)`.
    pub fn encode(&self) -> (u8, u32) {
        match *self {
            FaultKind::CrashShard(i) => (1, i),
            FaultKind::RestartShard(i) => (2, i),
            FaultKind::TornWal(i) => (3, i),
            FaultKind::Disconnect => (4, 0),
        }
    }

    pub fn decode(kind: u8, shard: u32) -> Option<FaultKind> {
        match kind {
            1 => Some(FaultKind::CrashShard(shard)),
            2 => Some(FaultKind::RestartShard(shard)),
            3 => Some(FaultKind::TornWal(shard)),
            4 => Some(FaultKind::Disconnect),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::CrashShard(i) => write!(f, "crash:{i}"),
            FaultKind::RestartShard(i) => write!(f, "restart:{i}"),
            FaultKind::TornWal(i) => write!(f, "torn:{i}"),
            FaultKind::Disconnect => write!(f, "disconnect"),
        }
    }
}

/// A fault and the op-stream position it fires at (after `at_op` ops
/// have executed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_op: u64,
    pub kind: FaultKind,
}

/// A deterministic chaos schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Generation seed (0 for hand-written plans).
    pub seed: u64,
    /// Events sorted by `at_op`.
    pub events: Vec<FaultEvent>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl FaultPlan {
    /// Generates `faults` crash-class events across an op stream of
    /// length `ops` against `shards` shards. Each event is a
    /// self-healing pair or unit — a `CrashShard` is always followed by
    /// its `RestartShard` two ops later, a `TornWal` restarts
    /// internally, a `Disconnect` reconnects internally — so a
    /// generated plan never leaves the server degraded at the end of
    /// the run.
    pub fn generate(seed: u64, ops: u64, shards: u32, faults: usize) -> FaultPlan {
        let mut state = seed | 1;
        let mut events = Vec::new();
        if ops == 0 || shards == 0 {
            return FaultPlan { seed, events };
        }
        for _ in 0..faults {
            let at_op = xorshift(&mut state) % ops;
            let shard = (xorshift(&mut state) % shards as u64) as u32;
            match xorshift(&mut state) % 3 {
                0 => {
                    events.push(FaultEvent { at_op, kind: FaultKind::CrashShard(shard) });
                    events.push(FaultEvent {
                        at_op: (at_op + 2).min(ops),
                        kind: FaultKind::RestartShard(shard),
                    });
                }
                1 => events.push(FaultEvent { at_op, kind: FaultKind::TornWal(shard) }),
                _ => events.push(FaultEvent { at_op, kind: FaultKind::Disconnect }),
            }
        }
        events.sort_by_key(|e| e.at_op);
        FaultPlan { seed, events }
    }

    /// Parses a hand-written schedule:
    /// `"<op>:crash:<shard>,<op>:restart:<shard>,<op>:torn:<shard>,<op>:disconnect"`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let mut fields = part.split(':');
            let at_op: u64 = fields
                .next()
                .ok_or_else(|| format!("empty fault spec in {part:?}"))?
                .parse()
                .map_err(|_| format!("bad op position in {part:?}"))?;
            let kind_name =
                fields.next().ok_or_else(|| format!("missing fault kind in {part:?}"))?;
            let shard = match fields.next() {
                Some(s) => s.parse::<u32>().map_err(|_| format!("bad shard in {part:?}"))?,
                None => 0,
            };
            let kind = match kind_name {
                "crash" => FaultKind::CrashShard(shard),
                "restart" => FaultKind::RestartShard(shard),
                "torn" => FaultKind::TornWal(shard),
                "disconnect" => FaultKind::Disconnect,
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            events.push(FaultEvent { at_op, kind });
        }
        events.sort_by_key(|e| e.at_op);
        Ok(FaultPlan { seed: 0, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let a = FaultPlan::generate(42, 100, 2, 5);
        let b = FaultPlan::generate(42, 100, 2, 5);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at_op <= w[1].at_op));
        assert_ne!(a, FaultPlan::generate(43, 100, 2, 5));
    }

    #[test]
    fn parse_round_trips_kinds() {
        let plan = FaultPlan::parse("5:crash:1, 7:restart:1,9:torn:0,11:disconnect").unwrap();
        assert_eq!(
            plan.events,
            vec![
                FaultEvent { at_op: 5, kind: FaultKind::CrashShard(1) },
                FaultEvent { at_op: 7, kind: FaultKind::RestartShard(1) },
                FaultEvent { at_op: 9, kind: FaultKind::TornWal(0) },
                FaultEvent { at_op: 11, kind: FaultKind::Disconnect },
            ]
        );
        assert!(FaultPlan::parse("5:melt:1").is_err());
        assert!(FaultPlan::parse("x:crash:1").is_err());
    }
}
