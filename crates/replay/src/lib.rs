//! `inflow-replay`: deterministic record/replay and chaos-scheduled
//! fault injection for the flow-monitoring server.
//!
//! Three pieces:
//!
//! * **Recording** ([`session`]): [`RecordingSession`] taps a serving
//!   run's op stream — publishes, subscribes, barriers, injected
//!   faults — into a CRC-framed `IFRPL001` log ([`log`]), stamping a
//!   deterministic [`StateHash`](inflow_service::protocol::StateHash)
//!   (per-shard tracker digests + engine digest) at every barrier.
//! * **Chaos** ([`fault`]): [`FaultPlan`] pins seeded or hand-written
//!   faults (shard kills, torn WAL writes, connection drops) to op
//!   positions, making a chaos run a replayable artifact rather than a
//!   one-off.
//! * **Replay** ([`replayer`]): [`replay`] drives a fresh server
//!   through the log and compares hashes at every barrier, producing a
//!   typed [`DivergenceReport`] (first diverging barrier, per-shard
//!   diff, flight-recorder dump) on mismatch; [`bisect`] shrinks a
//!   diverging log to its minimal diverging prefix by binary search
//!   over barrier-truncated replays.
//!
//! Everything is `std` only, like the rest of the workspace.

pub mod fault;
pub mod log;
pub mod replayer;
pub mod session;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use log::{BarrierRecord, Meta, Op, ReplayLog, LOG_VERSION, REPLAY_MAGIC};
pub use replayer::{bisect, replay, BisectResult, DivergenceReport, ReplayReport};
pub use session::{record_run, RecordOptions, RecordingSession};

use inflow_service::ServiceError;
use inflow_tracking::StoreError;
use std::fmt;

/// What went wrong recording or replaying.
#[derive(Debug)]
pub enum ReplayError {
    /// A protocol exchange with the server failed.
    Service(ServiceError),
    /// Filesystem-level failure (fault injection, server restart).
    Io(std::io::Error),
    /// The log itself is malformed or corrupt (CRC failures carry the
    /// exact byte offset).
    Log(StoreError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Service(e) => write!(f, "service error: {e}"),
            ReplayError::Io(e) => write!(f, "i/o error: {e}"),
            ReplayError::Log(e) => write!(f, "replay log error: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ServiceError> for ReplayError {
    fn from(e: ServiceError) -> ReplayError {
        ReplayError::Service(e)
    }
}

impl From<StoreError> for ReplayError {
    fn from(e: StoreError) -> ReplayError {
        ReplayError::Log(e)
    }
}
