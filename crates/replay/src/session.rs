//! Recording sessions: tap a live server's op stream into a replay log.
//!
//! The recorder drives the server through **one** connection, so the op
//! stream has a total order — the precondition for bit-deterministic
//! replay (two concurrent publishers would interleave differently on
//! every run). Faults are applied through the same chokepoint, at a
//! recorded position in the stream.
//!
//! Fault semantics (identical under record and replay — both go through
//! [`Driver::apply_fault`]):
//!
//! * `CrashShard` — kill the worker abruptly; its WAL and queue survive.
//! * `RestartShard` — restart on the same queue; WAL recovery re-emits
//!   full deltas.
//! * `TornWal` — barrier (so the WAL's contents are deterministic),
//!   crash, shear trailing bytes off `wal.bin` mid-frame, restart. The
//!   recovery path must detect the torn tail via CRC and truncate it.
//! * `Disconnect` — unsubscribe everything (so the engine's async
//!   connection cleanup has nothing racy to do), drop the connection,
//!   reconnect, re-subscribe in the original order. Subscription ids
//!   advance deterministically.

use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::log::{BarrierRecord, Op, ReplayLog};
use crate::ReplayError;
use inflow_service::protocol::StateHash;
use inflow_service::{Client, ServerHandle, SubSpec};
use inflow_tracking::store::WAL_FILE;
use inflow_tracking::RawReading;
use std::path::PathBuf;

/// How many trailing bytes a `TornWal` fault shears off the WAL.
const TORN_BYTES: u64 = 3;

/// A WAL shorter than this is header-only; shearing it would corrupt
/// the file identity rather than tear a frame, so the fault degrades to
/// a plain crash/restart (deterministically in both runs).
const MIN_TORN_LEN: u64 = 64;

/// Drives one server through the recorded op vocabulary. Shared by the
/// recorder and the replayer so fault semantics can never diverge
/// between them.
pub(crate) struct Driver<'a> {
    handle: &'a ServerHandle,
    store_dir: PathBuf,
    client: Client,
    /// Subscription specs in registration order (for deterministic
    /// re-registration after a `Disconnect`).
    specs: Vec<SubSpec>,
    server_ids: Vec<u64>,
}

impl<'a> Driver<'a> {
    pub fn new(handle: &'a ServerHandle, store_dir: PathBuf) -> Result<Driver<'a>, ReplayError> {
        let client = Client::connect(handle.addr())?;
        Ok(Driver { handle, store_dir, client, specs: Vec::new(), server_ids: Vec::new() })
    }

    pub fn publish(&mut self, readings: &[RawReading]) -> Result<(), ReplayError> {
        self.client.publish(readings)?;
        Ok(())
    }

    pub fn subscribe(&mut self, spec: &SubSpec) -> Result<u64, ReplayError> {
        let id = self.client.subscribe(spec)?;
        self.specs.push(spec.clone());
        self.server_ids.push(id);
        Ok(id)
    }

    pub fn state_hash(&mut self) -> Result<StateHash, ReplayError> {
        Ok(self.client.state_hash()?)
    }

    pub fn flight_dump(&mut self) -> Result<String, ReplayError> {
        Ok(self.client.flight_dump()?)
    }

    pub fn apply_fault(&mut self, kind: &FaultKind) -> Result<(), ReplayError> {
        match *kind {
            FaultKind::CrashShard(i) => {
                self.handle.crash_shard(i as usize);
                Ok(())
            }
            FaultKind::RestartShard(i) => {
                self.handle.restart_shard(i as usize).map_err(ReplayError::Io)
            }
            FaultKind::TornWal(i) => {
                // Sync first: every routed reading is in the WAL, so the
                // bytes being torn are the same on record and replay.
                self.client.barrier()?;
                self.handle.crash_shard(i as usize);
                let wal = self.store_dir.join(format!("shard-{i}")).join(WAL_FILE);
                let len = std::fs::metadata(&wal).map_err(ReplayError::Io)?.len();
                if len >= MIN_TORN_LEN {
                    let f = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&wal)
                        .map_err(ReplayError::Io)?;
                    f.set_len(len - TORN_BYTES).map_err(ReplayError::Io)?;
                }
                self.handle.restart_shard(i as usize).map_err(ReplayError::Io)
            }
            FaultKind::Disconnect => {
                // Deterministic teardown: retire the subscriptions
                // synchronously so the engine's async DropConn cleanup
                // is a no-op, then reconnect and re-register in order.
                for &id in &self.server_ids {
                    self.client.unsubscribe(id)?;
                }
                self.client = Client::connect(self.handle.addr())?;
                self.server_ids.clear();
                let specs = self.specs.clone();
                for spec in &specs {
                    self.server_ids.push(self.client.subscribe(spec)?);
                }
                Ok(())
            }
        }
    }
}

/// Records one serving session into a [`ReplayLog`].
pub struct RecordingSession<'a> {
    driver: Driver<'a>,
    log: ReplayLog,
    barriers: u32,
}

impl<'a> RecordingSession<'a> {
    /// Attaches a recorder to a freshly started server (`store_dir` is
    /// the server's store root — torn-WAL faults reach into it).
    pub fn start(
        handle: &'a ServerHandle,
        store_dir: PathBuf,
        seed: u64,
        shards: u32,
    ) -> Result<RecordingSession<'a>, ReplayError> {
        let driver = Driver::new(handle, store_dir)?;
        Ok(RecordingSession { driver, log: ReplayLog::new(seed, shards), barriers: 0 })
    }

    /// Ops recorded so far (fault positions index into this).
    pub fn op_index(&self) -> u64 {
        self.log.ops.len() as u64
    }

    pub fn publish(&mut self, readings: &[RawReading]) -> Result<(), ReplayError> {
        self.driver.publish(readings)?;
        self.log.ops.push(Op::Publish(readings.to_vec()));
        Ok(())
    }

    pub fn subscribe(&mut self, spec: &SubSpec) -> Result<u64, ReplayError> {
        let id = self.driver.subscribe(spec)?;
        self.log.ops.push(Op::Subscribe(spec.clone()));
        Ok(id)
    }

    /// Runs a barrier + state digest and records it as a verification
    /// point. Returns the digest.
    pub fn barrier_hash(&mut self) -> Result<StateHash, ReplayError> {
        let hash = self.driver.state_hash()?;
        self.barriers += 1;
        self.log.ops.push(Op::Barrier(BarrierRecord { index: self.barriers, hash: hash.clone() }));
        Ok(hash)
    }

    /// Injects one fault and records it at the current stream position.
    pub fn fault(&mut self, kind: FaultKind) -> Result<(), ReplayError> {
        let at_op = self.op_index();
        self.driver.apply_fault(&kind)?;
        self.log.ops.push(Op::Fault(FaultEvent { at_op, kind }));
        Ok(())
    }

    /// Finishes recording and yields the log.
    pub fn finish(self) -> ReplayLog {
        self.log
    }
}

/// Knobs for [`record_run`].
#[derive(Debug, Clone)]
pub struct RecordOptions {
    /// Readings per `PUBLISH` batch.
    pub chunk: usize,
    /// A barrier/hash point every this many publishes (and always one
    /// at the end).
    pub barrier_every: usize,
    /// Subscriptions to register up front.
    pub subs: Vec<SubSpec>,
    /// Chaos schedule; positions count publishes + barriers executed.
    pub plan: FaultPlan,
}

impl Default for RecordOptions {
    fn default() -> RecordOptions {
        RecordOptions { chunk: 64, barrier_every: 8, subs: Vec::new(), plan: FaultPlan::default() }
    }
}

/// The canonical recording loop: subscribe, stream the readings in
/// chunks with periodic barrier/hash points, inject the plan's faults
/// at their scheduled positions, and always close with a final barrier.
pub fn record_run(
    handle: &ServerHandle,
    store_dir: PathBuf,
    readings: &[RawReading],
    opts: &RecordOptions,
) -> Result<ReplayLog, ReplayError> {
    let shards = 0; // patched below once known via the first hash
    let mut session = RecordingSession::start(handle, store_dir, opts.plan.seed, shards)?;
    for spec in &opts.subs {
        session.subscribe(spec)?;
    }
    let mut faults = opts.plan.events.iter().peekable();
    let mut logical: u64 = 0;
    let mut publishes: usize = 0;
    let chunk = opts.chunk.max(1);
    let barrier_every = opts.barrier_every.max(1);
    let mut shard_count: Option<u32> = None;
    for batch in readings.chunks(chunk) {
        while faults.peek().is_some_and(|e| e.at_op <= logical) {
            let ev = *faults.next().expect("peeked");
            session.fault(ev.kind)?;
        }
        session.publish(batch)?;
        publishes += 1;
        logical += 1;
        if publishes.is_multiple_of(barrier_every) {
            let h = session.barrier_hash()?;
            shard_count.get_or_insert(h.shards.len() as u32);
            logical += 1;
        }
    }
    for ev in faults {
        session.fault(ev.kind)?;
    }
    let h = session.barrier_hash()?;
    shard_count.get_or_insert(h.shards.len() as u32);
    let mut log = session.finish();
    log.meta.shards = shard_count.unwrap_or(0);
    Ok(log)
}
