//! Replay a recorded log against a fresh server and verify state
//! hashes at every barrier.
//!
//! The replayer is given a *server factory* rather than a handle: each
//! replay (and each bisect probe) needs a pristine server — fresh store
//! directory, same configuration as the recording run. The factory
//! returns the handle plus its store root (torn-WAL faults reach into
//! it); the replayer shuts the server down when the run ends.

use crate::log::{Op, ReplayLog};
use crate::session::Driver;
use crate::ReplayError;
use inflow_service::protocol::StateHash;
use inflow_service::ServerHandle;
use std::fmt;
use std::path::PathBuf;

/// Where and how a replay diverged from the recording.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// 1-based index of the first barrier whose hashes mismatched.
    pub barrier_index: u32,
    pub expected: StateHash,
    pub got: StateHash,
    /// Whether the engine digest (rows + subscription answers) differed.
    pub engine_mismatch: bool,
    /// Shards whose tracker digests differed.
    pub mismatched_shards: Vec<usize>,
    /// The replaying server's flight-recorder dump at the moment of
    /// divergence — the postmortem context.
    pub flight_jsonl: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "replay diverged at barrier {}", self.barrier_index)?;
        writeln!(
            f,
            "  engine: expected {:016x}, got {:016x}{}",
            self.expected.engine,
            self.got.engine,
            if self.engine_mismatch { "  <-- MISMATCH" } else { "" }
        )?;
        for (i, (e, g)) in self.expected.shards.iter().zip(&self.got.shards).enumerate() {
            let mark = if self.mismatched_shards.contains(&i) { "  <-- MISMATCH" } else { "" };
            writeln!(f, "  shard {i}: expected {e:016x}, got {g:016x}{mark}")?;
        }
        if self.expected.shards.len() != self.got.shards.len() {
            writeln!(
                f,
                "  shard count: expected {}, got {}",
                self.expected.shards.len(),
                self.got.shards.len()
            )?;
        }
        write!(f, "  flight events captured: {}", self.flight_jsonl.lines().count())
    }
}

/// The outcome of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Barriers verified (including the diverging one, if any).
    pub barriers_checked: u32,
    /// The digests this replay produced, barrier by barrier.
    pub hashes: Vec<StateHash>,
    /// `None` = bit-for-bit deterministic against the recording.
    pub divergence: Option<DivergenceReport>,
}

/// Replays `log` against a fresh server from `start_server`, comparing
/// state hashes at every recorded barrier. Stops at the first
/// divergence (the report captures the flight recorder there).
pub fn replay<F>(log: &ReplayLog, mut start_server: F) -> Result<ReplayReport, ReplayError>
where
    F: FnMut() -> std::io::Result<(ServerHandle, PathBuf)>,
{
    let (handle, store_dir) = start_server().map_err(ReplayError::Io)?;
    let result = drive(log, &handle, store_dir);
    // Wind the probe server down even when the drive errored.
    handle.shutdown();
    handle.wait();
    result
}

fn drive(
    log: &ReplayLog,
    handle: &ServerHandle,
    store_dir: PathBuf,
) -> Result<ReplayReport, ReplayError> {
    let mut driver = Driver::new(handle, store_dir)?;
    let mut report = ReplayReport { barriers_checked: 0, hashes: Vec::new(), divergence: None };
    for op in &log.ops {
        match op {
            Op::Publish(readings) => driver.publish(readings)?,
            Op::Subscribe(spec) => {
                driver.subscribe(spec)?;
            }
            Op::Fault(ev) => driver.apply_fault(&ev.kind)?,
            Op::Barrier(rec) => {
                let got = driver.state_hash()?;
                report.barriers_checked += 1;
                report.hashes.push(got.clone());
                if got != rec.hash {
                    let engine_mismatch = got.engine != rec.hash.engine;
                    let mismatched_shards: Vec<usize> = rec
                        .hash
                        .shards
                        .iter()
                        .zip(&got.shards)
                        .enumerate()
                        .filter(|(_, (e, g))| e != g)
                        .map(|(i, _)| i)
                        .collect();
                    let flight_jsonl = driver.flight_dump().unwrap_or_default();
                    report.divergence = Some(DivergenceReport {
                        barrier_index: rec.index,
                        expected: rec.hash.clone(),
                        got,
                        engine_mismatch,
                        mismatched_shards,
                        flight_jsonl,
                    });
                    break;
                }
            }
        }
    }
    Ok(report)
}

/// The shrunk artifact `--bisect` produces.
#[derive(Debug, Clone)]
pub struct BisectResult {
    /// Earliest barrier (1-based) at which a truncated prefix of the
    /// log already diverges.
    pub first_diverging_barrier: u32,
    /// The minimal diverging prefix: ops up to and including that
    /// barrier, re-committed as a standalone log.
    pub minimal: ReplayLog,
    /// Whether the prefix one barrier shorter replayed clean (`None`
    /// when the divergence is already at barrier 1).
    pub prior_prefix_clean: Option<bool>,
}

/// Shrinks a diverging log to its minimal diverging prefix by binary
/// search over barrier-truncated prefixes, each probed with a fresh
/// replay. Returns `None` when the full log replays clean.
pub fn bisect<F>(log: &ReplayLog, mut start_server: F) -> Result<Option<BisectResult>, ReplayError>
where
    F: FnMut() -> std::io::Result<(ServerHandle, PathBuf)>,
{
    let full = replay(log, &mut start_server)?;
    let Some(div) = full.divergence else { return Ok(None) };
    // Invariant: the prefix through `hi` diverges; probe shorter ones.
    let mut lo = 1u32;
    let mut hi = div.barrier_index;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let probe = replay(&log.truncate_to_barrier(mid), &mut start_server)?;
        if probe.divergence.is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let prior_prefix_clean = if hi > 1 {
        let probe = replay(&log.truncate_to_barrier(hi - 1), &mut start_server)?;
        Some(probe.divergence.is_none())
    } else {
        None
    };
    Ok(Some(BisectResult {
        first_diverging_barrier: hi,
        minimal: log.truncate_to_barrier(hi),
        prior_prefix_clean,
    }))
}
