//! Workload generation for indoor flow-counting experiments.
//!
//! Reproduces the paper's two experimental datasets (§5.1):
//!
//! * **Synthetic**: a grid floor plan with "about 100 rooms that are all
//!   connected by doors to a hallway", ~200 RFID readers by doors and
//!   along the hallways, and objects moving by the *random waypoint*
//!   model at a fixed 1.1 m/s (also used as `V_max`). All Table 4
//!   parameters — `|O|`, detection range, `|P|`, `k`, `t_e − t_s` — are
//!   configurable.
//! * **CPH-like**: the paper's real dataset is 7 months of proprietary
//!   Bluetooth tracking from Copenhagen Airport (~600 K records, ~21 K
//!   passengers). That data is not publicly available, so [`generate_cph`]
//!   simulates the closest synthetic equivalent: a terminal concourse with
//!   gates and shops, sparse Bluetooth readers, and itinerary-driven
//!   passengers (check-in → security → shops → gate) with heavy-tailed
//!   dwell times. This preserves the properties the evaluation depends on:
//!   sparser detections, longer inactive gaps, fewer objects, and skewed
//!   POI popularity.
//!
//! Both generators return a [`Workload`]: the indoor context, the merged
//! Object Tracking Table, and the ground-truth trajectories — the latter
//! power the reproduction's strongest correctness check (an object's true
//! position always lies inside its derived uncertainty region).

pub mod accuracy;
pub mod cph;
pub mod movement;
pub mod noise;
pub mod rng;
pub mod scenarios;
pub mod synthetic;

pub use accuracy::{
    ranking_overlap, true_interval_flow, true_interval_ranking, true_snapshot_flow,
    true_snapshot_ranking,
};
pub use cph::{build_airport_plan, generate_cph, AirportLayout, CphConfig};
pub use movement::{DeviceIndex, TimedPath};
pub use noise::{
    apply_corruption, burst_loss, clock_drift, corruption_grid, drop_records, inject_outages,
    inject_teleports, jitter_timestamps, rows_of, CorruptionSpec,
};
pub use scenarios::{library_plan, metro_station_plan, office_plan};
pub use synthetic::{build_floor_plan, generate_synthetic, SyntheticConfig};

use inflow_tracking::{ObjectId, ObjectTrackingTable};
use inflow_uncertainty::IndoorContext;
use std::sync::Arc;

/// A generated experimental workload.
pub struct Workload {
    /// Floor plan + distance oracle.
    pub ctx: Arc<IndoorContext>,
    /// The merged Object Tracking Table.
    pub ott: ObjectTrackingTable,
    /// Ground-truth trajectories, for validation (not visible to queries).
    pub ground_truth: Vec<(ObjectId, TimedPath)>,
    /// The movement speed used (= `V_max` in the paper's setup).
    pub vmax: f64,
}
