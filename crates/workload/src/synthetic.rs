//! The synthetic grid workload (paper §5.1).
//!
//! Floor plan: `rooms_x × rooms_y` rooms (default 10×10 ≈ the paper's
//! "about 100 rooms"), each row of rooms sitting on a horizontal hallway,
//! all hallways joined by one vertical hallway. RFID readers are deployed
//! at room doors and along the hallways, spaced so detection ranges never
//! overlap up to the paper's maximum 2.5 m range. Objects move by the
//! random waypoint model at a fixed speed (1.1 m/s in the paper), which
//! also serves as `V_max`.

use crate::movement::{sample_readings, DeviceIndex, TimedPath};
use crate::rng::StdRng;
use crate::Workload;
use inflow_geometry::{Mbr, Point, Polygon};
use inflow_indoor::{CellId, CellKind, DistanceOracle, FloorPlan, FloorPlanBuilder};
use inflow_tracking::{merge_raw_readings, ObjectId, ObjectTrackingTable, RawReading};
use inflow_uncertainty::IndoorContext;
use std::sync::Arc;

/// Parameters of the synthetic workload (paper Table 4; defaults are
/// scaled down from paper scale so the committed test/bench suite runs in
/// minutes — every field is public and sweepable).
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Rooms per row.
    pub rooms_x: usize,
    /// Rows of rooms (each row has its own hallway).
    pub rooms_y: usize,
    /// Room edge length (metres).
    pub room_size: f64,
    /// Hallway width (metres).
    pub hallway_width: f64,
    /// RFID detection range (paper: 1–2.5 m, default 1 m).
    pub detection_range: f64,
    /// Number of moving objects `|O|` (paper: 10 K–50 K).
    pub num_objects: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Movement speed, also used as `V_max` (paper: 1.1 m/s).
    pub speed: f64,
    /// Positioning sampling period in seconds.
    pub sampling_period: f64,
    /// Uniform pause-time range at each waypoint (seconds).
    pub pause_range: (f64, f64),
    /// Total number of indoor POIs (paper: 75).
    pub num_pois: usize,
    /// RNG seed; identical configs generate identical workloads.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rooms_x: 10,
            rooms_y: 10,
            room_size: 10.0,
            hallway_width: 3.0,
            detection_range: 1.0,
            num_objects: 500,
            duration: 3_600.0,
            speed: 1.1,
            sampling_period: 1.0,
            pause_range: (5.0, 60.0),
            num_pois: 75,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// A miniature configuration for fast unit/integration tests.
    pub fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            rooms_x: 4,
            rooms_y: 3,
            num_objects: 30,
            duration: 600.0,
            num_pois: 20,
            ..SyntheticConfig::default()
        }
    }
}

/// Builds the grid floor plan (cells, doors, devices, POIs) for `cfg`.
pub fn build_floor_plan(cfg: &SyntheticConfig) -> FloorPlan {
    assert!(cfg.rooms_x >= 1 && cfg.rooms_y >= 1, "need at least one room");
    assert!(
        cfg.detection_range <= 2.5,
        "device spacing guarantees non-overlap only up to 2.5 m range"
    );
    let rs = cfg.room_size;
    let hw = cfg.hallway_width;
    let bh = rs + hw; // block height: hallway + room row
    let width = cfg.rooms_x as f64 * rs;

    let mut b = FloorPlanBuilder::new();

    // Vertical spine hallway on the left.
    let spine = b.add_cell(
        "spine",
        CellKind::Hallway,
        Polygon::rectangle(Point::new(-hw, 0.0), Point::new(0.0, cfg.rooms_y as f64 * bh)),
    );

    let mut room_cells: Vec<Vec<CellId>> = Vec::with_capacity(cfg.rooms_y);
    for j in 0..cfg.rooms_y {
        let y0 = j as f64 * bh;
        let hall = b.add_cell(
            format!("hall-{j}"),
            CellKind::Hallway,
            Polygon::rectangle(Point::new(0.0, y0), Point::new(width, y0 + hw)),
        );
        b.add_door(format!("spine-door-{j}"), Point::new(0.0, y0 + hw / 2.0), spine, hall);

        let mut row = Vec::with_capacity(cfg.rooms_x);
        for i in 0..cfg.rooms_x {
            let x0 = i as f64 * rs;
            let room = b.add_cell(
                format!("room-{i}-{j}"),
                CellKind::Room,
                Polygon::rectangle(Point::new(x0, y0 + hw), Point::new(x0 + rs, y0 + bh)),
            );
            let door_pos = Point::new(x0 + rs / 2.0, y0 + hw);
            b.add_door(format!("door-{i}-{j}"), door_pos, room, hall);
            // Reader at the room door.
            b.add_device(format!("dev-door-{i}-{j}"), door_pos, cfg.detection_range);
            row.push(room);
        }
        room_cells.push(row);

        // Hallway readers at every other room boundary, offset from the
        // door readers so ranges never overlap.
        for i in (1..cfg.rooms_x).step_by(2) {
            b.add_device(
                format!("dev-hall-{i}-{j}"),
                Point::new(i as f64 * rs, y0 + hw / 2.0),
                cfg.detection_range,
            );
        }
    }
    // Spine readers midway between spine doors.
    for j in 0..cfg.rooms_y {
        b.add_device(
            format!("dev-spine-{j}"),
            Point::new(-hw / 2.0, j as f64 * bh + hw / 2.0 + bh / 2.0),
            cfg.detection_range,
        );
    }

    // POIs: 75 at distinctive locations with different areas; multiple
    // POIs may come from the same large room (§5.1).
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9);
    let mut poi_count = 0usize;
    let mut room_order: Vec<(usize, usize)> =
        (0..cfg.rooms_y).flat_map(|j| (0..cfg.rooms_x).map(move |i| (i, j))).collect();
    shuffle(&mut room_order, &mut rng);
    'outer: loop {
        for &(i, j) in &room_order {
            if poi_count >= cfg.num_pois {
                break 'outer;
            }
            let x0 = i as f64 * rs;
            let y0 = j as f64 * bh + hw;
            if rng.random_range(0.0..1.0) < 0.3 && cfg.num_pois - poi_count >= 2 {
                // Split the room into two POIs (left / right halves).
                let inset = 0.5;
                b.add_poi(
                    format!("poi-{poi_count}"),
                    Polygon::rectangle(
                        Point::new(x0 + inset, y0 + inset),
                        Point::new(x0 + rs / 2.0 - inset / 2.0, y0 + rs - inset),
                    ),
                );
                poi_count += 1;
                b.add_poi(
                    format!("poi-{poi_count}"),
                    Polygon::rectangle(
                        Point::new(x0 + rs / 2.0 + inset / 2.0, y0 + inset),
                        Point::new(x0 + rs - inset, y0 + rs - inset),
                    ),
                );
                poi_count += 1;
            } else {
                let inset = rng.random_range(0.5..2.5);
                b.add_poi(
                    format!("poi-{poi_count}"),
                    Polygon::rectangle(
                        Point::new(x0 + inset, y0 + inset),
                        Point::new(x0 + rs - inset, y0 + rs - inset),
                    ),
                );
                poi_count += 1;
            }
        }
        if room_order.is_empty() {
            break;
        }
    }

    b.build().expect("synthetic plan is valid by construction")
}

/// Generates the full synthetic workload: plan, movement, readings, OTT.
pub fn generate_synthetic(cfg: &SyntheticConfig) -> Workload {
    let plan = build_floor_plan(cfg);
    let ctx = Arc::new(IndoorContext::new(plan));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let index = DeviceIndex::build(ctx.plan());

    let mut readings: Vec<RawReading> = Vec::new();
    let mut ground_truth = Vec::with_capacity(cfg.num_objects);
    for o in 0..cfg.num_objects {
        let object = ObjectId(o as u32);
        let path = random_waypoint_path(ctx.plan(), ctx.oracle(), cfg, &mut rng);
        sample_readings(ctx.plan(), &index, object, &path, cfg.sampling_period, &mut readings);
        ground_truth.push((object, path));
    }

    let rows = merge_raw_readings(readings, 1.5 * cfg.sampling_period);
    let ott = ObjectTrackingTable::from_rows(rows)
        .expect("non-overlapping ranges yield a consistent OTT");
    Workload { ctx, ott, ground_truth, vmax: cfg.speed }
}

/// One object's random-waypoint trajectory over `[0, duration]`.
fn random_waypoint_path(
    plan: &FloorPlan,
    oracle: &DistanceOracle,
    cfg: &SyntheticConfig,
    rng: &mut StdRng,
) -> TimedPath {
    let mut path = TimedPath::new();
    let mut t = 0.0;
    let mut pos = random_point_in_cell(plan, random_cell(plan, rng), rng);
    path.push(t, pos);
    while t < cfg.duration {
        let dest = random_point_in_cell(plan, random_cell(plan, rng), rng);
        let Some(route) = oracle.route(plan, pos, dest) else {
            // The grid plan is fully connected; an unreachable pick means a
            // degenerate sample — retry with a new destination.
            continue;
        };
        for pair in route.waypoints.windows(2) {
            let dist = pair[0].distance(pair[1]);
            if dist <= 0.0 {
                continue;
            }
            t += dist / cfg.speed;
            path.push(t, pair[1]);
        }
        let pause = rng.random_range(cfg.pause_range.0..=cfg.pause_range.1);
        t += pause;
        path.push(t, dest);
        pos = dest;
    }
    path
}

/// A uniformly chosen cell id.
fn random_cell(plan: &FloorPlan, rng: &mut StdRng) -> CellId {
    CellId(rng.random_range(0..plan.cells().len() as u32))
}

/// A uniform point strictly inside the cell's rectangle, inset a little so
/// routes and samples stay within the footprint.
fn random_point_in_cell(plan: &FloorPlan, cell: CellId, rng: &mut StdRng) -> Point {
    let mbr: Mbr = plan.cell(cell).footprint().mbr();
    let inset = 0.2_f64.min(mbr.width() / 4.0).min(mbr.height() / 4.0);
    Point::new(
        rng.random_range(mbr.lo.x + inset..mbr.hi.x - inset),
        rng.random_range(mbr.lo.y + inset..mbr.hi.y - inset),
    )
}

/// Fisher–Yates shuffle (avoids pulling in `rand`'s slice extension).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_structure_matches_config() {
        let cfg = SyntheticConfig::default();
        let plan = build_floor_plan(&cfg);
        // 100 rooms + 10 hallways + spine.
        assert_eq!(plan.cells().len(), 100 + 10 + 1);
        assert_eq!(plan.pois().len(), 75);
        // Readers: 100 door + 50 hallway + 10 spine.
        assert_eq!(plan.devices().len(), 160);
        // Doors: 100 room doors + 10 spine doors.
        assert_eq!(plan.doors().len(), 110);
    }

    #[test]
    fn detection_ranges_never_overlap_at_max_range() {
        let cfg = SyntheticConfig { detection_range: 2.5, ..SyntheticConfig::default() };
        let plan = build_floor_plan(&cfg);
        let devices = plan.devices();
        for (a_idx, a) in devices.iter().enumerate() {
            for b in &devices[a_idx + 1..] {
                let d = a.position.distance(b.position);
                assert!(
                    d > 2.0 * cfg.detection_range,
                    "devices {} and {} overlap: distance {d:.2}",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn pois_lie_inside_the_plan() {
        let plan = build_floor_plan(&SyntheticConfig::default());
        let plan_mbr = plan.mbr();
        for poi in plan.pois() {
            assert!(plan_mbr.contains_mbr(&poi.mbr()), "{} escapes the plan", poi.name);
            assert!(poi.area() > 1.0, "{} is degenerate", poi.name);
        }
    }

    #[test]
    fn plan_is_fully_connected() {
        let plan = build_floor_plan(&SyntheticConfig::tiny());
        let oracle = DistanceOracle::new(&plan);
        let a = plan.cell(CellId(1)).footprint().centroid(); // a hallway
        for cell in plan.cells() {
            let p = cell.footprint().centroid();
            assert!(oracle.distance(&plan, a, p).is_some(), "cell {} unreachable", cell.name);
        }
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let cfg = SyntheticConfig { num_objects: 5, duration: 120.0, ..SyntheticConfig::tiny() };
        let w1 = generate_synthetic(&cfg);
        let w2 = generate_synthetic(&cfg);
        assert_eq!(w1.ott.len(), w2.ott.len());
        for (a, b) in w1.ott.records().iter().zip(w2.ott.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trajectories_respect_vmax_and_stay_indoors() {
        let cfg = SyntheticConfig::tiny();
        let w = generate_synthetic(&cfg);
        assert_eq!(w.ground_truth.len(), cfg.num_objects);
        for (_, path) in &w.ground_truth {
            assert!(path.max_speed() <= cfg.speed + 1e-9, "speed {}", path.max_speed());
            // Spot-check sampled positions are inside some cell.
            let mut t = 0.0;
            while t < cfg.duration {
                if let Some(pos) = path.position_at(t) {
                    assert!(w.ctx.plan().locate(pos).is_some(), "position {pos} outside plan");
                }
                t += 30.0;
            }
        }
    }

    #[test]
    fn ott_is_populated_and_consistent() {
        let w = generate_synthetic(&SyntheticConfig::tiny());
        assert!(!w.ott.is_empty(), "no tracking records generated");
        assert!(w.ott.object_count() > 0);
        // Every record's span is within the simulation and devices exist.
        let devices = w.ctx.plan().devices().len() as u32;
        for r in w.ott.records() {
            assert!(r.ts <= r.te);
            assert!(r.device.0 < devices);
        }
    }

    #[test]
    fn readings_match_ground_truth_positions() {
        // Every OTT record is backed by the object genuinely being in the
        // device's range at both endpoints.
        let w = generate_synthetic(&SyntheticConfig::tiny());
        for r in w.ott.records().iter().take(200) {
            let (_, path) =
                w.ground_truth.iter().find(|(o, _)| *o == r.object).expect("ground truth exists");
            let dev = w.ctx.plan().device(r.device);
            for t in [r.ts, r.te] {
                let pos = path.position_at(t).expect("tracked while alive");
                assert!(
                    dev.detects(pos),
                    "object {} at {pos} not in range of {} at t={t}",
                    r.object,
                    dev.name
                );
            }
        }
    }
}
